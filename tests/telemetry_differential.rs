//! Telemetry-neutrality differential suite (PR 7): instrumentation must
//! *observe* the pipeline, never steer it.
//!
//! Three contracts are pinned:
//!
//! * **byte-identical artifacts** — compiling with an enabled [`Telemetry`]
//!   sink produces gate-for-gate, vtree-node-for-vtree-node the artifact of
//!   the disabled (default) sink, at `threads ∈ {1, 8}`; on the shared-dd
//!   backend the per-shard node counts and all answers are equal too;
//! * **counter monotonicity** — request and cache counters only grow across
//!   repeated batches, and grow by exactly the batch size where the schema
//!   promises it;
//! * **export stability** — `EvalSession::metrics()` reports the stage
//!   spans, per-tier decision counts, and cache occupancy the run implies,
//!   and the JSON-lines serialization of the merged snapshot round-trips.

use proptest::prelude::*;
use treelineage::prelude::*;
use treelineage::{ProbabilityRequest, ThresholdRequest};
use treelineage_automata::strategies as tree_strategies;
use treelineage_engine::compile_structured_dnnf_parallel;
use treelineage_instance::strategies as instance_strategies;

fn sig() -> Signature {
    Signature::builder()
        .relation("R", 2)
        .relation("S", 2)
        .relation("L", 1)
        .build()
}

fn query() -> UnionOfConjunctiveQueries {
    parse_query(&sig(), "R(x, y), S(y, z)").unwrap()
}

fn config(threads: usize, telemetry: Telemetry) -> EngineConfig {
    EngineConfig {
        telemetry,
        fragment_grain: 6,
        ..EngineConfig::with_threads(threads)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Enabled vs disabled telemetry: byte-identical d-SDNNF artifacts at
    /// 1 and 8 threads (gates, operand order, output, vtree, universe).
    #[test]
    fn compiled_artifacts_ignore_telemetry(
        tree in tree_strategies::uncertain_tree(48, 3),
        automaton in tree_strategies::deterministic_automaton(3, 4),
    ) {
        for threads in [1usize, 8] {
            let plain = match compile_structured_dnnf_parallel(
                &automaton,
                &tree,
                &config(threads, Telemetry::disabled()),
            ) {
                Ok(p) => p,
                // Invalid tree/automaton pairs must fail identically.
                Err(e) => {
                    let traced = compile_structured_dnnf_parallel(
                        &automaton,
                        &tree,
                        &config(threads, Telemetry::enabled()),
                    );
                    prop_assert_eq!(e.to_string(), traced.unwrap_err().to_string());
                    continue;
                }
            };
            let traced = compile_structured_dnnf_parallel(
                &automaton,
                &tree,
                &config(threads, Telemetry::enabled()),
            )
            .unwrap();
            let (pc, tc) = (
                plain.structured().dnnf().circuit(),
                traced.structured().dnnf().circuit(),
            );
            prop_assert_eq!(pc.size(), tc.size(), "threads={}", threads);
            for id in pc.gate_ids() {
                prop_assert_eq!(pc.gate(id), tc.gate(id), "gate {:?}, threads={}", id, threads);
            }
            prop_assert_eq!(pc.output(), tc.output());
            let (pv, tv) = (plain.structured().vtree(), traced.structured().vtree());
            prop_assert_eq!(pv.node_count(), tv.node_count());
            for i in 0..pv.node_count() {
                prop_assert_eq!(
                    pv.node(treelineage_circuit::VtreeId(i)),
                    tv.node(treelineage_circuit::VtreeId(i))
                );
            }
            prop_assert_eq!(pv.root(), tv.root());
            prop_assert_eq!(plain.structured().universe(), traced.structured().universe());
        }
    }

    /// End-to-end session runs: equal batch answers with telemetry on and
    /// off, on both session backends — and equal dd-shard node counts (the
    /// shared-dd artifact, observed through the new stats surface).
    #[test]
    fn session_answers_ignore_telemetry(
        (inst, td) in instance_strategies::treelike_instance_with_decomposition(sig(), 7, 2),
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let probs: Vec<f64> =
            (0..inst.fact_count()).map(|i| [0.5, 0.25, 0.75][i % 3]).collect();
        let valuation = ProbabilityValuation::from_f64(&inst, &probs);
        for threads in [1usize, 8] {
            for backend in [SessionBackend::Automaton, SessionBackend::SharedDd] {
                let run = |telemetry: Telemetry| {
                    let mut session =
                        EvalSession::with_backend(config(threads, telemetry), backend);
                    let qid = session.register_query(query());
                    let iid = session
                        .register_instance_with_decomposition(inst.clone(), td.clone())
                        .unwrap();
                    let requests: Vec<ProbabilityRequest> = (0..3)
                        .map(|_| ProbabilityRequest {
                            query: qid,
                            instance: iid,
                            valuation: valuation.clone(),
                        })
                        .collect();
                    let answers = session.batch_probability(&requests);
                    let counts = session.batch_model_count(&[(qid, iid)]);
                    let shards: Vec<usize> = session
                        .dd_shard_stats()
                        .into_iter()
                        .map(|(_, s)| s.node_count)
                        .collect();
                    (answers, counts, shards)
                };
                let plain = run(Telemetry::disabled());
                let traced = run(Telemetry::enabled());
                prop_assert_eq!(&plain, &traced, "{:?}, threads={}", backend, threads);
            }
        }
    }
}

/// Request and cache counters are monotone across repeated batches, and the
/// request counter advances by exactly the batch size.
#[test]
fn counters_are_monotone_across_batches() {
    let telemetry = Telemetry::enabled();
    let mut session = EvalSession::new(config(2, telemetry));
    let qid = session.register_query(query());
    let mut inst = Instance::new(sig());
    for i in 0..6u64 {
        inst.add_fact_by_name("R", &[i, i + 1]);
        inst.add_fact_by_name("S", &[i + 1, i + 2]);
    }
    let iid = session.register_instance(inst.clone());
    let valuation = ProbabilityValuation::all_one_half(&inst);
    let requests: Vec<ProbabilityRequest> = (0..4)
        .map(|_| ProbabilityRequest {
            query: qid,
            instance: iid,
            valuation: valuation.clone(),
        })
        .collect();
    let mut last_stats = session.stats();
    let mut last_requests_total = 0u64;
    let mut last_pool_tasks = 0u64;
    for round in 0..3 {
        let results = session.batch_probability(&requests);
        assert!(results.iter().all(|r| r.is_ok()));
        let stats = session.stats();
        assert_eq!(stats.requests, last_stats.requests + requests.len());
        assert!(stats.lineage_hits >= last_stats.lineage_hits);
        assert_eq!(stats.lineage_misses, 1, "round {round}: one compile ever");
        assert_eq!(stats.errors, 0);
        let snap = session.metrics();
        let requests_total = snap.counter_total("requests_total");
        assert_eq!(requests_total, last_requests_total + requests.len() as u64);
        let pool_tasks = snap.counter_total("pool_tasks_total");
        assert!(
            pool_tasks >= last_pool_tasks + requests.len() as u64,
            "round {round}: pool ran every request task"
        );
        last_stats = stats;
        last_requests_total = requests_total;
        last_pool_tasks = pool_tasks;
    }
}

/// The merged metrics surface: stage spans, per-tier decision counts, cache
/// occupancy, and both export formats.
#[test]
fn metrics_report_stages_tiers_and_caches() {
    let telemetry = Telemetry::enabled();
    let mut session = EvalSession::with_backend(config(2, telemetry), SessionBackend::FloatFirst);
    let qid = session.register_query(query());
    let mut inst = Instance::new(sig());
    for i in 0..5u64 {
        inst.add_fact_by_name("R", &[i, i + 1]);
        inst.add_fact_by_name("S", &[i + 1, i + 2]);
    }
    let iid = session.register_instance(inst.clone());
    let valuation = ProbabilityValuation::all_one_half(&inst);
    let decisions = session.batch_threshold(&[
        ThresholdRequest {
            query: qid,
            instance: iid,
            valuation: valuation.clone(),
            threshold: Rational::from_ratio_u64(1, 1000),
        },
        ThresholdRequest {
            query: qid,
            instance: iid,
            valuation: valuation.clone(),
            threshold: Rational::from_ratio_u64(999, 1000),
        },
    ]);
    assert!(decisions.iter().all(|d| d.is_ok()));

    let snap = session.metrics();
    // Stage spans: the pipeline ran encode → query compile → automaton
    // materialization → d-SDNNF compilation (sequential or fragmented).
    for stage in ["encode", "query_compile", "automaton_materialize"] {
        let agg = snap
            .span(stage)
            .unwrap_or_else(|| panic!("missing span {stage:?}"));
        assert!(agg.count >= 1, "{stage}: {agg:?}");
        assert!(agg.min_ns <= agg.max_ns);
    }
    assert!(
        snap.span("dsdnnf_compile").is_some() || snap.span("dsdnnf_merge").is_some(),
        "one of the d-SDNNF compile paths must have run"
    );
    // Per-tier decision counts: both clear thresholds were float decisions.
    assert_eq!(
        snap.counter(
            "requests_total",
            &[("kind", "threshold"), ("tier", "float")]
        ),
        Some(2)
    );
    // Latency histogram on the same labels.
    let hist = snap
        .histograms
        .iter()
        .find(|h| h.name == "request_latency_ns")
        .expect("latency histogram");
    assert_eq!(hist.count, 2);
    // Session counters and cache gauges merged in.
    assert_eq!(snap.counter("session_requests_total", &[]), Some(2));
    assert_eq!(snap.counter("session_float_decisions_total", &[]), Some(2));
    assert_eq!(snap.gauge("lineage_cache_entries", &[]), Some(1));
    assert!(snap.gauge("lineage_cache_capacity", &[]).unwrap() >= 1);
    assert_eq!(snap.gauge("instance_encodings", &[]), Some(1));
    let occupancy = session.cache_occupancy();
    assert_eq!(occupancy.lineage_entries, 1);
    assert_eq!(occupancy.encodings, 1);
    assert_eq!(occupancy.dd_shards, 0);
    // The automaton state gauge was set during query compilation.
    assert!(snap.gauge("query_states", &[]).unwrap() > 0);

    // Export: JSON-lines round-trips the merged snapshot; the Prometheus
    // text names the key series.
    let round = MetricsSnapshot::from_json_lines(&snap.to_json_lines()).unwrap();
    assert_eq!(round, snap);
    let prom = snap.to_prometheus();
    assert!(prom.contains("# TYPE requests_total counter"));
    assert!(prom.contains("session_requests_total 2"));
    assert!(prom.contains("span_count{span=\"encode\"}"));
    assert!(prom.contains("request_latency_ns_bucket"));

    // A shared-dd session additionally reports per-shard stats.
    let mut dd =
        EvalSession::with_backend(config(1, Telemetry::enabled()), SessionBackend::SharedDd);
    let q2 = dd.register_query(query());
    let i2 = dd.register_instance(inst);
    let counts = dd.batch_model_count(&[(q2, i2)]);
    assert!(counts[0].is_ok());
    let dd_snap = dd.metrics();
    assert!(dd_snap.gauge("dd_nodes", &[("shard", "0")]).unwrap() > 0);
    assert_eq!(dd.cache_occupancy().dd_shards, 1);
    assert_eq!(dd.dd_shard_stats().len(), 1);
}
