//! Request-scoped tracing differential suite (PR 9): spans must form one
//! connected tree per request regardless of how many pool workers the
//! session fans out to.
//!
//! Pinned contracts:
//!
//! * **thread-invariant topology** — the per-trace span tree of a warm
//!   batch has identical shape at `threads ∈ {1, 8}` (names and
//!   parent-name edges; only durations and thread indices may differ);
//! * **connectivity** — at `threads = 8`, every span of a request's trace
//!   reaches the request root through in-trace parent edges, and the only
//!   trace roots the session produces are `request` and `compile_pair`
//!   spans — no orphan pool-worker spans (the regression the ambient
//!   [`SpanContext`] propagation fixes);
//! * **explain/stat consistency** — [`EvalSession::explain`] agrees with
//!   [`SessionStats`] and the batch APIs at both thread counts;
//! * **export** — the drained ring renders as a Chrome-trace document that
//!   names every recorded span.
//!
//! [`SpanContext`]: treelineage_engine::SpanContext

use std::collections::BTreeMap;
use treelineage::prelude::*;
use treelineage::ProbabilityRequest;
use treelineage_engine::{to_chrome_trace, SpanEvent};

fn sig() -> Signature {
    Signature::builder()
        .relation("R", 2)
        .relation("S", 2)
        .build()
}

fn query() -> UnionOfConjunctiveQueries {
    parse_query(&sig(), "R(x, y), S(y, z)").unwrap()
}

fn chain(n: u64) -> Instance {
    let mut inst = Instance::new(sig());
    for i in 0..n {
        inst.add_fact_by_name("R", &[i, i + 1]);
        inst.add_fact_by_name("S", &[i + 1, i + 2]);
    }
    inst
}

fn config(threads: usize, telemetry: Telemetry) -> EngineConfig {
    EngineConfig {
        telemetry,
        fragment_grain: 4,
        ..EngineConfig::with_threads(threads)
    }
}

/// Canonical shape of every trace in `events`: per trace, the sorted list
/// of `(span name, parent span name)` edges — the thread- and
/// duration-free skeleton. Shapes are returned sorted, so two runs compare
/// as multisets of trees.
fn trace_shapes(events: &[SpanEvent]) -> Vec<Vec<(String, Option<String>)>> {
    let mut by_trace: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for event in events {
        by_trace.entry(event.trace).or_default().push(event);
    }
    let mut shapes: Vec<Vec<(String, Option<String>)>> = by_trace
        .values()
        .map(|spans| {
            let name_of: BTreeMap<u64, &str> = spans.iter().map(|e| (e.id, e.name)).collect();
            let mut shape: Vec<(String, Option<String>)> = spans
                .iter()
                .map(|e| {
                    (
                        e.name.to_string(),
                        e.parent.map(|p| {
                            name_of
                                .get(&p)
                                .map(|s| s.to_string())
                                .unwrap_or_else(|| "<missing-parent>".to_string())
                        }),
                    )
                })
                .collect();
            shape.sort();
            shape
        })
        .collect();
    shapes.sort();
    shapes
}

/// Runs one warm batch (the compile already cached) and returns the span
/// events it produced.
fn warm_batch_events(threads: usize) -> Vec<SpanEvent> {
    let telemetry = Telemetry::enabled();
    let mut session = EvalSession::new(config(threads, telemetry.clone()));
    let qid = session.register_query(query());
    let iid = session.register_instance(chain(6));
    let valuation = ProbabilityValuation::all_one_half(session.instance(iid));
    let requests: Vec<ProbabilityRequest> = (0..4)
        .map(|_| ProbabilityRequest {
            query: qid,
            instance: iid,
            valuation: valuation.clone(),
        })
        .collect();
    for r in session.batch_probability(&requests) {
        r.unwrap();
    }
    // Warm run only: drop the cold-compile spans, keep the batch's.
    telemetry.drain_events();
    for r in session.batch_probability(&requests) {
        r.unwrap();
    }
    telemetry.drain_events()
}

/// The tentpole differential: a warm batch's span forest has the same
/// shape at 1 and 8 threads — cross-thread propagation must not change
/// *what* the trace says, only which threads recorded it.
#[test]
fn warm_span_topology_is_identical_across_thread_counts() {
    let single = trace_shapes(&warm_batch_events(1));
    let pooled = trace_shapes(&warm_batch_events(8));
    assert!(
        single.iter().flatten().count() > 0,
        "warm batches must record spans"
    );
    assert_eq!(
        single, pooled,
        "span topology must not depend on the thread count"
    );
    // Each of the 4 requests is its own trace rooted at a `request` span.
    let request_traces = single
        .iter()
        .filter(|shape| {
            shape
                .iter()
                .any(|(name, parent)| name == "request" && parent.is_none())
        })
        .count();
    assert_eq!(request_traces, 4);
}

/// The connectivity contract at 8 threads, including the cold compile: no
/// span is orphaned. Every event's parent is a recorded event of the same
/// trace, every trace root is a `request` or `compile_pair` span, and
/// every fragment span the pool workers opened reaches its trace root —
/// this fails on thread-local-only parenting, where worker spans started
/// fresh traces.
#[test]
fn all_spans_connect_to_request_or_compile_roots_at_eight_threads() {
    let telemetry = Telemetry::enabled();
    let mut session = EvalSession::new(config(8, telemetry.clone()));
    let qid = session.register_query(query());
    let iid = session.register_instance(chain(8));
    let valuation = ProbabilityValuation::all_one_half(session.instance(iid));
    let request = ProbabilityRequest {
        query: qid,
        instance: iid,
        valuation,
    };
    // A lone-request batch: the compile fans subtree fragments out to pool
    // workers (threads = 8, single pair → inner parallelism enabled).
    for r in session.batch_probability(std::slice::from_ref(&request)) {
        r.unwrap();
    }
    let events = telemetry.drain_events();
    let by_id: BTreeMap<u64, &SpanEvent> = events.iter().map(|e| (e.id, e)).collect();
    let mut fragment_spans = 0usize;
    for event in &events {
        match event.parent {
            None => assert!(
                event.name == "request" || event.name == "compile_pair",
                "unexpected trace root {:?} (orphan span?)",
                event.name
            ),
            Some(parent) => {
                // Walk to the root: every hop stays in the same trace.
                let mut cursor = parent;
                let mut hops = 0;
                loop {
                    let p = by_id
                        .get(&cursor)
                        .unwrap_or_else(|| panic!("{}: parent {cursor} not recorded", event.name));
                    assert_eq!(
                        p.trace, event.trace,
                        "{}: parent chain crosses traces",
                        event.name
                    );
                    match p.parent {
                        Some(next) => cursor = next,
                        None => break,
                    }
                    hops += 1;
                    assert!(hops < events.len(), "parent cycle at {}", event.name);
                }
            }
        }
        if event.name == "dsdnnf_fragment" {
            fragment_spans += 1;
            assert!(
                event.parent.is_some(),
                "pool-worker fragment span detached from the compile trace"
            );
        }
    }
    assert!(
        fragment_spans > 1,
        "the 8-thread compile should have fanned out fragments (got {fragment_spans})"
    );
}

/// `explain()` agrees with the session counters and the batch answers at
/// both thread counts, and the flight recorder retains the explained
/// request's trace.
#[test]
fn explain_is_consistent_with_stats_across_thread_counts() {
    for threads in [1usize, 8] {
        let base = config(threads, Telemetry::enabled());
        let mut session = EvalSession::new(EngineConfig {
            flight_recorder_threshold_ns: 0,
            flight_recorder_capacity: 4,
            ..base
        });
        let qid = session.register_query(query());
        let iid = session.register_instance(chain(6));
        let valuation = ProbabilityValuation::all_one_half(session.instance(iid));
        let request = ProbabilityRequest {
            query: qid,
            instance: iid,
            valuation,
        };
        let report = session.explain(&request).unwrap();
        let stats = session.stats();
        assert_eq!(stats.requests, 1, "threads={threads}");
        assert_eq!(report.backend, "automaton");
        assert!(!report.lineage_cached && stats.lineage_misses == 1);
        let exact = session.batch_probability(std::slice::from_ref(&request))[0]
            .clone()
            .unwrap();
        assert_eq!(report.estimate, exact.to_f64(), "threads={threads}");
        let warm = session.explain(&request).unwrap();
        assert!(warm.lineage_cached && warm.encoding_cached && warm.machine_cached);
        assert_eq!(session.stats().lineage_misses, 1);
        assert_eq!(session.stats().requests, 3);
        // The metrics surface counts the explains under their own kind.
        let snap = session.metrics();
        assert_eq!(
            snap.counter("requests_total", &[("kind", "explain"), ("tier", "exact")]),
            Some(2),
            "threads={threads}"
        );
        // The flight recorder (threshold 0) retained traces with request
        // roots, slowest first.
        let slow = session.slow_requests();
        assert!(!slow.is_empty() && slow.len() <= 4);
        assert!(slow
            .windows(2)
            .all(|w| w[0].duration_ns >= w[1].duration_ns));
        assert!(slow.iter().all(|s| s
            .spans
            .iter()
            .any(|e| e.name == "request" && e.trace == s.trace)));
        // The report's stage summary only names spans of its own trace.
        let trace_events = report.trace.map(|t| {
            slow.iter()
                .find(|s| s.trace == t)
                .map(|s| s.spans.len())
                .unwrap_or(0)
        });
        assert!(trace_events.is_some());
        assert!(report.total_ns > 0);
    }
}

/// The drained ring renders as a Chrome-trace document naming every span.
#[test]
fn session_trace_exports_as_chrome_trace() {
    let telemetry = Telemetry::enabled();
    let mut session = EvalSession::new(config(2, telemetry.clone()));
    let qid = session.register_query(query());
    let iid = session.register_instance(chain(5));
    let valuation = ProbabilityValuation::all_one_half(session.instance(iid));
    for r in session.batch_probability(&[ProbabilityRequest {
        query: qid,
        instance: iid,
        valuation,
    }]) {
        r.unwrap();
    }
    let events = telemetry.drain_events();
    assert!(!events.is_empty());
    let rendered = to_chrome_trace(&events);
    assert!(rendered.starts_with("{\"traceEvents\":["));
    assert!(rendered.ends_with("\"displayTimeUnit\":\"ms\"}"));
    for event in &events {
        assert!(
            rendered.contains(&format!("\"name\":\"{}\"", event.name)),
            "export must name span {:?}",
            event.name
        );
    }
    // One complete event per recorded span.
    assert_eq!(rendered.matches("\"ph\":\"X\"").count(), events.len());
}
