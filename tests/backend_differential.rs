//! Cross-backend differential suite: on random treelike instances and
//! random uncertain trees, *every* lineage backend must return exactly the
//! same probability, model count and weighted model count as the
//! brute-force possible-worlds oracle.
//!
//! Backends under test:
//! * brute force (possible-worlds enumeration — the oracle),
//! * the legacy per-diagram reduced OBDD (`LineageBackend::LegacyObdd`),
//! * the shared hash-consed dd engine (`LineageBackend::SharedDd`),
//! * the structured d-DNNF backend (`LineageBackend::StructuredDnnf`),
//!   both on relational lineages (dd-exported, order-structured) and on
//!   automaton provenance (tree-structured, from `compile_structured_dnnf`),
//! * the automaton pipeline (`LineageBackend::Automaton`: tree encoding +
//!   query→automaton compilation, exercised in depth by
//!   `tests/pipeline_differential.rs`).
//!
//! Instances come from the shared `treelineage_instance::strategies`
//! generators; generation is deterministic through the in-tree proptest
//! shim (cases are seeded from the test name, optionally perturbed by
//! `PROPTEST_SEED` — CI pins that seed so the release-mode run is
//! reproducible).

use proptest::prelude::*;
use std::collections::BTreeSet;
use treelineage::prelude::*;
use treelineage_automata::{
    acceptance_probability_bruteforce, compile_structured_dnnf, strategies,
};
use treelineage_instance::strategies as instance_strategies;

fn sig() -> Signature {
    Signature::builder()
        .relation("R", 2)
        .relation("S", 2)
        .relation("L", 1)
        .build()
}

fn queries() -> Vec<UnionOfConjunctiveQueries> {
    [
        "R(x, y), S(y, z)",
        "S(x, y), S(y, z), x != z",
        "L(x), R(x, y) | L(y), S(x, y)",
        "R(x, y), R(y, z), x != z | S(x, y), S(y, z), x != z",
        "L(x)",
    ]
    .iter()
    .map(|t| parse_query(&sig(), t).unwrap())
    .collect()
}

const BACKENDS: [LineageBackend; 4] = [
    LineageBackend::LegacyObdd,
    LineageBackend::SharedDd,
    LineageBackend::StructuredDnnf,
    LineageBackend::Automaton,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Probability and model count on random treelike instances: every
    /// backend against the possible-worlds oracle, for every query.
    #[test]
    fn backends_agree_with_bruteforce_on_treelike_instances(
        inst in instance_strategies::treelike_instance(sig(), 6, 2),
        qi in 0usize..5,
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 12);
        let q = &queries()[qi];
        let probs: Vec<f64> = (0..inst.fact_count())
            .map(|i| [0.5, 0.25, 0.75, 0.125][i % 4])
            .collect();
        let valuation = ProbabilityValuation::from_f64(&inst, &probs);
        let oracle = ProbabilityEvaluator::new(&inst, &valuation);
        let expected_probability = oracle.query_probability_bruteforce(q);
        let expected_count = oracle.model_count_bruteforce(q);
        for backend in BACKENDS {
            let evaluator = ProbabilityEvaluator::new(&inst, &valuation).with_backend(backend);
            prop_assert_eq!(
                evaluator.query_probability(q).unwrap(),
                expected_probability.clone(),
                "probability via {:?}, query {}", backend, q
            );
            prop_assert_eq!(
                evaluator.model_count(q).unwrap().to_u64(),
                expected_count.to_u64(),
                "model count via {:?}, query {}", backend, q
            );
        }
    }

    /// General-weight WMC (weights not summing to 1 per fact) through the
    /// structured backend's smoothed one-pass evaluation, against direct
    /// enumeration.
    #[test]
    fn structured_wmc_agrees_with_bruteforce(
        inst in instance_strategies::treelike_instance(sig(), 5, 2),
        qi in 0usize..5,
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let q = &queries()[qi];
        let valuation = ProbabilityValuation::all_one_half(&inst);
        let evaluator = ProbabilityEvaluator::new(&inst, &valuation);
        let pos = |f: FactId| Rational::from_ratio_u64(f.0 as u64 + 2, 3);
        let neg = |f: FactId| Rational::from_ratio_u64(1, f.0 as u64 + 1);
        prop_assert_eq!(
            evaluator.query_wmc(q, &pos, &neg).unwrap(),
            evaluator.query_wmc_bruteforce(q, &pos, &neg)
        );
    }

    /// The structured lineage artifact itself: function equality with the
    /// monotone lineage circuit on every world, certification (smoothness +
    /// vtree), and cross-backend size coherence.
    #[test]
    fn structured_lineage_is_certified_and_equivalent(
        inst in instance_strategies::treelike_instance(sig(), 5, 2),
        qi in 0usize..5,
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let q = &queries()[qi];
        let builder = LineageBuilder::new(q, &inst).unwrap();
        let circuit = builder.circuit();
        let structured = builder.structured_dnnf();
        prop_assert!(structured.smoothed().is_smooth());
        prop_assert!(structured.vtree().respects(structured.dnnf().circuit()).is_ok());
        prop_assert_eq!(structured.universe().len(), inst.fact_count());
        for mask in 0u32..(1 << inst.fact_count()) {
            let world: BTreeSet<usize> = (0..inst.fact_count())
                .filter(|i| mask >> i & 1 == 1)
                .collect();
            let expected = circuit.evaluate_set(&world);
            prop_assert_eq!(structured.dnnf().circuit().evaluate_set(&world), expected);
            prop_assert_eq!(structured.smoothed().circuit().evaluate_set(&world), expected);
        }
    }

    /// The automaton-provenance d-SDNNF against the uncertain-tree oracle
    /// and against the other two engines compiling the same provenance
    /// function over the event universe.
    #[test]
    fn automaton_dsdnnf_agrees_with_all_engines(
        tree in strategies::uncertain_tree(4, 2),
        automaton in strategies::deterministic_automaton(2, 2),
    ) {
        let structured = compile_structured_dnnf(&automaton, &tree).unwrap();
        let events = tree.events();
        prop_assert!(events.len() <= 7);
        let prob = |e: usize| Rational::from_ratio_u64(1, e as u64 + 2);

        // Oracle: brute-force acceptance probability.
        let expected = acceptance_probability_bruteforce(&automaton, &tree, &prob);
        prop_assert_eq!(structured.probability(&prob), expected.clone());

        // Legacy OBDD and shared dd over the same provenance function.
        let raw = treelineage_automata::provenance_circuit(&automaton, &tree);
        let obdd = Obdd::from_circuit(&raw, events.clone());
        prop_assert_eq!(obdd.probability(&prob), expected.clone());
        let mut manager = DdManager::new(events.clone());
        let root = manager.compile_circuit(&raw);
        prop_assert_eq!(manager.probability(root, &prob), expected);

        // Model counts over the event universe agree across all three.
        prop_assert_eq!(
            structured.model_count().to_u64(),
            obdd.count_models().to_u64()
        );
        prop_assert_eq!(
            structured.model_count().to_u64(),
            manager.count_models(root).to_u64()
        );
    }
}
