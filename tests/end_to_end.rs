//! Cross-crate integration tests: the full pipelines of the paper, end to
//! end, checked against brute-force oracles.

use std::collections::BTreeSet;
use treelineage::prelude::*;
use treelineage_graph::{counting, generators};
use treelineage_hardness as hardness;
use treelineage_instance::encodings;
use treelineage_query::{intricate, matching};
use treelineage_safe as safe;

fn rst() -> Signature {
    Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build()
}

#[test]
fn lineage_probability_and_counting_agree_on_treelike_instances() {
    let sig = Signature::builder()
        .relation("S", 2)
        .relation("R", 2)
        .build();
    let q = parse_query(&sig, "S(x, y), S(y, z), x != z | R(x, y), S(y, z)").unwrap();
    for seed in 0..5u64 {
        let inst = encodings::random_treelike_instance(&sig, 7, 2, seed);
        if inst.fact_count() == 0 || inst.fact_count() > 14 {
            continue;
        }
        let valuation = ProbabilityValuation::all_one_half(&inst);
        let evaluator = ProbabilityEvaluator::new(&inst, &valuation);
        let p = evaluator.query_probability(&q).unwrap();
        assert_eq!(p, evaluator.query_probability_bruteforce(&q));
        assert_eq!(
            evaluator.model_count(&q).unwrap().to_u64(),
            evaluator.model_count_bruteforce(&q).to_u64()
        );
    }
}

#[test]
fn theorem_4_2_mechanism_counts_matchings_of_planar_cubic_graphs() {
    for rungs in 3..=5usize {
        let graph = generators::circular_ladder_graph(rungs);
        assert!(graph.is_k_regular(3));
        let reduction = hardness::matching_reduction(&graph);
        assert_eq!(
            reduction.matchings_from_probability.to_decimal_string(),
            reduction.matchings_direct.to_decimal_string()
        );
        if graph.edge_count() <= 25 {
            assert_eq!(
                reduction.matchings_direct.to_u64(),
                counting::count_matchings_bruteforce(&graph).to_u64()
            );
        }
    }
}

#[test]
fn theorem_8_1_width_separation_between_grids_and_chains() {
    let (grid3, _) = hardness::obdd_width_of_qp_on_grid(3);
    let (grid5, _) = hardness::obdd_width_of_qp_on_grid(5);
    let (chain, _) = hardness::obdd_width_of_qp_on_chain(60);
    assert!(
        grid5 > grid3,
        "width must grow with the grid: {grid3} -> {grid5}"
    );
    assert!(
        grid5 > 2 * chain,
        "grids must dominate chains: {grid5} vs {chain}"
    );
}

#[test]
fn theorem_8_7_intricacy_classification() {
    let single = Signature::builder().relation("S", 2).build();
    assert!(intricate::is_n_intricate(&hardness::qp(&single), 0));
    // Connected CQ≠ and UCQs are never intricate (Propositions 8.8, 8.9).
    for text in ["S(x, y), S(y, z), x != z", "S(x, y), S(y, z)", "S(x, y)"] {
        let q = parse_query(&single, text).unwrap();
        assert!(!intricate::is_intricate(&q), "{text}");
    }
    let unsafe_q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
    assert!(!intricate::is_intricate(&unsafe_q));
}

#[test]
fn theorem_9_7_unfolding_pipeline() {
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .build();
    let q = parse_query(&sig, "R(x), S(x, y)").unwrap();
    assert!(safe::is_inversion_free(&q));
    let mut inst = Instance::new(sig.clone());
    for a in 1u64..=4 {
        inst.add_fact_by_name("R", &[a]);
        for c in 1u64..=2 {
            inst.add_fact_by_name("S", &[a, 10 + c]);
        }
    }
    let unfolding = safe::unfold_for_query(&q, &inst).unwrap();
    assert!(unfolding.tree_depth <= 2);
    assert!(safe::lineage_preserved(&q, &inst, &unfolding));
    // Same probability on both instances under corresponding valuations.
    let valuation = ProbabilityValuation::all_one_half(&inst);
    let p_original = ProbabilityEvaluator::new(&inst, &valuation)
        .query_probability(&q)
        .unwrap();
    let unfolded_valuation = ProbabilityValuation::all_one_half(&unfolding.instance);
    let p_unfolded = ProbabilityEvaluator::new(&unfolding.instance, &unfolded_valuation)
        .query_probability(&q)
        .unwrap();
    assert_eq!(p_original, p_unfolded);
}

#[test]
fn obdd_and_ddnnf_lineages_agree_with_direct_evaluation_on_grids() {
    let sig = Signature::builder().relation("S", 2).build();
    let s = sig.relation_by_name("S").unwrap();
    let inst = encodings::grid_instance(&sig, s, 2, 3);
    let q = hardness::qp(&sig);
    let builder = LineageBuilder::new(&q, &inst).unwrap();
    let obdd = builder.obdd();
    let ddnnf = builder.ddnnf();
    let n = inst.fact_count();
    for mask in 0u32..(1 << n) {
        let world: BTreeSet<FactId> = (0..n).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
        let expected = matching::satisfied_in_world(&q, &inst, &world);
        let vars: BTreeSet<usize> = world.iter().map(|f| f.0).collect();
        assert_eq!(obdd.evaluate_set(&vars), expected);
        assert_eq!(ddnnf.circuit().evaluate_set(&vars), expected);
    }
}

#[test]
fn match_counting_matches_independent_set_dp_on_trees() {
    let sig = Signature::builder()
        .relation("E", 2)
        .relation("Sel", 1)
        .build();
    let e = sig.relation_by_name("E").unwrap();
    let q = parse_query(&sig, "E(x, y), Sel(x), Sel(y)").unwrap();
    for seed in 0..3u64 {
        let tree = generators::random_tree(9, seed);
        let inst = encodings::graph_instance(&tree, &sig, e);
        let counter = MatchCounter::new(&q, &inst, vec!["Sel"]);
        let bad = counter.count().unwrap().to_u64().unwrap();
        let total = 1u64 << tree.vertex_count();
        let independent = counting::count_independent_sets(&tree).to_u64().unwrap();
        assert_eq!(total - bad, independent, "seed {seed}");
    }
}
