//! Differential suite for the automaton pipeline (`LineageBackend::Automaton`,
//! the Section 6 route: tree encoding + query→automaton compilation +
//! provenance d-SDNNF): on random treelike instances its probability, model
//! count and weighted model count must be *bit-identical* to the brute-force
//! possible-worlds oracle and to every other backend (legacy OBDD, shared
//! dd, structured d-DNNF) — while never materializing a query match.
//!
//! Instances come from the shared `treelineage_instance::strategies`
//! generators (random partial-k-trees with a known decomposition), so the
//! whole workspace brute-forces the same family of inputs.

use proptest::prelude::*;
use treelineage::prelude::*;
use treelineage_instance::strategies;

fn sig() -> Signature {
    Signature::builder()
        .relation("R", 2)
        .relation("S", 2)
        .relation("L", 1)
        .build()
}

fn queries() -> Vec<UnionOfConjunctiveQueries> {
    [
        "R(x, y), S(y, z)",
        "S(x, y), S(y, z), x != z",
        "L(x), R(x, y) | L(y), S(x, y)",
        "R(x, y), R(y, z), x != z | S(x, y), S(y, z), x != z",
        "L(x)",
    ]
    .iter()
    .map(|t| parse_query(&sig(), t).unwrap())
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Probability and model count: automaton backend vs the oracle and the
    /// three other backends, with and without the known decomposition.
    #[test]
    fn automaton_backend_agrees_with_every_other_backend(
        (inst, td) in strategies::treelike_instance_with_decomposition(sig(), 6, 2),
        qi in 0usize..5,
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 12);
        let q = &queries()[qi];
        let probs: Vec<f64> = (0..inst.fact_count())
            .map(|i| [0.5, 0.25, 0.75, 0.125][i % 4])
            .collect();
        let valuation = ProbabilityValuation::from_f64(&inst, &probs);
        let oracle = ProbabilityEvaluator::new(&inst, &valuation);
        let expected_probability = oracle.query_probability_bruteforce(q);
        let expected_count = oracle.model_count_bruteforce(q);

        let automaton = ProbabilityEvaluator::new(&inst, &valuation)
            .with_backend(LineageBackend::Automaton);
        prop_assert_eq!(
            automaton.query_probability(q).unwrap(),
            expected_probability.clone(),
            "automaton probability, query {}", q
        );
        prop_assert_eq!(
            automaton.model_count(q).unwrap().to_u64(),
            expected_count.to_u64(),
            "automaton model count, query {}", q
        );
        // With the known decomposition driving the encoding.
        let with_td = ProbabilityEvaluator::new(&inst, &valuation)
            .with_backend(LineageBackend::Automaton)
            .with_decomposition(td.clone());
        prop_assert_eq!(
            with_td.query_probability(q).unwrap(),
            expected_probability.clone(),
            "automaton probability with decomposition, query {}", q
        );
        // Cross-backend equality (all already pinned against brute force in
        // tests/backend_differential.rs; this closes the loop pairwise).
        for backend in [
            LineageBackend::LegacyObdd,
            LineageBackend::SharedDd,
            LineageBackend::StructuredDnnf,
        ] {
            let other = ProbabilityEvaluator::new(&inst, &valuation).with_backend(backend);
            prop_assert_eq!(
                other.query_probability(q).unwrap(),
                expected_probability.clone(),
                "{:?} probability, query {}", backend, q
            );
            prop_assert_eq!(
                other.model_count(q).unwrap().to_u64(),
                expected_count.to_u64(),
                "{:?} model count, query {}", backend, q
            );
        }
    }

    /// General-weight WMC through the automaton pipeline, against the
    /// brute-force oracle and the structured backend.
    #[test]
    fn automaton_wmc_agrees_with_bruteforce_and_structured(
        inst in strategies::treelike_instance(sig(), 5, 2),
        qi in 0usize..5,
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let q = &queries()[qi];
        let valuation = ProbabilityValuation::all_one_half(&inst);
        let pos = |f: FactId| Rational::from_ratio_u64(f.0 as u64 + 2, 3);
        let neg = |f: FactId| Rational::from_ratio_u64(1, f.0 as u64 + 1);
        let automaton = ProbabilityEvaluator::new(&inst, &valuation)
            .with_backend(LineageBackend::Automaton);
        let expected = automaton.query_wmc_bruteforce(q, &pos, &neg);
        prop_assert_eq!(
            automaton.query_wmc(q, &pos, &neg).unwrap(),
            expected.clone(),
            "automaton WMC, query {}", q
        );
        let structured = ProbabilityEvaluator::new(&inst, &valuation)
            .with_backend(LineageBackend::StructuredDnnf);
        prop_assert_eq!(structured.query_wmc(q, &pos, &neg).unwrap(), expected);
    }

    /// The automaton-pipeline artifact itself is certified: a smooth d-DNNF
    /// over exactly the fact universe, function-equal to the monotone match
    /// circuit on every world, with coherent stats.
    #[test]
    fn automaton_lineage_artifact_is_certified(
        inst in strategies::treelike_instance(sig(), 5, 2),
        qi in 0usize..5,
    ) {
        use std::collections::BTreeSet;
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let q = &queries()[qi];
        let builder = LineageBuilder::new(q, &inst).unwrap();
        let circuit = builder.circuit();
        let lineage = builder.automaton_lineage().unwrap();
        prop_assert!(lineage.structured().dnnf().is_smooth());
        prop_assert!(lineage
            .structured()
            .vtree()
            .respects(lineage.structured().dnnf().circuit())
            .is_ok());
        prop_assert_eq!(lineage.structured().universe().len(), inst.fact_count());
        prop_assert!(lineage.automaton_states() > 0);
        prop_assert!(lineage.tree_nodes() > 0);
        for mask in 0u32..(1 << inst.fact_count()) {
            let world: BTreeSet<usize> = (0..inst.fact_count())
                .filter(|i| mask >> i & 1 == 1)
                .collect();
            prop_assert_eq!(
                lineage.structured().dnnf().circuit().evaluate_set(&world),
                circuit.evaluate_set(&world),
                "query {}, mask {}", q, mask
            );
        }
    }
}
