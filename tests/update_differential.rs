//! Update differential suite (PR 10): incremental maintenance under
//! updates, pinned against a cold-recompiled oracle.
//!
//! Random interleaved sequences of `{insert_fact, retract_fact,
//! set_probability, batch_probability, batch_wmc, batch_model_count}` run
//! against an [`EvalSession`] while the test maintains a *shadow* of the
//! mutated state (a mirror [`Instance`] plus valuation, updated by the
//! same operations). After **every** step:
//!
//! * the session's incremental lineage artifact must be **byte-identical**
//!   (same gates at the same ids with the same operands, same vtree, same
//!   universe) to [`EvalSession::cold_lineage`] — a from-scratch compile of
//!   the mutated instance through the same query machine;
//! * every answer must equal the independent `ProbabilityEvaluator` on the
//!   shadow state exactly, and the brute-force possible-worlds oracle where
//!   feasible;
//! * typed update errors must agree with the free validation functions on
//!   the shadow, and rejected updates must leave every answer unchanged.
//!
//! The run is repeated at `threads ∈ {1, 8}` (plus `TREELINEAGE_THREADS`),
//! with a tiny fragment grain so the cut/merge/reuse path is exercised even
//! on small instances; 32 proptest cases × 2 thread counts ≥ 64 random
//! update sequences per suite run. A deterministic companion test pins the
//! cost claim: an incremental recompile touches strictly fewer fragments
//! than a cold compile on multi-fragment instances.

use proptest::prelude::*;
use treelineage::prelude::*;
use treelineage::{validate_retract, ProbabilityRequest, WmcRequest};
use treelineage_engine::ParallelDnnf;
use treelineage_instance::{strategies as instance_strategies, Fact};
use treelineage_query::matching;

fn sig() -> Signature {
    Signature::builder()
        .relation("R", 2)
        .relation("S", 2)
        .relation("L", 1)
        .build()
}

fn queries() -> Vec<UnionOfConjunctiveQueries> {
    [
        "R(x, y), S(y, z)",
        "S(x, y), S(y, z), x != z",
        "L(x), R(x, y) | L(y), S(x, y)",
    ]
    .iter()
    .map(|t| parse_query(&sig(), t).unwrap())
    .collect()
}

/// The thread counts under test: the ISSUE's {1, 8} grid plus the CI
/// matrix value.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 8];
    if let Some(t) = std::env::var("TREELINEAGE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        if !counts.contains(&t) {
            counts.push(t);
        }
    }
    counts
}

/// Gate-for-gate, node-for-node equality of two lineage artifacts — the
/// byte-identity contract of the incremental recompile.
fn assert_byte_identical(a: &ParallelDnnf, b: &ParallelDnnf, context: &str) {
    let (ac, bc) = (
        a.structured().dnnf().circuit(),
        b.structured().dnnf().circuit(),
    );
    assert_eq!(ac.size(), bc.size(), "circuit size, {context}");
    for id in ac.gate_ids() {
        assert_eq!(ac.gate(id), bc.gate(id), "gate {id:?}, {context}");
    }
    assert_eq!(ac.output(), bc.output(), "output, {context}");
    let (av, bv) = (a.structured().vtree(), b.structured().vtree());
    assert_eq!(av.node_count(), bv.node_count(), "vtree size, {context}");
    for i in 0..av.node_count() {
        assert_eq!(
            av.node(treelineage_circuit::VtreeId(i)),
            bv.node(treelineage_circuit::VtreeId(i)),
            "vtree node {i}, {context}"
        );
    }
    assert_eq!(av.root(), bv.root(), "vtree root, {context}");
    assert_eq!(
        a.structured().universe(),
        b.structured().universe(),
        "universe, {context}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random interleaved update/read sequences: the incremental artifact
    /// is byte-identical to a cold recompile of the mutated instance after
    /// every step, every answer equals the shadow oracle exactly, and
    /// typed errors agree with the free validation functions.
    #[test]
    fn random_update_sequences_match_cold_oracle(
        (inst, td) in instance_strategies::treelike_instance_with_decomposition(sig(), 7, 2),
        qi in 0usize..3,
        ops in proptest::collection::vec((0u8..6, 0usize..64, 0u8..17), 1..10),
    ) {
        prop_assume!(inst.fact_count() >= 2 && inst.fact_count() <= 10);
        let q = queries()[qi].clone();
        for threads in thread_counts() {
            let mut config = EngineConfig::with_threads(threads);
            // A tiny grain forces the cut/merge/reuse path even on these
            // small instances.
            config.fragment_grain = 4;
            let mut session = EvalSession::with_backend(config, SessionBackend::Automaton);
            let qid = session.register_query(q.clone());
            let iid = session
                .register_instance_with_decomposition(inst.clone(), td.clone())
                .unwrap();
            // The shadow: a mirror instance + valuation maintained by the
            // same operations, and a pool of retracted facts available for
            // re-insertion (insertion of never-seen facts is exercised by
            // the session unit tests; here every accepted insert must keep
            // the pinned domain, which re-insertions do by construction).
            let mut mirror = inst.clone();
            let mut shadow_val = ProbabilityValuation::all_one_half(&inst);
            let mut pool: Vec<Fact> = Vec::new();
            let mut applied_structural = 0usize;
            // Warm the lineage so every structural update exercises
            // invalidation + incremental recompile rather than a cold start.
            session.lineage_artifact(qid, iid).unwrap();
            for &(kind, sel, val) in &ops {
                let p = Rational::from_ratio_u64(val as u64, 17);
                match kind {
                    0 => {
                        if pool.is_empty() {
                            // No retracted fact to re-add: a duplicate
                            // insert must be a typed rejection that leaves
                            // the state untouched.
                            let f = FactId(sel % mirror.fact_count());
                            let fact = mirror.fact(f).clone();
                            let err = session
                                .insert_fact(iid, fact.clone(), p.clone())
                                .unwrap_err();
                            prop_assert_eq!(err, UpdateError::DuplicateFact(f));
                        } else {
                            let fact = pool.remove(sel % pool.len());
                            let report =
                                session.insert_fact(iid, fact.clone(), p.clone()).unwrap();
                            prop_assert_eq!(report.kind, UpdateKind::Insert);
                            prop_assert!(report.structural && !report.no_op);
                            let id =
                                mirror.add_fact(fact.relation(), fact.arguments().to_vec());
                            shadow_val.push(p.clone());
                            prop_assert_eq!(report.fact, id);
                            applied_structural += 1;
                        }
                    }
                    1 => {
                        let f = FactId(sel % mirror.fact_count());
                        let expected = validate_retract(&mirror, f, true);
                        let got = session.retract_fact(iid, f);
                        match expected {
                            Ok(()) => {
                                let report = got.unwrap();
                                prop_assert_eq!(report.kind, UpdateKind::Retract);
                                let (fact, moved) = mirror.remove_fact(f);
                                shadow_val.swap_remove(f);
                                prop_assert_eq!(report.moved, moved);
                                pool.push(fact);
                                applied_structural += 1;
                            }
                            Err(e) => {
                                prop_assert_eq!(got.unwrap_err(), e);
                            }
                        }
                    }
                    2 => {
                        let f = FactId(sel % mirror.fact_count());
                        let report = session.set_probability(iid, f, p.clone()).unwrap();
                        prop_assert!(!report.structural);
                        prop_assert_eq!(
                            report.no_op,
                            shadow_val.probability(f) == &p,
                            "no_op must mean the value was already set"
                        );
                        shadow_val.set_probability(f, p.clone());
                    }
                    3 => {
                        let got = session.batch_probability(&[ProbabilityRequest {
                            query: qid,
                            instance: iid,
                            valuation: session.valuation(iid).clone(),
                        }])[0]
                            .clone()
                            .unwrap();
                        let expected = ProbabilityEvaluator::new(&mirror, &shadow_val)
                            .query_probability(&q)
                            .unwrap();
                        prop_assert_eq!(&got, &expected);
                        if mirror.fact_count() <= 10 {
                            let brute = shadow_val.probability_of(|world| {
                                matching::satisfied_in_world(&q, &mirror, world)
                            });
                            prop_assert_eq!(got, brute);
                        }
                    }
                    4 => {
                        let n = mirror.fact_count();
                        let pos: Vec<Rational> = (0..n)
                            .map(|j| Rational::from_ratio_u64(j as u64 + 2, 3))
                            .collect();
                        let neg: Vec<Rational> = (0..n)
                            .map(|j| Rational::from_ratio_u64(1, j as u64 + 1))
                            .collect();
                        let got = session.batch_wmc(&[WmcRequest {
                            query: qid,
                            instance: iid,
                            pos: pos.clone(),
                            neg: neg.clone(),
                        }])[0]
                            .clone()
                            .unwrap();
                        let expected = ProbabilityEvaluator::new(&mirror, &shadow_val)
                            .query_wmc(&q, &|f: FactId| pos[f.0].clone(), &|f: FactId| {
                                neg[f.0].clone()
                            })
                            .unwrap();
                        prop_assert_eq!(got, expected);
                    }
                    _ => {
                        let got = session.batch_model_count(&[(qid, iid)])[0]
                            .clone()
                            .unwrap();
                        let expected = ProbabilityEvaluator::new(&mirror, &shadow_val)
                            .model_count(&q)
                            .unwrap();
                        prop_assert_eq!(got, expected);
                    }
                }
                // The byte-identity contract, after every single step.
                let incremental = session.lineage_artifact(qid, iid).unwrap();
                let cold = session.cold_lineage(qid, iid).unwrap();
                assert_byte_identical(
                    &incremental,
                    &cold,
                    &format!("threads={threads} kind={kind}"),
                );
            }
            // The session's valuation tracked the shadow exactly, and every
            // applied structural update invalidated the (always-warm)
            // cached lineage exactly once.
            prop_assert_eq!(session.valuation(iid).len(), shadow_val.len());
            for j in 0..shadow_val.len() {
                prop_assert_eq!(
                    session.valuation(iid).probability(FactId(j)),
                    shadow_val.probability(FactId(j))
                );
            }
            prop_assert_eq!(session.stats().lineages_invalidated, applied_structural);
            prop_assert_eq!(session.instance_epoch(iid) >= applied_structural as u64, true);
        }
    }
}

fn chain_sig() -> Signature {
    Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build()
}

fn chain_instance(n: usize) -> Instance {
    let mut inst = Instance::new(chain_sig());
    for i in 0..n as u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    inst
}

/// The cost claim behind the update path, pinned via the session counters:
/// on a multi-fragment instance, a single-fact update recompiles strictly
/// fewer fragments than a cold compile (which recompiles all of them),
/// while staying byte-identical to it.
#[test]
fn incremental_update_recompiles_strictly_fewer_fragments_than_cold() {
    for threads in [2usize, 8] {
        let mut config = EngineConfig::with_threads(threads);
        config.fragment_grain = 4;
        let mut session = EvalSession::with_backend(config, SessionBackend::Automaton);
        let q = parse_query(&chain_sig(), "R(x), S(x, y), T(y)").unwrap();
        let qid = session.register_query(q);
        let iid = session.register_instance(chain_instance(8));
        let warm = session.lineage_artifact(qid, iid).unwrap();
        assert!(
            warm.partition().fragments().len() >= 2,
            "the test needs a multi-fragment instance"
        );
        session.retract_fact(iid, FactId(0)).unwrap();
        let incremental = session.lineage_artifact(qid, iid).unwrap();
        let stats = session.stats();
        let new_total = incremental.partition().fragments().len();
        assert!(stats.fragments_reused > 0, "threads={threads}");
        assert_eq!(
            stats.fragments_recompiled + stats.fragments_reused,
            new_total,
            "threads={threads}"
        );
        assert!(
            stats.fragments_recompiled < new_total,
            "update must touch strictly fewer fragments than cold, threads={threads}"
        );
        let cold = session.cold_lineage(qid, iid).unwrap();
        assert_byte_identical(&incremental, &cold, &format!("chain, threads={threads}"));
    }
}
