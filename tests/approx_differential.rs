//! Approximate-evaluation differential suite (PR 6): the float fast-path's
//! containment certificate and the float-first serving policy, pinned
//! against the exact backends.
//!
//! Three guarantees are exercised on random treelike instances
//! (`treelineage_instance::strategies`):
//!
//! * **containment** — `query_probability_f64`'s certified interval always
//!   contains the exact rational probability, on every lineage backend;
//! * **decision fidelity** — a [`SessionBackend::FloatFirst`] session's
//!   threshold decisions are bit-identical to the exact backend's, even
//!   when the threshold lands inside the interval (the exact-fallback
//!   trigger);
//! * **bounded degradation** — the Karp–Luby estimator at `(ε, δ) =
//!   (0.01, 0.01)` lands within `ε` (relatively) of the exact answer on
//!   tractable instances, with the documented sample bound.
//!
//! The first two are exact statements (`contains` on the enclosure, `==`
//! on the decision bit); only the Karp–Luby check is probabilistic, and it
//! runs on pinned seeds so CI is deterministic.

use proptest::prelude::*;
use treelineage::prelude::*;
use treelineage::{karp_luby_probability, karp_luby_sample_bound, DecisionTier, ThresholdRequest};
use treelineage_instance::strategies as instance_strategies;

fn sig() -> Signature {
    Signature::builder()
        .relation("R", 2)
        .relation("S", 2)
        .relation("L", 1)
        .build()
}

fn queries() -> Vec<UnionOfConjunctiveQueries> {
    [
        "R(x, y), S(y, z)",
        "S(x, y), S(y, z), x != z",
        "L(x), R(x, y) | L(y), S(x, y)",
    ]
    .iter()
    .map(|t| parse_query(&sig(), t).unwrap())
    .collect()
}

const BACKENDS: [LineageBackend; 4] = [
    LineageBackend::LegacyObdd,
    LineageBackend::SharedDd,
    LineageBackend::StructuredDnnf,
    LineageBackend::Automaton,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The float pass's interval contains the exact probability on every
    /// backend, and stays bit-identical across thread counts on the
    /// fragment-parallel automaton backend.
    #[test]
    fn float_interval_always_contains_exact(
        (inst, td) in instance_strategies::treelike_instance_with_decomposition(sig(), 7, 2),
        qi in 0usize..3,
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let q = &queries()[qi];
        let probs: Vec<f64> = (0..inst.fact_count())
            .map(|i| [0.5, 0.25, 0.75, 0.125, 1.0 / 3.0][i % 5])
            .collect();
        let valuation = ProbabilityValuation::from_f64(&inst, &probs);
        for backend in BACKENDS {
            let evaluator = ProbabilityEvaluator::new(&inst, &valuation)
                .with_decomposition(td.clone())
                .with_backend(backend);
            let exact = evaluator.query_probability(q).unwrap();
            let (estimate, interval) = evaluator.query_probability_f64(q).unwrap();
            prop_assert!(interval.contains(&exact),
                "{:?}: exact {} outside [{}, {}]", backend, exact.to_f64(), interval.lo(), interval.hi());
            prop_assert!(interval.contains_f64(estimate), "{:?}", backend);
            // Small circuits: the enclosure is tight enough to decide
            // against any threshold more than a hair away from the answer.
            prop_assert!(interval.width() < 1e-10, "{:?}: width {}", backend, interval.width());
        }
        // Thread-count invariance of the interval pass itself.
        let reference = ProbabilityEvaluator::new(&inst, &valuation)
            .with_decomposition(td.clone())
            .with_backend(LineageBackend::Automaton)
            .query_probability_f64(q)
            .unwrap();
        for threads in [2usize, 8] {
            let mut config = EngineConfig::with_threads(threads);
            config.fragment_grain = 4;
            let parallel = ProbabilityEvaluator::new(&inst, &valuation)
                .with_decomposition(td.clone())
                .with_backend(LineageBackend::Automaton)
                .with_engine_config(config)
                .query_probability_f64(q)
                .unwrap();
            prop_assert_eq!(parallel, reference, "threads={}", threads);
        }
    }

    /// A FloatFirst session decides thresholds bit-identically to the exact
    /// backend: the float tier answers whenever its interval resolves the
    /// comparison, and the exact fallback covers the rest — including a
    /// threshold equal to the exact answer, which always lands inside the
    /// interval.
    #[test]
    fn float_first_threshold_decisions_are_bit_identical(
        (inst, td) in instance_strategies::treelike_instance_with_decomposition(sig(), 7, 2),
        qi in 0usize..3,
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let q = queries()[qi].clone();
        let valuation =
            ProbabilityValuation::uniform(&inst, Rational::from_ratio_u64(1, 3));
        let mut sessions: Vec<EvalSession> =
            [SessionBackend::FloatFirst, SessionBackend::Automaton]
                .into_iter()
                .map(|b| EvalSession::with_backend(EngineConfig::with_threads(2), b))
                .collect();
        let mut decisions = Vec::new();
        let mut exact_answers = Vec::new();
        for session in &mut sessions {
            let qid = session.register_query(q.clone());
            let iid = session
                .register_instance_with_decomposition(inst.clone(), td.clone())
                .unwrap();
            let exact = session.batch_probability(&[treelineage::ProbabilityRequest {
                query: qid,
                instance: iid,
                valuation: valuation.clone(),
            }])[0]
                .clone()
                .unwrap();
            let thresholds = [
                Rational::zero(),
                Rational::from_ratio_u64(1, 97),
                Rational::one_half(),
                exact.clone(),
                Rational::one(),
            ];
            let requests: Vec<ThresholdRequest> = thresholds
                .iter()
                .map(|t| ThresholdRequest {
                    query: qid,
                    instance: iid,
                    valuation: valuation.clone(),
                    threshold: t.clone(),
                })
                .collect();
            decisions.push(session.batch_threshold(&requests));
            exact_answers.push(exact);
        }
        prop_assert_eq!(&exact_answers[0], &exact_answers[1]);
        for (k, (f, e)) in decisions[0].iter().zip(&decisions[1]).enumerate() {
            let f = f.as_ref().unwrap();
            let e = e.as_ref().unwrap();
            prop_assert_eq!(f.above, e.above, "threshold {}", k);
            // The exact backend never leaves the exact tier; the float
            // session must fall back on the inside-the-interval threshold.
            prop_assert_eq!(e.tier, DecisionTier::Exact);
            if k == 3 {
                prop_assert_eq!(f.tier, DecisionTier::Exact);
                prop_assert!(!f.above, "p > p is false");
            }
        }
        // At least the far-away thresholds were served by the float tier.
        prop_assert!(sessions[0].stats().float_decisions >= 2);
    }
}

/// The Karp–Luby estimator at the paper-grade `(ε, δ) = (0.01, 0.01)` lands
/// within relative `ε` of the exact answer on tractable instances (checked
/// on pinned seeds; the bound itself holds with probability `1 − δ`).
///
/// The sample bound is `⌈4·m·ln(2/δ)/ε²⌉` for `m` DNF clauses, so the test
/// instances are kept to a handful of query matches — enough to exercise
/// the clause-weighted world sampler, small enough that CI stays fast.
#[test]
fn karp_luby_within_epsilon_of_exact() {
    let sig = sig();
    let q = parse_query(&sig, "R(x, y), S(y, z)").unwrap();
    let (epsilon, delta) = (0.01, 0.01);
    // An R/S chain: R(0,1) S(1,2) R(2,3) S(3,4) ... — exactly one match per
    // consecutive (R, S) pair, so `links` DNF clauses.
    for links in [1usize, 2, 3] {
        let mut inst = Instance::new(sig.clone());
        for i in 0..links as u64 {
            inst.add_fact_by_name("R", &[2 * i, 2 * i + 1]);
            inst.add_fact_by_name("S", &[2 * i + 1, 2 * i + 2]);
        }
        let valuation = ProbabilityValuation::uniform(&inst, Rational::from_ratio_u64(1, 3));
        let exact = ProbabilityEvaluator::new(&inst, &valuation)
            .query_probability(&q)
            .unwrap()
            .to_f64();
        for seed in [7u64, 101] {
            let kl = karp_luby_probability(&q, &inst, &valuation, epsilon, delta, seed);
            assert_eq!(kl.clauses, links);
            assert_eq!(
                kl.samples,
                karp_luby_sample_bound(links, epsilon, delta),
                "links {links}"
            );
            assert!(
                (kl.estimate - exact).abs() <= epsilon * exact,
                "links {links} seed {seed}: estimate {} vs exact {exact}",
                kl.estimate
            );
            assert!(kl.interval().contains_f64(kl.estimate));
        }
    }
}
