//! Parallel-determinism differential suite (PR 5): the engine's
//! bit-identity contract, pinned end to end.
//!
//! Two layers of guarantees are exercised on random treelike instances
//! (`treelineage_instance::strategies`) and random uncertain trees
//! (`treelineage_automata::strategies`):
//!
//! * **byte-identical artifacts** — the parallel subtree compiler's circuit
//!   and vtree equal the sequential `compile_structured_dnnf`'s gate for
//!   gate and node for node, at every thread count (no iteration-order
//!   leakage from worker scheduling);
//! * **exactly equal answers** — every lineage backend returns the same
//!   probability / model count / WMC at `threads ∈ {1, 2, 8}` (plus the
//!   count from `TREELINEAGE_THREADS`, which the CI matrix leg sets to 8),
//!   and an `EvalSession`'s cache hits return exactly what the cold compile
//!   returned.
//!
//! All arithmetic is exact, so "equal" means `==` on `Rational`/`BigUint`,
//! not approximate agreement.

use proptest::prelude::*;
use treelineage::prelude::*;
use treelineage::ProbabilityRequest;
use treelineage_automata::{compile_structured_dnnf, strategies as tree_strategies};
use treelineage_engine::compile_structured_dnnf_parallel;
use treelineage_instance::strategies as instance_strategies;

fn sig() -> Signature {
    Signature::builder()
        .relation("R", 2)
        .relation("S", 2)
        .relation("L", 1)
        .build()
}

fn queries() -> Vec<UnionOfConjunctiveQueries> {
    [
        "R(x, y), S(y, z)",
        "S(x, y), S(y, z), x != z",
        "L(x), R(x, y) | L(y), S(x, y)",
    ]
    .iter()
    .map(|t| parse_query(&sig(), t).unwrap())
    .collect()
}

/// The thread counts under test: the fixed grid plus the CI matrix value.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 8];
    if let Some(t) = std::env::var("TREELINEAGE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        if !counts.contains(&t) {
            counts.push(t);
        }
    }
    counts
}

const BACKENDS: [LineageBackend; 4] = [
    LineageBackend::LegacyObdd,
    LineageBackend::SharedDd,
    LineageBackend::StructuredDnnf,
    LineageBackend::Automaton,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every backend, at every thread count, returns exactly the answers of
    /// the sequential default configuration.
    #[test]
    fn backends_are_thread_count_invariant(
        (inst, td) in instance_strategies::treelike_instance_with_decomposition(sig(), 7, 2),
        qi in 0usize..3,
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let q = &queries()[qi];
        let probs: Vec<f64> = (0..inst.fact_count()).map(|i| [0.5, 0.25, 0.75][i % 3]).collect();
        let valuation = ProbabilityValuation::from_f64(&inst, &probs);
        let pos = |f: FactId| Rational::from_ratio_u64(f.0 as u64 + 2, 3);
        let neg = |f: FactId| Rational::from_ratio_u64(1, f.0 as u64 + 1);
        for backend in BACKENDS {
            let sequential = ProbabilityEvaluator::new(&inst, &valuation)
                .with_decomposition(td.clone())
                .with_backend(backend);
            let p0 = sequential.query_probability(q).unwrap();
            let mc0 = sequential.model_count(q).unwrap();
            let wmc0 = sequential.query_wmc(q, &pos, &neg).unwrap();
            for threads in thread_counts() {
                let mut config = EngineConfig::with_threads(threads);
                // A tiny grain forces the cut/merge path even on these
                // small instances, so the merge logic is what's tested.
                config.fragment_grain = 4;
                let parallel = ProbabilityEvaluator::new(&inst, &valuation)
                    .with_decomposition(td.clone())
                    .with_backend(backend)
                    .with_engine_config(config);
                prop_assert_eq!(parallel.query_probability(q).unwrap(), p0.clone(),
                    "{:?} probability, threads={}", backend, threads);
                prop_assert_eq!(parallel.model_count(q).unwrap(), mc0.clone(),
                    "{:?} model count, threads={}", backend, threads);
                prop_assert_eq!(parallel.query_wmc(q, &pos, &neg).unwrap(), wmc0.clone(),
                    "{:?} wmc, threads={}", backend, threads);
            }
        }
    }

    /// The parallel compiler's artifact is byte-identical to the sequential
    /// one on random uncertain trees: same gates at the same ids with the
    /// same operands, same vtree, same universe.
    #[test]
    fn parallel_artifacts_are_byte_identical(
        tree in tree_strategies::uncertain_tree(48, 3),
        automaton in tree_strategies::deterministic_automaton(3, 4),
    ) {
        let sequential = match compile_structured_dnnf(&automaton, &tree) {
            Ok(s) => s,
            // Shared events: rejected identically (engine unit tests pin this).
            Err(_) => continue,
        };
        for threads in thread_counts() {
            let mut config = EngineConfig::with_threads(threads);
            config.fragment_grain = 6;
            let parallel = compile_structured_dnnf_parallel(&automaton, &tree, &config).unwrap();
            let pc = parallel.structured().dnnf().circuit();
            let sc = sequential.dnnf().circuit();
            prop_assert_eq!(pc.size(), sc.size());
            for id in pc.gate_ids() {
                prop_assert_eq!(pc.gate(id), sc.gate(id), "gate {:?}, threads={}", id, threads);
            }
            prop_assert_eq!(pc.output(), sc.output());
            let (pv, sv) = (parallel.structured().vtree(), sequential.vtree());
            prop_assert_eq!(pv.node_count(), sv.node_count());
            for i in 0..pv.node_count() {
                prop_assert_eq!(
                    pv.node(treelineage_circuit::VtreeId(i)),
                    sv.node(treelineage_circuit::VtreeId(i))
                );
            }
            prop_assert_eq!(pv.root(), sv.root());
            prop_assert_eq!(parallel.structured().universe(), sequential.universe());
        }
    }

    /// `EvalSession` cache correctness: a cold compile and a cache hit
    /// return exactly the same batch results, for both session backends.
    #[test]
    fn session_cache_hits_equal_cold_results(
        (inst, td) in instance_strategies::treelike_instance_with_decomposition(sig(), 7, 2),
        qi in 0usize..3,
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let q = queries()[qi].clone();
        let probs: Vec<f64> = (0..inst.fact_count()).map(|i| [0.5, 0.25, 0.75][i % 3]).collect();
        let valuation = ProbabilityValuation::from_f64(&inst, &probs);
        for backend in [SessionBackend::Automaton, SessionBackend::SharedDd] {
            let mut session =
                EvalSession::with_backend(EngineConfig::with_threads(2), backend);
            let qid = session.register_query(q.clone());
            let iid = session
                .register_instance_with_decomposition(inst.clone(), td.clone())
                .unwrap();
            let requests: Vec<ProbabilityRequest> = (0..3)
                .map(|_| ProbabilityRequest {
                    query: qid,
                    instance: iid,
                    valuation: valuation.clone(),
                })
                .collect();
            let cold = session.batch_probability(&requests);
            let stats_cold = session.stats();
            let warm = session.batch_probability(&requests);
            let stats_warm = session.stats();
            prop_assert_eq!(&cold, &warm, "{:?}", backend);
            // The warm batch compiled nothing new.
            prop_assert_eq!(stats_cold.lineage_misses, stats_warm.lineage_misses);
            prop_assert!(stats_warm.lineage_hits > stats_cold.lineage_hits);
            // And the answers match the core evaluator exactly.
            let expected = ProbabilityEvaluator::new(&inst, &valuation)
                .with_decomposition(td.clone())
                .query_probability(&q)
                .unwrap();
            for result in cold {
                prop_assert_eq!(result.unwrap(), expected.clone());
            }
        }
    }
}
