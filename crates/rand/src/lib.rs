//! Minimal in-tree random number generation.
//!
//! A dependency-free stand-in for the `rand` crate implementing the subset of
//! its API used by the `treelineage` generators: a seedable generator
//! ([`rngs::StdRng`]), [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. The generator is splitmix64, so for a fixed
//! seed the produced values are identical across platforms and runs —
//! determinism is what the experiments and tests actually rely on, not
//! statistical quality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Types usable as uniform `gen_range` bounds.
pub trait SampleUniform: Sized {
    /// Draws a value uniformly from `[start, end)`; panics on empty ranges.
    fn sample_range(range: &Range<Self>, rng: &mut dyn RngCore) -> Self;
}

macro_rules! sample_uniform_int {
    ($($ty:ty),*) => {
        $(impl SampleUniform for $ty {
            fn sample_range(range: &Range<Self>, rng: &mut dyn RngCore) -> Self {
                assert!(range.start < range.end, "empty range");
                let width = (range.end as i128).wrapping_sub(range.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % width;
                (range.start as i128 + offset as i128) as $ty
            }
        })*
    };
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The raw source of randomness.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(&range, self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}
