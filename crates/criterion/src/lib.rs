//! Minimal in-tree benchmark harness.
//!
//! A dependency-free stand-in for the `criterion` crate implementing the
//! subset of its API used by the `treelineage` benches: benchmark groups,
//! `bench_with_input` / `bench_function` with a [`Bencher`], `BenchmarkId`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! run for a small fixed number of timed iterations (after one warm-up) and
//! the mean, minimum and maximum wall-clock times are printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver, handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_with_input(BenchmarkId::from_parameter("single"), &(), |b, ()| f(b));
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (clamped to `2..=20`
    /// so that `cargo bench` stays fast without external configuration).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.clamp(2, 20);
        self
    }

    /// Benchmarks `f` with the given input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size + 1),
        };
        for _ in 0..self.sample_size + 1 {
            f(&mut bencher, input);
        }
        // The first sample is warm-up.
        let timed = &bencher.samples[1..];
        let total: Duration = timed.iter().sum();
        let mean = total / timed.len() as u32;
        let min = timed.iter().min().copied().unwrap_or_default();
        let max = timed.iter().max().copied().unwrap_or_default();
        println!(
            "  {:<32} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            id.id,
            mean,
            min,
            max,
            timed.len()
        );
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `f` and records it as one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        drop(black_box(out));
    }
}

/// Declares a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
