//! Hardness gadgets and lower-bound witnesses (Sections 4, 5, 7 and 8).
//!
//! The paper's negative results are all witnessed by explicit queries and
//! instance families; this crate builds them and exposes the measurements
//! that the experiment harness reports:
//!
//! * [`qp`] — the intricate UCQ≠ of Theorem 8.1 ("a path of length 2 in the
//!   Gaifman graph", i.e. a violation of the matching property), for any
//!   arity-2 signature;
//! * [`qd`] — the disconnected CQ≠ of Proposition 8.10 (two facts with
//!   disjoint domains);
//! * [`matching_reduction`] — the engine of Theorem 4.2's hardness proof:
//!   recovering the number of matchings of a graph from the probability of
//!   q_p under the all-1/2 valuation;
//! * [`obdd_width_of_qp_on_grid`] and friends — the OBDD width measurements
//!   behind the Section 8 dichotomy experiments;
//! * the treewidth-0 / treewidth-1 lineage families of Section 7 (threshold
//!   and parity), re-exported from the instance encodings and the circuit
//!   crate's explicit constructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use treelineage::LineageBuilder;
use treelineage_dd::{Manager, NodeId};
use treelineage_graph::{counting, Graph};
use treelineage_instance::{encodings, Instance, ProbabilityValuation, RelationId, Signature};
use treelineage_num::{BigUint, Rational};
use treelineage_query::{parse_query, UnionOfConjunctiveQueries};

/// The intricate query q_p of Theorem 8.1 for a signature with binary
/// relations: "the Gaifman graph of the possible world contains a path of
/// length 2", expressed as a UCQ≠ with one disjunct per way two binary facts
/// can share exactly one element. Its negation characterizes the worlds that
/// are matchings of the instance.
pub fn qp(signature: &Signature) -> UnionOfConjunctiveQueries {
    let binaries = signature.binary_relations();
    assert!(!binaries.is_empty(), "q_p needs a binary relation");
    let mut disjuncts = Vec::new();
    for &r in &binaries {
        for &s in &binaries {
            let rn = signature.relation(r).name();
            let sn = signature.relation(s).name();
            // The three incidence patterns: head-to-tail, head-to-head,
            // tail-to-tail; in each, the shared element is y and the outer
            // elements are distinct.
            disjuncts.push(format!("{rn}(x, y), {sn}(y, z), x != z"));
            disjuncts.push(format!("{rn}(x, y), {sn}(z, y), x != z"));
            disjuncts.push(format!("{rn}(y, x), {sn}(y, z), x != z"));
        }
    }
    parse_query(signature, &disjuncts.join(" | ")).expect("q_p is well-formed")
}

/// The disconnected CQ≠ q_d of Proposition 8.10: two binary facts over
/// disjoint pairs of elements (for a signature with a single binary
/// relation).
pub fn qd(signature: &Signature) -> UnionOfConjunctiveQueries {
    let binaries = signature.binary_relations();
    assert_eq!(
        binaries.len(),
        1,
        "q_d is stated for a single binary relation"
    );
    let name = signature.relation(binaries[0]).name();
    parse_query(
        signature,
        &format!("{name}(x, y), {name}(z, w), x != z, x != w, y != z, y != w"),
    )
    .expect("q_d is well-formed")
}

/// Result of the matching-counting reduction (Theorem 4.2's mechanism).
#[derive(Clone, Debug)]
pub struct MatchingReduction {
    /// Number of matchings recovered from the query probability.
    pub matchings_from_probability: BigUint,
    /// Number of matchings computed directly (DP over a tree decomposition).
    pub matchings_direct: BigUint,
    /// The probability of ¬q_p under the all-1/2 valuation.
    pub non_violation_probability: Rational,
}

/// Recovers the number of matchings of `graph` from the probability of the
/// matching-violation query q_p: a possible world of the edge facts is a
/// matching iff it does not satisfy q_p, so
/// `#matchings = 2^{|E|} · P(¬ q_p)` under the all-1/2 valuation — the exact
/// correspondence the hardness proof of Theorem 4.2 exploits (there, to
/// transfer #P-hardness of counting matchings on 3-regular planar graphs;
/// here, run forward as an experiment that cross-checks the probability
/// pipeline against the dedicated matching-counting DP).
pub fn matching_reduction(graph: &Graph) -> MatchingReduction {
    let signature = Signature::graph();
    let e = signature.relation_by_name("E").unwrap();
    let instance = encodings::graph_instance(graph, &signature, e);
    let query = qp(&signature);
    let (manager, root) = lineage_dd(&query, &instance);
    let p_violation = manager.probability(root, &|_| Rational::one_half());
    let p_matching = p_violation.complement();
    let scaled = &p_matching * &Rational::from_biguint(BigUint::pow2(instance.fact_count()));
    assert!(scaled.denominator().is_one());
    let matchings_from_probability = scaled.numerator().magnitude().clone();
    let matchings_direct = counting::count_matchings(graph);
    MatchingReduction {
        matchings_from_probability,
        matchings_direct,
        non_violation_probability: p_matching,
    }
}

/// The probability-evaluation view of the same reduction, using an arbitrary
/// probability valuation on the edge facts (the reduction of Theorem 4.2
/// chooses specific valuations; the all-1/2 one recovers plain counting).
pub fn matching_probability(graph: &Graph, valuation: &ProbabilityValuation) -> Rational {
    let signature = Signature::graph();
    let e = signature.relation_by_name("E").unwrap();
    let instance = encodings::graph_instance(graph, &signature, e);
    assert_eq!(valuation.len(), instance.fact_count());
    let query = qp(&signature);
    let (manager, root) = lineage_dd(&query, &instance);
    manager
        .probability(root, &|v| {
            valuation
                .probability(treelineage_instance::FactId(v))
                .clone()
        })
        .complement()
}

/// The query/instance pair of the grid experiments: q_p on the `n x n` grid
/// over a single binary relation. Exposed so the benches can compile the
/// same family through different engines (and reuse a shared manager across
/// iterations).
pub fn qp_grid_family(n: usize) -> (UnionOfConjunctiveQueries, Instance) {
    let signature = Signature::builder().relation("S", 2).build();
    let s = signature.relation_by_name("S").unwrap();
    let instance = encodings::grid_instance(&signature, s, n, n);
    (qp(&signature), instance)
}

/// The query/instance pair of the chain experiments: q_p on a chain of
/// S-facts (treewidth 1).
pub fn qp_chain_family(length: usize) -> (UnionOfConjunctiveQueries, Instance) {
    let signature = Signature::builder().relation("S", 2).build();
    let s = signature.relation_by_name("S").unwrap();
    let instance = encodings::chain_instance(&signature, &[s], length);
    (qp(&signature), instance)
}

/// The OBDD of the lineage of q_p on the `n x n` grid instance over a single
/// binary relation, under the decomposition-derived variable order. Lemma 8.2
/// shows that its width must be at least `2^{Ω(tw^{1/d})}`; the experiments
/// report the measured widths. Returns `(width, size)` (canonical, measured
/// through the shared `treelineage-dd` engine).
pub fn obdd_width_of_qp_on_grid(n: usize) -> (usize, usize) {
    let (query, instance) = qp_grid_family(n);
    width_and_size(&query, &instance)
}

/// [`obdd_width_of_qp_on_grid`] computed through the legacy per-diagram
/// `treelineage_circuit::Obdd` construction — same numbers, no shared
/// store; kept so the benches can time the engines head to head.
pub fn obdd_width_of_qp_on_grid_legacy(n: usize) -> (usize, usize) {
    let (query, instance) = qp_grid_family(n);
    let obdd = LineageBuilder::new(&query, &instance)
        .expect("same signature")
        .obdd();
    (obdd.width(), obdd.size())
}

/// The OBDD width and size of the lineage of q_p on a bounded-treewidth
/// instance of comparable size (a chain of S-facts), the tractable side of
/// the same comparison.
pub fn obdd_width_of_qp_on_chain(length: usize) -> (usize, usize) {
    let (query, instance) = qp_chain_family(length);
    width_and_size(&query, &instance)
}

/// OBDD width of the non-intricate query `R(x) ∧ S(x,y) ∧ T(y)` on the S-grid
/// family (no R/T facts): Theorem 8.7's first branch — some
/// unbounded-treewidth family gives constant-width OBDDs.
pub fn obdd_width_of_unsafe_query_on_s_grid(n: usize) -> (usize, usize) {
    let signature = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let s = signature.relation_by_name("S").unwrap();
    let instance = encodings::grid_instance(&signature, s, n, n);
    let query = parse_query(&signature, "R(x), S(x, y), T(y)").unwrap();
    width_and_size(&query, &instance)
}

/// The query/instance pair of Proposition 8.9's experiment: a
/// homomorphism-closed UCQ on the complete bipartite directed family.
pub fn ucq_bipartite_family(n: usize) -> (UnionOfConjunctiveQueries, Instance) {
    let signature = Signature::builder().relation("S", 2).build();
    let s = signature.relation_by_name("S").unwrap();
    let instance = encodings::complete_bipartite_instance(&signature, s, n);
    let query = parse_query(&signature, "S(x, y), S(x, z) | S(x, y), S(z, y)").unwrap();
    (query, instance)
}

/// OBDD width of a homomorphism-closed query (a UCQ) on the complete
/// bipartite directed family of Proposition 8.9: constant width regardless
/// of `n`.
pub fn obdd_width_of_ucq_on_bipartite(n: usize) -> (usize, usize) {
    let (query, instance) = ucq_bipartite_family(n);
    width_and_size(&query, &instance)
}

/// OBDD width of the disconnected query q_d on the `n x n` grid (Proposition
/// 8.10 predicts growth `Ω(tw^{1/d'})` on high-treewidth instances).
pub fn obdd_width_of_qd_on_grid(n: usize) -> (usize, usize) {
    let signature = Signature::builder().relation("S", 2).build();
    let s = signature.relation_by_name("S").unwrap();
    let instance = encodings::grid_instance(&signature, s, n, n);
    let query = qd(&signature);
    width_and_size(&query, &instance)
}

/// Compiles the lineage into a fresh shared-engine manager.
fn lineage_dd(query: &UnionOfConjunctiveQueries, instance: &Instance) -> (Manager, NodeId) {
    LineageBuilder::new(query, instance)
        .expect("same signature")
        .dd()
}

/// Width and size of the lineage's canonical OBDD, measured on the shared
/// engine (identical numbers to the legacy construction, per the
/// complement-edge width equivalence — see `treelineage-dd`'s docs).
fn width_and_size(query: &UnionOfConjunctiveQueries, instance: &Instance) -> (usize, usize) {
    let (manager, root) = lineage_dd(query, instance);
    (manager.width(root), manager.size(root))
}

/// The treewidth-0 lineage family of Propositions 7.1 / 7.2: the CQ≠
/// `∃xy R(x) ∧ R(y) ∧ x ≠ y` on the instance `{R(a_1), ..., R(a_n)}`, whose
/// lineage is the threshold-2 function. Returns (query, instance).
pub fn threshold_family(n: usize) -> (UnionOfConjunctiveQueries, Instance) {
    let signature = Signature::builder().relation("R", 1).build();
    let r = signature.relation_by_name("R").unwrap();
    let instance = encodings::unary_family_instance(&signature, r, n);
    let query = parse_query(&signature, "R(x), R(y), x != y").unwrap();
    (query, instance)
}

/// The treewidth-1 family of Proposition 7.3: the labelled path instance on
/// which the MSO parity query's lineage (over the label facts) is the parity
/// function. Returns the instance together with the relation ids of the
/// label and edge relations.
pub fn parity_family(n: usize) -> (Instance, RelationId, RelationId) {
    let signature = Signature::builder()
        .relation("L", 1)
        .relation("E", 2)
        .build();
    let l = signature.relation_by_name("L").unwrap();
    let e = signature.relation_by_name("E").unwrap();
    let instance = encodings::labelled_path_instance(&signature, l, e, n);
    (instance, l, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_graph::generators;
    use treelineage_query::intricate;

    #[test]
    fn qp_is_intricate_and_qd_is_not_connected() {
        let sig = Signature::builder().relation("S", 2).build();
        let q = qp(&sig);
        assert!(q.is_connected());
        assert!(intricate::is_n_intricate(&q, 0));
        let d = qd(&sig);
        assert!(!d.is_connected());
    }

    #[test]
    fn qp_on_two_relation_signature_is_intricate() {
        let sig = Signature::builder()
            .relation("R", 2)
            .relation("S", 2)
            .build();
        let q = qp(&sig);
        assert!(intricate::is_n_intricate(&q, 0));
    }

    #[test]
    fn matching_reduction_agrees_with_direct_counting() {
        for graph in [
            generators::path_graph(5),
            generators::cycle_graph(5),
            generators::circular_ladder_graph(3),
            generators::star_graph(4),
        ] {
            let result = matching_reduction(&graph);
            assert_eq!(
                result.matchings_from_probability.to_u64(),
                result.matchings_direct.to_u64(),
                "graph with {} edges",
                graph.edge_count()
            );
        }
    }

    #[test]
    fn matching_reduction_on_three_regular_planar_graph() {
        // The hard family of [52]: 3-regular planar graphs (here a prism).
        let graph = generators::circular_ladder_graph(4);
        let result = matching_reduction(&graph);
        assert_eq!(
            result.matchings_from_probability.to_u64(),
            result.matchings_direct.to_u64()
        );
    }

    #[test]
    fn matching_probability_with_nonuniform_valuation() {
        let graph = generators::path_graph(4);
        let signature = Signature::graph();
        let e = signature.relation_by_name("E").unwrap();
        let instance = encodings::graph_instance(&graph, &signature, e);
        let valuation = ProbabilityValuation::uniform(&instance, Rational::from_ratio_u64(1, 3));
        let p = matching_probability(&graph, &valuation);
        // Brute force: matchings of P4 (edges e0, e1, e2) are {}, {e0}, {e1},
        // {e2}, {e0, e2}; with p = 1/3 the weights sum to
        // (8 + 3·4 + 2) / 27 = 22/27.
        let expected = Rational::from_ratio_u64(8 + 3 * 4 + 2, 27);
        assert_eq!(p, expected);
    }

    #[test]
    fn qp_obdd_width_grows_on_grids_but_not_on_chains() {
        let (w3, _) = obdd_width_of_qp_on_grid(3);
        let (w4, _) = obdd_width_of_qp_on_grid(4);
        let (chain_w_small, _) = obdd_width_of_qp_on_chain(10);
        let (chain_w_large, _) = obdd_width_of_qp_on_chain(40);
        assert!(w4 > w3, "grid widths must grow: {w3} -> {w4}");
        assert_eq!(
            chain_w_small, chain_w_large,
            "chain widths must stay constant"
        );
        assert!(w4 > chain_w_large);
    }

    #[test]
    fn dd_and_legacy_engines_report_identical_grid_widths() {
        for n in [2usize, 3] {
            assert_eq!(
                obdd_width_of_qp_on_grid(n),
                obdd_width_of_qp_on_grid_legacy(n),
                "n={n}"
            );
        }
    }

    #[test]
    fn non_intricate_query_has_constant_width_on_s_grids() {
        let (w2, _) = obdd_width_of_unsafe_query_on_s_grid(2);
        let (w4, _) = obdd_width_of_unsafe_query_on_s_grid(4);
        // No R/T facts are present, so the lineage is constant-false: width 0.
        assert_eq!(w2, w4);
        assert_eq!(w4, 0);
    }

    #[test]
    fn homomorphism_closed_queries_easy_on_bipartite_family() {
        let (w2, _) = obdd_width_of_ucq_on_bipartite(2);
        let (w4, _) = obdd_width_of_ucq_on_bipartite(4);
        assert!(w2 <= 2 && w4 <= 2, "widths {w2}, {w4}");
    }

    #[test]
    fn threshold_family_lineage_is_threshold_two() {
        let (query, instance) = threshold_family(5);
        let builder = LineageBuilder::new(&query, &instance).unwrap();
        let obdd = builder.obdd();
        // Threshold-2 over 5 variables has C(5,0) + C(5,1) = 6 falsifying
        // assignments.
        assert_eq!(obdd.count_models().to_u64(), Some(32 - 6));
        assert!(obdd.width() <= 3);
    }

    #[test]
    fn parity_family_has_bounded_treewidth() {
        let (instance, _, _) = parity_family(8);
        let (w, _, _) = instance.treewidth_upper_bound();
        assert_eq!(w, 1);
    }
}
