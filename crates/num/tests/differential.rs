//! Differential tests: `BigUint` / `BigInt` / `Rational` arithmetic checked
//! against native `u128` / `i128` oracles on randomized small inputs.
//!
//! The in-tree bignum is the arithmetic substrate of every probability and
//! counting result in the workspace, so each operation is cross-checked
//! against machine integers on inputs small enough for the oracle to be
//! exact (`u64` operands, so products and sums fit in `u128`).

use proptest::prelude::*;
use treelineage_num::{BigInt, BigUint, Rational};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // ----- BigUint vs u128 -----

    #[test]
    fn biguint_add_sub_matches_u128(a in 0u128..1 << 100, b in 0u128..1 << 100) {
        let (x, y) = (BigUint::from_u128(a), BigUint::from_u128(b));
        prop_assert_eq!((&x + &y).to_u128(), Some(a + b));
        let (hi, lo) = if a >= b { (x, y) } else { (y, x) };
        prop_assert_eq!((&hi - &lo).to_u128(), Some(a.abs_diff(b)));
    }

    #[test]
    fn biguint_mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let prod = &BigUint::from_u64(a) * &BigUint::from_u64(b);
        prop_assert_eq!(prod.to_u128(), Some(u128::from(a) * u128::from(b)));
    }

    #[test]
    fn biguint_div_rem_matches_u128(a in 0u128..u128::MAX, b in 1u128..1 << 80) {
        let (q, r) = BigUint::from_u128(a).div_rem(&BigUint::from_u128(b));
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn biguint_cmp_matches_u128(a in 0u128..u128::MAX, b in 0u128..u128::MAX) {
        let (x, y) = (BigUint::from_u128(a), BigUint::from_u128(b));
        prop_assert_eq!(x.cmp(&y), a.cmp(&b));
        prop_assert_eq!(x == y, a == b);
    }

    #[test]
    fn biguint_decimal_string_matches_u128(a in 0u128..u128::MAX) {
        let v = BigUint::from_u128(a);
        prop_assert_eq!(v.to_decimal_string(), a.to_string());
        prop_assert_eq!(BigUint::from_decimal_str(&a.to_string()), Some(v));
    }

    #[test]
    fn biguint_gcd_matches_euclid_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        fn gcd(mut a: u128, mut b: u128) -> u128 {
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a
        }
        let g = BigUint::from_u64(a).gcd(&BigUint::from_u64(b));
        prop_assert_eq!(g.to_u128(), Some(gcd(u128::from(a), u128::from(b))));
    }

    #[test]
    fn biguint_gcd_multi_limb_with_known_factor(a in 1u64..u64::MAX, b in 1u64..u64::MAX, shift in 0usize..100) {
        // gcd(a·g, b·g) for a coprime pair (a, b) equals g exactly; build g
        // as an arbitrary-precision number so the binary gcd runs on
        // multi-limb inputs.
        fn gcd(mut a: u128, mut b: u128) -> u128 {
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a
        }
        let r = gcd(u128::from(a), u128::from(b)) as u64;
        let (a, b) = (a / r, b / r); // now coprime
        let g = &(&BigUint::from_u64(a) * &BigUint::from_u64(b)) * &BigUint::pow2(shift);
        let x = &BigUint::from_u64(a) * &g;
        let y = &BigUint::from_u64(b) * &g;
        prop_assert_eq!(x.gcd(&y), g);
    }

    #[test]
    fn biguint_trailing_zeros_matches_u128(a in 1u128..u128::MAX, shift in 0usize..200) {
        let v = &BigUint::from_u128(a) * &BigUint::pow2(shift);
        prop_assert_eq!(v.trailing_zeros(), a.trailing_zeros() as usize + shift);
        prop_assert_eq!(BigUint::zero().trailing_zeros(), 0);
    }

    #[test]
    fn biguint_pow_matches_u128(base in 0u64..1 << 16, exp in 0u32..8) {
        let p = BigUint::from_u64(base).pow(exp);
        prop_assert_eq!(p.to_u128(), Some(u128::from(base).pow(exp)));
    }

    // ----- BigInt vs i128 -----

    #[test]
    fn bigint_ring_ops_match_i128(a in i64::MIN..i64::MAX, b in i64::MIN..i64::MAX) {
        let (x, y) = (BigInt::from_i64(a), BigInt::from_i64(b));
        let (a, b) = (i128::from(a), i128::from(b));
        prop_assert_eq!(format!("{}", &x + &y), (a + b).to_string());
        prop_assert_eq!(format!("{}", &x - &y), (a - b).to_string());
        prop_assert_eq!(format!("{}", &x * &y), (a * b).to_string());
    }

    #[test]
    fn bigint_cmp_matches_i128(a in i64::MIN..i64::MAX, b in i64::MIN..i64::MAX) {
        let (x, y) = (BigInt::from_i64(a), BigInt::from_i64(b));
        prop_assert_eq!(x.cmp(&y), a.cmp(&b));
        prop_assert_eq!(x.is_negative(), a < 0);
    }

    #[test]
    fn bigint_display_matches_i128(a in i64::MIN..i64::MAX) {
        prop_assert_eq!(BigInt::from_i64(a).to_string(), a.to_string());
    }

    // ----- Rational vs exact i128 fraction arithmetic -----
    // Operands are kept below 2^20 so that cross-multiplied oracles
    // (numerators up to n1*d2 + n2*d1, denominators up to d1*d2*d3) stay
    // far inside i128.

    #[test]
    fn rational_add_mul_match_cross_multiplication(
        n1 in -(1i64 << 20)..1 << 20, d1 in 1u64..1 << 20,
        n2 in -(1i64 << 20)..1 << 20, d2 in 1u64..1 << 20,
    ) {
        let a = Rational::from_ratio_i64(n1, d1);
        let b = Rational::from_ratio_i64(n2, d2);
        // a + b == (n1*d2 + n2*d1) / (d1*d2), exactly.
        let sum_n = n1 * d2 as i64 + n2 * d1 as i64;
        let sum_d = d1 * d2;
        prop_assert_eq!(&a + &b, Rational::from_ratio_i64(sum_n, sum_d));
        // a * b == (n1*n2) / (d1*d2), exactly.
        prop_assert_eq!(&a * &b, Rational::from_ratio_i64(n1 * n2, sum_d));
    }

    #[test]
    fn rational_div_matches_cross_multiplication(
        n1 in -(1i64 << 20)..1 << 20, d1 in 1u64..1 << 20,
        n2 in 1i64..1 << 20, d2 in 1u64..1 << 20,
    ) {
        let a = Rational::from_ratio_i64(n1, d1);
        let b = Rational::from_ratio_i64(n2, d2);
        // a / b == (n1*d2) / (d1*n2) for positive b, exactly.
        let q = Rational::from_ratio_i64(n1 * d2 as i64, d1 * n2 as u64);
        prop_assert_eq!(&a / &b, q);
    }

    #[test]
    fn rational_cmp_matches_cross_multiplication(
        n1 in -(1i64 << 20)..1 << 20, d1 in 1u64..1 << 20,
        n2 in -(1i64 << 20)..1 << 20, d2 in 1u64..1 << 20,
    ) {
        let a = Rational::from_ratio_i64(n1, d1);
        let b = Rational::from_ratio_i64(n2, d2);
        // n1/d1 <=> n2/d2 iff n1*d2 <=> n2*d1 (denominators positive).
        let lhs = i128::from(n1) * i128::from(d2);
        let rhs = i128::from(n2) * i128::from(d1);
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
        prop_assert_eq!(a == b, lhs == rhs);
    }

    #[test]
    fn rational_is_in_lowest_terms(n in -(1i64 << 20)..1 << 20, d in 1u64..1 << 20) {
        let r = Rational::from_ratio_i64(n, d);
        let g = r.numerator().magnitude().gcd(r.denominator());
        prop_assert!(g.is_one() || r.is_zero());
        if r.is_zero() {
            prop_assert!(r.denominator().is_one());
        }
    }
}
