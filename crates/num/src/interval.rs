//! Certified floating-point enclosures for exact rational values.
//!
//! The float fast-path of probability evaluation (ROADMAP item 2) replaces
//! each exact [`Rational`] with an [`ErrorInterval`]: a closed interval
//! `[lo, hi]` of `f64` endpoints that is *guaranteed* to contain the exact
//! real value. Interval arithmetic is performed in round-to-nearest and then
//! widened outward by one ulp on each side — since IEEE 754 basic operations
//! are correctly rounded (error at most half an ulp of the result), one
//! `next_down` / `next_up` step after every operation certifies the
//! enclosure without needing directed-rounding mode control (which stable
//! Rust does not expose). Overflow saturates to an infinite endpoint, which
//! is still a valid (if useless) bound; `NaN` intermediates (only possible
//! through `0 × ∞`) widen to the infinite endpoint conservatively.
//!
//! The containment contract — "the exact value always lies in the interval"
//! — is what the exact-fallback logic of the engine's `FloatFirst` serving
//! mode relies on: a decision threshold strictly outside the interval can be
//! answered from the float pass alone, bit-identically to what the exact
//! pass would have decided. It is pinned by proptests here and by the
//! cross-backend differential suite (`tests/approx_differential.rs`).

use crate::rational::Rational;
use std::cmp::Ordering;
use std::fmt;

/// A closed `f64` interval `[lo, hi]` certified to contain an exact value.
///
/// Invariants: `lo <= hi`, neither endpoint is `NaN`. Endpoints may be
/// infinite (the trivial bound after overflow).
#[derive(Clone, Copy, PartialEq)]
pub struct ErrorInterval {
    lo: f64,
    hi: f64,
}

/// Outward-rounded lower endpoint: one ulp below the round-to-nearest
/// result (identity on `-inf`; `NaN` conservatively becomes `-inf`).
fn down(x: f64) -> f64 {
    if x.is_nan() {
        f64::NEG_INFINITY
    } else {
        x.next_down()
    }
}

/// Outward-rounded upper endpoint (dual of [`down`]).
fn up(x: f64) -> f64 {
    if x.is_nan() {
        f64::INFINITY
    } else {
        x.next_up()
    }
}

/// Compares a (possibly infinite, non-`NaN`) `f64` against an exact
/// rational. Finite floats are dyadic rationals, so the comparison is exact.
fn cmp_f64_rational(f: f64, r: &Rational) -> Ordering {
    if f == f64::INFINITY {
        return Ordering::Greater;
    }
    if f == f64::NEG_INFINITY {
        return Ordering::Less;
    }
    Rational::from_f64_dyadic(f)
        .expect("interval endpoints are never NaN")
        .cmp(r)
}

impl ErrorInterval {
    /// The interval `[lo, hi]`. Panics if `lo > hi` or either endpoint is
    /// `NaN`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "NaN interval endpoint");
        assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        ErrorInterval { lo, hi }
    }

    /// The degenerate interval containing exactly `v`.
    pub fn exact(v: f64) -> Self {
        ErrorInterval::new(v, v)
    }

    /// The exact zero interval.
    pub fn zero() -> Self {
        ErrorInterval::exact(0.0)
    }

    /// The exact one interval.
    pub fn one() -> Self {
        ErrorInterval::exact(1.0)
    }

    /// The tightest f64 enclosure of an exact rational
    /// ([`Rational::to_f64_bounds`]).
    pub fn from_rational(r: &Rational) -> Self {
        let (lo, hi) = r.to_f64_bounds();
        ErrorInterval::new(lo, hi)
    }

    /// The lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// The upper endpoint.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// The interval width `hi - lo` (the certified absolute error bound on
    /// [`ErrorInterval::midpoint`] is half of this).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// The midpoint, the natural point estimate to report. Infinite
    /// endpoints degrade to the finite one (or `0` when both are infinite).
    pub fn midpoint(&self) -> f64 {
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (true, true) => self.lo + (self.hi - self.lo) / 2.0,
            (true, false) => self.lo,
            (false, true) => self.hi,
            (false, false) => 0.0,
        }
    }

    /// Returns `true` if the exact rational lies inside the interval
    /// (decided exactly: finite endpoints are dyadic rationals).
    pub fn contains(&self, r: &Rational) -> bool {
        cmp_f64_rational(self.lo, r) != Ordering::Greater
            && cmp_f64_rational(self.hi, r) != Ordering::Less
    }

    /// Returns `true` if `v` lies inside the interval.
    pub fn contains_f64(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Where the exact rational `threshold` falls relative to the interval:
    /// `Less` if the whole interval is below it, `Greater` if the whole
    /// interval is above it, `None` if the threshold lands *inside* — the
    /// case where a `FloatFirst` caller must fall back to exact arithmetic.
    pub fn compare_threshold(&self, threshold: &Rational) -> Option<Ordering> {
        if cmp_f64_rational(self.hi, threshold) == Ordering::Less {
            Some(Ordering::Less)
        } else if cmp_f64_rational(self.lo, threshold) == Ordering::Greater {
            Some(Ordering::Greater)
        } else {
            None
        }
    }

    /// Certified sum: contains `x + y` for every `x ∈ self`, `y ∈ rhs`.
    pub fn add(&self, rhs: &ErrorInterval) -> ErrorInterval {
        ErrorInterval::new(down(self.lo + rhs.lo), up(self.hi + rhs.hi))
    }

    /// Certified product: contains `x · y` for every `x ∈ self`, `y ∈ rhs`.
    /// Sign-general (takes the outward hull of the four endpoint products).
    pub fn mul(&self, rhs: &ErrorInterval) -> ErrorInterval {
        let products = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        if products.iter().any(|p| p.is_nan()) {
            // 0 × ∞ after an overflow: no information either way.
            return ErrorInterval::new(f64::NEG_INFINITY, f64::INFINITY);
        }
        let mut lo = products[0];
        let mut hi = products[0];
        for &p in &products[1..] {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        ErrorInterval::new(down(lo), up(hi))
    }

    /// Certified complement: contains `1 - x` for every `x ∈ self`.
    pub fn complement(&self) -> ErrorInterval {
        ErrorInterval::new(down(1.0 - self.hi), up(1.0 - self.lo))
    }

    /// The smallest interval containing both operands (set union hull).
    pub fn hull(&self, rhs: &ErrorInterval) -> ErrorInterval {
        ErrorInterval::new(self.lo.min(rhs.lo), self.hi.max(rhs.hi))
    }
}

impl fmt::Debug for ErrorInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ErrorInterval[{:e}, {:e}]", self.lo, self.hi)
    }
}

impl fmt::Display for ErrorInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = ErrorInterval::new(0.25, 0.5);
        assert_eq!(i.lo(), 0.25);
        assert_eq!(i.hi(), 0.5);
        assert_eq!(i.width(), 0.25);
        assert_eq!(i.midpoint(), 0.375);
        assert!(i.contains_f64(0.3));
        assert!(!i.contains_f64(0.51));
    }

    #[test]
    #[should_panic]
    fn inverted_interval_panics() {
        let _ = ErrorInterval::new(1.0, 0.0);
    }

    #[test]
    fn arithmetic_contains_exact_results() {
        let third = ErrorInterval::from_rational(&Rational::from_ratio_u64(1, 3));
        let seventh = ErrorInterval::from_rational(&Rational::from_ratio_u64(1, 7));
        let sum = third.add(&seventh);
        let exact_sum = Rational::from_ratio_u64(10, 21);
        assert!(sum.contains(&exact_sum));
        let product = third.mul(&seventh);
        assert!(product.contains(&Rational::from_ratio_u64(1, 21)));
        let complement = third.complement();
        assert!(complement.contains(&Rational::from_ratio_u64(2, 3)));
        // Widening is one ulp per op: the intervals stay very tight.
        assert!(sum.width() < 1e-15);
        assert!(product.width() < 1e-15);
    }

    #[test]
    fn mul_handles_signs() {
        let a = ErrorInterval::new(-2.0, 3.0);
        let b = ErrorInterval::new(-5.0, 4.0);
        let p = a.mul(&b);
        // Hull of {10, -8, -15, 12} widened outward.
        assert!(p.lo() <= -15.0 && p.hi() >= 12.0);
        assert!(p.contains(&Rational::from_ratio_i64(-15, 1)));
    }

    #[test]
    fn threshold_comparison() {
        let i = ErrorInterval::new(0.25, 0.5);
        assert_eq!(
            i.compare_threshold(&Rational::from_ratio_u64(3, 4)),
            Some(Ordering::Less)
        );
        assert_eq!(
            i.compare_threshold(&Rational::from_ratio_u64(1, 8)),
            Some(Ordering::Greater)
        );
        assert_eq!(i.compare_threshold(&Rational::from_ratio_u64(1, 3)), None);
        // Endpoints land "inside": exactness means no false certainty.
        assert_eq!(i.compare_threshold(&Rational::from_ratio_u64(1, 4)), None);
        assert_eq!(i.compare_threshold(&Rational::from_ratio_u64(1, 2)), None);
    }

    #[test]
    fn overflow_saturates_to_infinite_bounds() {
        let big = ErrorInterval::exact(f64::MAX);
        let sum = big.add(&big);
        assert_eq!(sum.hi(), f64::INFINITY);
        assert!(sum.lo().is_finite());
        let product = big.mul(&big);
        assert_eq!(product.hi(), f64::INFINITY);
        // An infinite bound still contains everything above its partner.
        let huge = &Rational::from_f64_dyadic(f64::MAX).unwrap()
            * &Rational::from_f64_dyadic(f64::MAX).unwrap();
        assert!(product.contains(&huge));
    }

    #[test]
    fn hull_unions() {
        let a = ErrorInterval::new(0.0, 0.25);
        let b = ErrorInterval::new(0.5, 1.0);
        let h = a.hull(&b);
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 1.0);
    }
}
