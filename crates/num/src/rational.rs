//! Exact rational numbers.
//!
//! Definition 3.1 of the paper represents probabilities as pairs
//! numerator/denominator; the "ra-linear" complexity measure counts arithmetic
//! operations on such rationals at unit cost. [`Rational`] is the exact
//! number type threaded through probability evaluation, weighted model
//! counting, and match counting.

use crate::bigint::BigInt;
use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// An exact rational number, kept in lowest terms with a positive denominator.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    numerator: BigInt,
    denominator: BigUint,
}

impl Rational {
    /// The value 0.
    pub fn zero() -> Self {
        Rational {
            numerator: BigInt::zero(),
            denominator: BigUint::one(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        Rational {
            numerator: BigInt::one(),
            denominator: BigUint::one(),
        }
    }

    /// The value 1/2, the valuation used when relating probability evaluation
    /// to model counting (footnote 3 of the paper).
    pub fn one_half() -> Self {
        Rational::from_ratio_u64(1, 2)
    }

    /// Builds `n/d` from machine integers. Panics if `d == 0`.
    pub fn from_ratio_u64(n: u64, d: u64) -> Self {
        assert!(d != 0, "zero denominator");
        Rational::new(BigInt::from_u64(n), BigUint::from_u64(d))
    }

    /// Builds `n/d` from a signed numerator and unsigned denominator.
    /// Panics if `d == 0`.
    pub fn from_ratio_i64(n: i64, d: u64) -> Self {
        assert!(d != 0, "zero denominator");
        Rational::new(BigInt::from_i64(n), BigUint::from_u64(d))
    }

    /// Builds an integer-valued rational.
    pub fn from_integer(n: BigInt) -> Self {
        Rational {
            numerator: n,
            denominator: BigUint::one(),
        }
    }

    /// Builds a non-negative integer-valued rational from a [`BigUint`].
    pub fn from_biguint(n: BigUint) -> Self {
        Rational::from_integer(BigInt::from_biguint(n))
    }

    /// Builds a rational from an arbitrary numerator and denominator,
    /// normalizing sign and reducing to lowest terms. Panics if `d == 0`.
    pub fn new(n: BigInt, d: BigUint) -> Self {
        assert!(!d.is_zero(), "zero denominator");
        let mut out = Rational {
            numerator: n,
            denominator: d,
        };
        out.reduce();
        out
    }

    /// Exact conversion from an `f64` that is a dyadic rational produced by
    /// ordinary probability inputs (e.g. `0.5`, `0.25`). Returns `None` for
    /// NaN or infinite values.
    pub fn from_f64_dyadic(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rational::zero());
        }
        // Decompose v = mantissa * 2^exp exactly.
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7FF) as i64;
        let fraction = bits & 0xF_FFFF_FFFF_FFFF;
        let (mantissa, exp) = if exponent == 0 {
            (fraction, -1074i64)
        } else {
            (fraction | (1 << 52), exponent - 1075)
        };
        let m = BigUint::from_u64(mantissa);
        let mut out = if exp >= 0 {
            Rational::from_biguint(&m * &BigUint::pow2(exp as usize))
        } else {
            Rational::new(BigInt::from_biguint(m), BigUint::pow2((-exp) as usize))
        };
        if sign < 0 {
            out = -out;
        }
        Some(out)
    }

    /// The numerator (signed, in lowest terms).
    pub fn numerator(&self) -> &BigInt {
        &self.numerator
    }

    /// The denominator (positive, in lowest terms).
    pub fn denominator(&self) -> &BigUint {
        &self.denominator
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.numerator.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.denominator.is_one() && self.numerator == BigInt::one()
    }

    /// Returns `true` if the value lies in the closed interval \[0, 1\]
    /// (i.e. it is a valid probability).
    pub fn is_probability(&self) -> bool {
        !self.numerator.is_negative() && self.numerator.magnitude() <= &self.denominator
    }

    /// `1 - self`; the probability of the complementary event.
    pub fn complement(&self) -> Self {
        &Rational::one() - self
    }

    /// Correctly-rounded conversion to `f64` (round to nearest, ties to
    /// even; values past `f64::MAX` round to the infinity of matching sign).
    ///
    /// Built on [`Rational::to_f64_bounds`]: the two candidate floats come
    /// from the certified bracket, and the nearest one is selected by exact
    /// rational comparison against their midpoint — no rounding analysis of
    /// the fast approximation is trusted. (The previous implementation
    /// shifted numerator and denominator by a *common* amount past 900 bits,
    /// which collapsed a small denominator to zero — `2^950 / 2^10` came
    /// back `inf` despite being comfortably inside `f64` range — and
    /// double-rounded through per-limb float accumulation below the
    /// threshold.)
    pub fn to_f64(&self) -> f64 {
        use std::cmp::Ordering;
        let (lo, hi) = self.to_f64_bounds();
        if lo == hi {
            return lo;
        }
        // Past the finite range the optimal bracket is (MAX, inf) or its
        // dual; conventional overflow rounds to the infinite endpoint.
        if lo == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        if hi == f64::INFINITY {
            return f64::INFINITY;
        }
        // `lo` and `hi` are adjacent floats; their midpoint is a dyadic
        // rational, so round-to-nearest is an exact comparison.
        let mid = &(&Rational::from_f64_dyadic(lo).expect("finite bound")
            + &Rational::from_f64_dyadic(hi).expect("finite bound"))
            * &Rational::from_ratio_u64(1, 2);
        match self.cmp(&mid) {
            Ordering::Less => lo,
            Ordering::Greater => hi,
            // Exact tie: pick the even mantissa (adjacent floats differ by
            // one bit, so exactly one of the two is even).
            Ordering::Equal => {
                if lo.to_bits() & 1 == 0 {
                    lo
                } else {
                    hi
                }
            }
        }
    }

    /// Fast uncertified approximation seeding the bounds fix-up: both sides
    /// are truncated to their top 63 bits with the cut exponents tracked
    /// explicitly, so the quotient is computed on `u64`-sized operands at
    /// full `f64` precision and then scaled by an exact power of two. Within
    /// a few ulps of the exact value on the whole `f64` range.
    fn to_f64_approx(&self) -> f64 {
        if self.numerator.is_zero() {
            return 0.0;
        }
        let n = self.numerator.magnitude();
        let d = &self.denominator;
        let n_shift = n.bits().saturating_sub(63);
        let d_shift = d.bits().saturating_sub(63);
        let n_top = (n >> n_shift).to_u64().expect("63 bits fit in u64") as f64;
        let d_top = (d >> d_shift).to_u64().expect("63 bits fit in u64") as f64;
        let magnitude = ldexp(n_top / d_top, n_shift as i64 - d_shift as i64);
        if self.numerator.is_negative() {
            -magnitude
        } else {
            magnitude
        }
    }

    /// The tightest pair of `f64` bounds around the exact value:
    /// `lo` is the largest `f64` with `lo <= self` and `hi` the smallest
    /// with `self <= hi` (so `lo == hi` exactly when the value is
    /// representable, and otherwise `hi == lo.next_up()`). Values beyond
    /// `f64` range get the saturating bound (`f64::MAX`/`inf` and duals).
    ///
    /// This is the certified conversion the interval fast-path is built on:
    /// the fast truncation-based candidate is *verified and corrected by
    /// exact rational comparison* (finite floats are dyadic rationals), so
    /// no rounding analysis of the approximation is trusted.
    pub fn to_f64_bounds(&self) -> (f64, f64) {
        use std::cmp::Ordering;
        let cmp = |f: f64| -> Ordering {
            if f == f64::INFINITY {
                return Ordering::Greater;
            }
            if f == f64::NEG_INFINITY {
                return Ordering::Less;
            }
            Rational::from_f64_dyadic(f)
                .expect("candidate bounds are never NaN")
                .cmp(self)
        };
        let approx = self.to_f64_approx();
        debug_assert!(!approx.is_nan());
        // Largest f64 <= self: walk down until <=, then back up while still <=.
        let mut lo = approx;
        while cmp(lo) == Ordering::Greater {
            lo = lo.next_down();
        }
        while lo != f64::INFINITY && cmp(lo.next_up()) != Ordering::Greater {
            lo = lo.next_up();
        }
        // Smallest f64 >= self, dually.
        let mut hi = approx;
        while cmp(hi) == Ordering::Less {
            hi = hi.next_up();
        }
        while hi != f64::NEG_INFINITY && cmp(hi.next_down()) != Ordering::Less {
            hi = hi.next_down();
        }
        debug_assert!(lo <= hi);
        (lo, hi)
    }

    /// Multiplicative inverse. Panics if the value is zero.
    pub fn reciprocal(&self) -> Self {
        assert!(!self.is_zero(), "reciprocal of zero");
        let sign = self.numerator.sign();
        let n = BigInt::from_sign_magnitude(sign, self.denominator.clone());
        Rational::new(n, self.numerator.magnitude().clone())
    }

    /// `self^exp` for a machine-sized exponent.
    pub fn pow(&self, exp: u32) -> Self {
        let mut acc = Rational::one();
        for _ in 0..exp {
            acc = &acc * self;
        }
        acc
    }

    fn reduce(&mut self) {
        if self.numerator.is_zero() {
            self.denominator = BigUint::one();
            return;
        }
        let g = self.numerator.magnitude().gcd(&self.denominator);
        if !g.is_one() {
            let (n, _) = self.numerator.magnitude().div_rem(&g);
            let (d, _) = self.denominator.div_rem(&g);
            self.numerator = BigInt::from_sign_magnitude(self.numerator.sign(), n);
            self.denominator = d;
        }
    }
}

/// `x * 2^exp` without `libm`: scales in chunks of `2^±1000` (each chunk
/// factor is exactly representable, so only the final step can round — into
/// the subnormal range or to `±inf`, which is the correct saturating
/// behaviour for an approximate conversion).
fn ldexp(x: f64, exp: i64) -> f64 {
    let mut x = x;
    let mut exp = exp;
    while exp > 0 {
        let step = exp.min(1000);
        x *= 2f64.powi(step as i32);
        exp -= step;
    }
    while exp < 0 {
        let step = exp.max(-1000);
        x *= 2f64.powi(step as i32);
        exp -= step;
    }
    x
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({})", self)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denominator.is_one() {
            write!(f, "{}", self.numerator)
        } else {
            write!(f, "{}/{}", self.numerator, self.denominator)
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b cmp c/d  <=>  a*d cmp c*b   (b, d > 0)
        let lhs = &self.numerator * &BigInt::from_biguint(other.denominator.clone());
        let rhs = &other.numerator * &BigInt::from_biguint(self.denominator.clone());
        lhs.cmp(&rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numerator: -self.numerator,
            denominator: self.denominator,
        }
    }
}

impl Add<&Rational> for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        let n = &(&self.numerator * &BigInt::from_biguint(rhs.denominator.clone()))
            + &(&rhs.numerator * &BigInt::from_biguint(self.denominator.clone()));
        let d = &self.denominator * &rhs.denominator;
        Rational::new(n, d)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        &self + &rhs
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl Sub<&Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs.clone())
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        &self - &rhs
    }
}

impl Mul<&Rational> for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        let n = &self.numerator * &rhs.numerator;
        let d = &self.denominator * &rhs.denominator;
        Rational::new(n, d)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        &self * &rhs
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl Div<&Rational> for &Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division as reciprocal multiplication
    fn div(self, rhs: &Rational) -> Rational {
        self * &rhs.reciprocal()
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        &self / &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Rational::from_ratio_u64(6, 8);
        assert_eq!(r.numerator().to_i64(), Some(3));
        assert_eq!(r.denominator().to_u64(), Some(4));
        let z = Rational::from_ratio_i64(0, 17);
        assert!(z.is_zero());
        assert_eq!(z.denominator().to_u64(), Some(1));
    }

    #[test]
    fn arithmetic_small() {
        let a = Rational::from_ratio_u64(1, 3);
        let b = Rational::from_ratio_u64(1, 6);
        assert_eq!(&a + &b, Rational::from_ratio_u64(1, 2));
        assert_eq!(&a - &b, Rational::from_ratio_u64(1, 6));
        assert_eq!(&a * &b, Rational::from_ratio_u64(1, 18));
        assert_eq!(&a / &b, Rational::from_ratio_u64(2, 1));
    }

    #[test]
    fn negative_values() {
        let a = Rational::from_ratio_i64(-1, 2);
        let b = Rational::from_ratio_u64(1, 4);
        assert_eq!(&a + &b, Rational::from_ratio_i64(-1, 4));
        assert_eq!(&a * &b, Rational::from_ratio_i64(-1, 8));
        assert!(a < b);
        assert!(!a.is_probability());
    }

    #[test]
    fn probability_range() {
        assert!(Rational::zero().is_probability());
        assert!(Rational::one().is_probability());
        assert!(Rational::one_half().is_probability());
        assert!(!Rational::from_ratio_u64(3, 2).is_probability());
    }

    #[test]
    fn complement() {
        assert_eq!(
            Rational::from_ratio_u64(1, 4).complement(),
            Rational::from_ratio_u64(3, 4)
        );
        assert_eq!(Rational::one().complement(), Rational::zero());
    }

    #[test]
    fn reciprocal_and_pow() {
        assert_eq!(
            Rational::from_ratio_u64(2, 5).reciprocal(),
            Rational::from_ratio_u64(5, 2)
        );
        assert_eq!(
            Rational::one_half().pow(10),
            Rational::from_ratio_u64(1, 1024)
        );
        assert_eq!(Rational::from_ratio_u64(7, 3).pow(0), Rational::one());
    }

    #[test]
    #[should_panic]
    fn reciprocal_of_zero_panics() {
        let _ = Rational::zero().reciprocal();
    }

    #[test]
    fn from_f64_dyadic_exact() {
        assert_eq!(
            Rational::from_f64_dyadic(0.5).unwrap(),
            Rational::one_half()
        );
        assert_eq!(
            Rational::from_f64_dyadic(0.25).unwrap(),
            Rational::from_ratio_u64(1, 4)
        );
        assert_eq!(
            Rational::from_f64_dyadic(-1.5).unwrap(),
            Rational::from_ratio_i64(-3, 2)
        );
        assert_eq!(Rational::from_f64_dyadic(0.0).unwrap(), Rational::zero());
        assert_eq!(
            Rational::from_f64_dyadic(3.0).unwrap(),
            Rational::from_ratio_u64(3, 1)
        );
        assert!(Rational::from_f64_dyadic(f64::NAN).is_none());
        assert!(Rational::from_f64_dyadic(f64::INFINITY).is_none());
    }

    #[test]
    fn to_f64_roundtrip() {
        for (n, d) in [(1u64, 2u64), (3, 4), (7, 8), (1, 1), (0, 1), (5, 16)] {
            let r = Rational::from_ratio_u64(n, d);
            assert!((r.to_f64() - n as f64 / d as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn ordering() {
        let vals: Vec<Rational> = [(1i64, 3u64), (1, 2), (2, 3), (-1, 2), (0, 1)]
            .iter()
            .map(|&(n, d)| Rational::from_ratio_i64(n, d))
            .collect();
        let as_f64: Vec<f64> = vals.iter().map(|r| r.to_f64()).collect();
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                assert_eq!(
                    vals[i].cmp(&vals[j]),
                    as_f64[i].partial_cmp(&as_f64[j]).unwrap()
                );
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Rational::from_ratio_u64(3, 4).to_string(), "3/4");
        assert_eq!(Rational::from_ratio_u64(4, 2).to_string(), "2");
        assert_eq!(Rational::from_ratio_i64(-3, 9).to_string(), "-1/3");
    }

    #[test]
    fn sum_of_possible_world_probabilities_is_one() {
        // Sanity check of the TID semantics at the arithmetic level: with
        // three facts of probability 1/2, 1/3, 2/5 the 8 world probabilities
        // sum to 1.
        let probs = [
            Rational::one_half(),
            Rational::from_ratio_u64(1, 3),
            Rational::from_ratio_u64(2, 5),
        ];
        let mut total = Rational::zero();
        for mask in 0..8u32 {
            let mut w = Rational::one();
            for (i, p) in probs.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    w = &w * p;
                } else {
                    w = &w * &p.complement();
                }
            }
            total = &total + &w;
        }
        assert!(total.is_one());
    }
}
