//! Exact rational numbers.
//!
//! Definition 3.1 of the paper represents probabilities as pairs
//! numerator/denominator; the "ra-linear" complexity measure counts arithmetic
//! operations on such rationals at unit cost. [`Rational`] is the exact
//! number type threaded through probability evaluation, weighted model
//! counting, and match counting.

use crate::bigint::BigInt;
use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// An exact rational number, kept in lowest terms with a positive denominator.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    numerator: BigInt,
    denominator: BigUint,
}

impl Rational {
    /// The value 0.
    pub fn zero() -> Self {
        Rational {
            numerator: BigInt::zero(),
            denominator: BigUint::one(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        Rational {
            numerator: BigInt::one(),
            denominator: BigUint::one(),
        }
    }

    /// The value 1/2, the valuation used when relating probability evaluation
    /// to model counting (footnote 3 of the paper).
    pub fn one_half() -> Self {
        Rational::from_ratio_u64(1, 2)
    }

    /// Builds `n/d` from machine integers. Panics if `d == 0`.
    pub fn from_ratio_u64(n: u64, d: u64) -> Self {
        assert!(d != 0, "zero denominator");
        Rational::new(BigInt::from_u64(n), BigUint::from_u64(d))
    }

    /// Builds `n/d` from a signed numerator and unsigned denominator.
    /// Panics if `d == 0`.
    pub fn from_ratio_i64(n: i64, d: u64) -> Self {
        assert!(d != 0, "zero denominator");
        Rational::new(BigInt::from_i64(n), BigUint::from_u64(d))
    }

    /// Builds an integer-valued rational.
    pub fn from_integer(n: BigInt) -> Self {
        Rational {
            numerator: n,
            denominator: BigUint::one(),
        }
    }

    /// Builds a non-negative integer-valued rational from a [`BigUint`].
    pub fn from_biguint(n: BigUint) -> Self {
        Rational::from_integer(BigInt::from_biguint(n))
    }

    /// Builds a rational from an arbitrary numerator and denominator,
    /// normalizing sign and reducing to lowest terms. Panics if `d == 0`.
    pub fn new(n: BigInt, d: BigUint) -> Self {
        assert!(!d.is_zero(), "zero denominator");
        let mut out = Rational {
            numerator: n,
            denominator: d,
        };
        out.reduce();
        out
    }

    /// Exact conversion from an `f64` that is a dyadic rational produced by
    /// ordinary probability inputs (e.g. `0.5`, `0.25`). Returns `None` for
    /// NaN or infinite values.
    pub fn from_f64_dyadic(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Rational::zero());
        }
        // Decompose v = mantissa * 2^exp exactly.
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7FF) as i64;
        let fraction = bits & 0xF_FFFF_FFFF_FFFF;
        let (mantissa, exp) = if exponent == 0 {
            (fraction, -1074i64)
        } else {
            (fraction | (1 << 52), exponent - 1075)
        };
        let m = BigUint::from_u64(mantissa);
        let mut out = if exp >= 0 {
            Rational::from_biguint(&m * &BigUint::pow2(exp as usize))
        } else {
            Rational::new(BigInt::from_biguint(m), BigUint::pow2((-exp) as usize))
        };
        if sign < 0 {
            out = -out;
        }
        Some(out)
    }

    /// The numerator (signed, in lowest terms).
    pub fn numerator(&self) -> &BigInt {
        &self.numerator
    }

    /// The denominator (positive, in lowest terms).
    pub fn denominator(&self) -> &BigUint {
        &self.denominator
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.numerator.is_zero()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.denominator.is_one() && self.numerator == BigInt::one()
    }

    /// Returns `true` if the value lies in the closed interval \[0, 1\]
    /// (i.e. it is a valid probability).
    pub fn is_probability(&self) -> bool {
        !self.numerator.is_negative() && self.numerator.magnitude() <= &self.denominator
    }

    /// `1 - self`; the probability of the complementary event.
    pub fn complement(&self) -> Self {
        &Rational::one() - self
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale to keep precision when both sides are huge.
        let n_bits = self.numerator.magnitude().bits();
        let d_bits = self.denominator.bits();
        if n_bits < 900 && d_bits < 900 {
            return self.numerator.to_f64() / self.denominator.to_f64();
        }
        let shift = n_bits.max(d_bits).saturating_sub(512);
        let n = self.numerator.magnitude() >> shift;
        let d = &self.denominator >> shift;
        let approx = n.to_f64() / d.to_f64();
        if self.numerator.is_negative() {
            -approx
        } else {
            approx
        }
    }

    /// Multiplicative inverse. Panics if the value is zero.
    pub fn reciprocal(&self) -> Self {
        assert!(!self.is_zero(), "reciprocal of zero");
        let sign = self.numerator.sign();
        let n = BigInt::from_sign_magnitude(sign, self.denominator.clone());
        Rational::new(n, self.numerator.magnitude().clone())
    }

    /// `self^exp` for a machine-sized exponent.
    pub fn pow(&self, exp: u32) -> Self {
        let mut acc = Rational::one();
        for _ in 0..exp {
            acc = &acc * self;
        }
        acc
    }

    fn reduce(&mut self) {
        if self.numerator.is_zero() {
            self.denominator = BigUint::one();
            return;
        }
        let g = self.numerator.magnitude().gcd(&self.denominator);
        if !g.is_one() {
            let (n, _) = self.numerator.magnitude().div_rem(&g);
            let (d, _) = self.denominator.div_rem(&g);
            self.numerator = BigInt::from_sign_magnitude(self.numerator.sign(), n);
            self.denominator = d;
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({})", self)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denominator.is_one() {
            write!(f, "{}", self.numerator)
        } else {
            write!(f, "{}/{}", self.numerator, self.denominator)
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b cmp c/d  <=>  a*d cmp c*b   (b, d > 0)
        let lhs = &self.numerator * &BigInt::from_biguint(other.denominator.clone());
        let rhs = &other.numerator * &BigInt::from_biguint(self.denominator.clone());
        lhs.cmp(&rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numerator: -self.numerator,
            denominator: self.denominator,
        }
    }
}

impl Add<&Rational> for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        let n = &(&self.numerator * &BigInt::from_biguint(rhs.denominator.clone()))
            + &(&rhs.numerator * &BigInt::from_biguint(self.denominator.clone()));
        let d = &self.denominator * &rhs.denominator;
        Rational::new(n, d)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        &self + &rhs
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl Sub<&Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs.clone())
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        &self - &rhs
    }
}

impl Mul<&Rational> for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        let n = &self.numerator * &rhs.numerator;
        let d = &self.denominator * &rhs.denominator;
        Rational::new(n, d)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        &self * &rhs
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl Div<&Rational> for &Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division as reciprocal multiplication
    fn div(self, rhs: &Rational) -> Rational {
        self * &rhs.reciprocal()
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        &self / &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        let r = Rational::from_ratio_u64(6, 8);
        assert_eq!(r.numerator().to_i64(), Some(3));
        assert_eq!(r.denominator().to_u64(), Some(4));
        let z = Rational::from_ratio_i64(0, 17);
        assert!(z.is_zero());
        assert_eq!(z.denominator().to_u64(), Some(1));
    }

    #[test]
    fn arithmetic_small() {
        let a = Rational::from_ratio_u64(1, 3);
        let b = Rational::from_ratio_u64(1, 6);
        assert_eq!(&a + &b, Rational::from_ratio_u64(1, 2));
        assert_eq!(&a - &b, Rational::from_ratio_u64(1, 6));
        assert_eq!(&a * &b, Rational::from_ratio_u64(1, 18));
        assert_eq!(&a / &b, Rational::from_ratio_u64(2, 1));
    }

    #[test]
    fn negative_values() {
        let a = Rational::from_ratio_i64(-1, 2);
        let b = Rational::from_ratio_u64(1, 4);
        assert_eq!(&a + &b, Rational::from_ratio_i64(-1, 4));
        assert_eq!(&a * &b, Rational::from_ratio_i64(-1, 8));
        assert!(a < b);
        assert!(!a.is_probability());
    }

    #[test]
    fn probability_range() {
        assert!(Rational::zero().is_probability());
        assert!(Rational::one().is_probability());
        assert!(Rational::one_half().is_probability());
        assert!(!Rational::from_ratio_u64(3, 2).is_probability());
    }

    #[test]
    fn complement() {
        assert_eq!(
            Rational::from_ratio_u64(1, 4).complement(),
            Rational::from_ratio_u64(3, 4)
        );
        assert_eq!(Rational::one().complement(), Rational::zero());
    }

    #[test]
    fn reciprocal_and_pow() {
        assert_eq!(
            Rational::from_ratio_u64(2, 5).reciprocal(),
            Rational::from_ratio_u64(5, 2)
        );
        assert_eq!(
            Rational::one_half().pow(10),
            Rational::from_ratio_u64(1, 1024)
        );
        assert_eq!(Rational::from_ratio_u64(7, 3).pow(0), Rational::one());
    }

    #[test]
    #[should_panic]
    fn reciprocal_of_zero_panics() {
        let _ = Rational::zero().reciprocal();
    }

    #[test]
    fn from_f64_dyadic_exact() {
        assert_eq!(
            Rational::from_f64_dyadic(0.5).unwrap(),
            Rational::one_half()
        );
        assert_eq!(
            Rational::from_f64_dyadic(0.25).unwrap(),
            Rational::from_ratio_u64(1, 4)
        );
        assert_eq!(
            Rational::from_f64_dyadic(-1.5).unwrap(),
            Rational::from_ratio_i64(-3, 2)
        );
        assert_eq!(Rational::from_f64_dyadic(0.0).unwrap(), Rational::zero());
        assert_eq!(
            Rational::from_f64_dyadic(3.0).unwrap(),
            Rational::from_ratio_u64(3, 1)
        );
        assert!(Rational::from_f64_dyadic(f64::NAN).is_none());
        assert!(Rational::from_f64_dyadic(f64::INFINITY).is_none());
    }

    #[test]
    fn to_f64_roundtrip() {
        for (n, d) in [(1u64, 2u64), (3, 4), (7, 8), (1, 1), (0, 1), (5, 16)] {
            let r = Rational::from_ratio_u64(n, d);
            assert!((r.to_f64() - n as f64 / d as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn ordering() {
        let vals: Vec<Rational> = [(1i64, 3u64), (1, 2), (2, 3), (-1, 2), (0, 1)]
            .iter()
            .map(|&(n, d)| Rational::from_ratio_i64(n, d))
            .collect();
        let as_f64: Vec<f64> = vals.iter().map(|r| r.to_f64()).collect();
        for i in 0..vals.len() {
            for j in 0..vals.len() {
                assert_eq!(
                    vals[i].cmp(&vals[j]),
                    as_f64[i].partial_cmp(&as_f64[j]).unwrap()
                );
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(Rational::from_ratio_u64(3, 4).to_string(), "3/4");
        assert_eq!(Rational::from_ratio_u64(4, 2).to_string(), "2");
        assert_eq!(Rational::from_ratio_i64(-3, 9).to_string(), "-1/3");
    }

    #[test]
    fn sum_of_possible_world_probabilities_is_one() {
        // Sanity check of the TID semantics at the arithmetic level: with
        // three facts of probability 1/2, 1/3, 2/5 the 8 world probabilities
        // sum to 1.
        let probs = [
            Rational::one_half(),
            Rational::from_ratio_u64(1, 3),
            Rational::from_ratio_u64(2, 5),
        ];
        let mut total = Rational::zero();
        for mask in 0..8u32 {
            let mut w = Rational::one();
            for (i, p) in probs.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    w = &w * p;
                } else {
                    w = &w * &p.complement();
                }
            }
            total = &total + &w;
        }
        assert!(total.is_one());
    }
}
