//! Arbitrary-precision unsigned integers.
//!
//! Probability evaluation in the paper is "ra-linear": linear time up to the
//! cost of arithmetic on exact rational numbers (footnote 1 of the paper).
//! Exact rationals require unbounded integers — possible-world counts are
//! `2^{|I|}` — so we provide a small, dependency-free big-integer
//! implementation. Limbs are base-`2^32` stored little-endian in a `Vec<u32>`;
//! multiplication is schoolbook, division is Knuth algorithm D restricted to
//! the cases we need (it falls back to binary long division for simplicity on
//! multi-limb divisors), which is more than adequate for the instance sizes
//! exercised by the experiments.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};

const BASE_BITS: u32 = 32;

/// An arbitrary-precision unsigned integer.
///
/// The internal representation is a little-endian vector of 32-bit limbs with
/// no trailing zero limbs; zero is represented by an empty vector.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if this integer is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Builds a big integer from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut out = BigUint {
            limbs: vec![(v & 0xFFFF_FFFF) as u32, (v >> 32) as u32],
        };
        out.normalize();
        out
    }

    /// Builds a big integer from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut limbs = Vec::with_capacity(4);
        let mut v = v;
        while v != 0 {
            limbs.push((v & 0xFFFF_FFFF) as u32);
            v >>= 32;
        }
        BigUint { limbs }
    }

    /// Converts to `u64` if the value fits, `None` otherwise.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits, `None` otherwise.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut out: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            out |= (l as u128) << (32 * i);
        }
        Some(out)
    }

    /// Approximate conversion to `f64` (may lose precision, may be infinite).
    pub fn to_f64(&self) -> f64 {
        let mut out = 0.0f64;
        for &l in self.limbs.iter().rev() {
            out = out * 4294967296.0 + l as f64;
        }
        out
    }

    /// Number of significant bits (0 for the value 0).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// `2^exp`.
    pub fn pow2(exp: usize) -> Self {
        let mut limbs = vec![0u32; exp / 32 + 1];
        limbs[exp / 32] = 1 << (exp % 32);
        BigUint { limbs }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> Self {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    fn normalize(&mut self) {
        while let Some(&0) = self.limbs.last() {
            self.limbs.pop();
        }
    }

    /// Number of trailing zero bits (0 for the value 0).
    pub fn trailing_zeros(&self) -> usize {
        for (i, &limb) in self.limbs.iter().enumerate() {
            if limb != 0 {
                return i * 32 + limb.trailing_zeros() as usize;
            }
        }
        0
    }

    /// Greatest common divisor (Stein's binary algorithm: shifts and
    /// subtractions only). Every `Rational` operation reduces through this,
    /// and the numerators of the exact probability pipelines grow to
    /// thousands of bits, where binary gcd's O(bits) cheap iterations beat
    /// Euclid's O(bits) *long divisions* by orders of magnitude.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let az = self.trailing_zeros();
        let bz = other.trailing_zeros();
        let shift = az.min(bz);
        let mut a = self >> az;
        let mut b = other >> bz;
        // Invariant: a and b odd; each round strips at least one bit off b.
        loop {
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b -= &a;
            if b.is_zero() {
                break;
            }
            let tz = b.trailing_zeros();
            b = &b >> tz;
        }
        &a << shift
    }

    /// Quotient and remainder of Euclidean division. Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_small(divisor.limbs[0]);
            return (q, BigUint::from_u64(r as u64));
        }
        // Binary long division: simple and correct; divisor has >= 2 limbs so
        // the loop count is the bit-length of the dividend.
        let mut quotient = BigUint::zero();
        let mut remainder = BigUint::zero();
        let nbits = self.bits();
        for i in (0..nbits).rev() {
            remainder = &remainder << 1;
            if self.bit(i) {
                remainder.set_bit(0);
            }
            if remainder >= *divisor {
                remainder = &remainder - divisor;
                quotient.set_bit_at(i);
            }
        }
        quotient.normalize();
        remainder.normalize();
        (quotient, remainder)
    }

    fn div_rem_small(&self, d: u32) -> (BigUint, u32) {
        let mut rem: u64 = 0;
        let mut q = vec![0u32; self.limbs.len()];
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            q[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        let mut out = BigUint { limbs: q };
        out.normalize();
        (out, rem as u32)
    }

    fn bit(&self, i: usize) -> bool {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 32)) & 1 == 1
    }

    fn set_bit(&mut self, i: usize) {
        self.set_bit_at(i);
    }

    fn set_bit_at(&mut self, i: usize) {
        let limb = i / 32;
        if limb >= self.limbs.len() {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << (i % 32);
    }

    /// Parses a decimal string. Returns `None` on invalid input.
    pub fn from_decimal_str(s: &str) -> Option<Self> {
        if s.is_empty() {
            return None;
        }
        let mut out = BigUint::zero();
        let ten = BigUint::from_u64(10);
        for c in s.chars() {
            let d = c.to_digit(10)?;
            out = &out * &ten + BigUint::from_u64(d as u64);
        }
        Some(out)
    }

    /// Decimal string representation.
    pub fn to_decimal_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_small(10);
            digits.push(char::from_digit(r, 10).unwrap());
            cur = q;
        }
        digits.iter().rev().collect()
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self.to_decimal_string())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal_string())
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_u64(v as u64)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from_u64(v as u64)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry: u64 = 0;
        for i in 0..long.limbs.len() {
            let s = long.limbs[i] as u64 + short.limbs.get(i).copied().unwrap_or(0) as u64 + carry;
            limbs.push((s & 0xFFFF_FFFF) as u32);
            carry = s >> BASE_BITS;
        }
        if carry > 0 {
            limbs.push(carry as u32);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl Add<BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        self + &rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    /// Panics if `rhs > self` (unsigned subtraction).
    fn sub(self, rhs: &BigUint) -> BigUint {
        assert!(self >= rhs, "BigUint subtraction underflow");
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let d = self.limbs[i] as i64 - rhs.limbs.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                limbs.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                limbs.push(d as u32);
                borrow = 0;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u32; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = limbs[i + j] as u64 + a as u64 * b as u64 + carry;
                limbs[i + j] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> BASE_BITS;
            }
            let mut k = i + rhs.limbs.len();
            while carry > 0 {
                let cur = limbs[k] as u64 + carry;
                limbs[k] = (cur & 0xFFFF_FFFF) as u32;
                carry = cur >> BASE_BITS;
                k += 1;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = shift / 32;
        let bit_shift = shift % 32;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: usize) -> BigUint {
        let limb_shift = shift / 32;
        let bit_shift = shift % 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut limbs = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            for i in limb_shift..self.limbs.len() {
                let mut v = self.limbs[i] >> bit_shift;
                if i + 1 < self.limbs.len() {
                    v |= self.limbs[i + 1] << (32 - bit_shift);
                }
                limbs.push(v);
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().to_u64(), Some(0));
        assert_eq!(BigUint::one().to_u64(), Some(1));
    }

    #[test]
    fn roundtrip_u64() {
        for v in [0u64, 1, 42, u32::MAX as u64, u64::MAX, 1 << 33] {
            assert_eq!(BigUint::from_u64(v).to_u64(), Some(v));
        }
    }

    #[test]
    fn roundtrip_u128() {
        let v = 123456789012345678901234567890u128;
        assert_eq!(BigUint::from_u128(v).to_u128(), Some(v));
    }

    #[test]
    fn add_sub_small() {
        let a = BigUint::from_u64(12345);
        let b = BigUint::from_u64(67890);
        assert_eq!((&a + &b).to_u64(), Some(80235));
        assert_eq!((&b - &a).to_u64(), Some(55545));
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::one();
        let c = &a + &b;
        assert_eq!(c.to_u128(), Some(u64::MAX as u128 + 1));
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::from_u64(2);
    }

    #[test]
    fn mul_small() {
        let a = BigUint::from_u64(123456);
        let b = BigUint::from_u64(789012);
        assert_eq!((&a * &b).to_u64(), Some(123456 * 789012));
    }

    #[test]
    fn mul_large() {
        let a = BigUint::from_u128(u128::MAX / 3);
        let b = BigUint::from_u64(3);
        let c = &a * &b;
        assert_eq!(c.to_u128(), Some((u128::MAX / 3) * 3));
    }

    #[test]
    fn pow2_and_bits() {
        assert_eq!(BigUint::pow2(0).to_u64(), Some(1));
        assert_eq!(BigUint::pow2(10).to_u64(), Some(1024));
        assert_eq!(BigUint::pow2(100).bits(), 101);
    }

    #[test]
    fn pow_matches_u128() {
        let a = BigUint::from_u64(7);
        assert_eq!(a.pow(20).to_u128(), Some(7u128.pow(20)));
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = BigUint::from_u128(123456789012345678901234567890u128);
        let b = BigUint::from_u64(97);
        let (q, r) = a.div_rem(&b);
        let expected_q = 123456789012345678901234567890u128 / 97;
        let expected_r = 123456789012345678901234567890u128 % 97;
        assert_eq!(q.to_u128(), Some(expected_q));
        assert_eq!(r.to_u128(), Some(expected_r));
    }

    #[test]
    fn div_rem_large_divisor() {
        let a = BigUint::from_u128(340282366920938463463374607431768211455u128);
        let b = BigUint::from_u128(18446744073709551629u128);
        let (q, r) = a.div_rem(&b);
        assert_eq!(
            (&(&q * &b) + &r).to_u128(),
            Some(340282366920938463463374607431768211455u128)
        );
        assert!(r < b);
    }

    #[test]
    fn gcd_small() {
        let a = BigUint::from_u64(48);
        let b = BigUint::from_u64(36);
        assert_eq!(a.gcd(&b).to_u64(), Some(12));
        assert_eq!(BigUint::zero().gcd(&a).to_u64(), Some(48));
        assert_eq!(a.gcd(&BigUint::zero()).to_u64(), Some(48));
    }

    #[test]
    fn decimal_roundtrip() {
        let s = "98765432109876543210987654321098765432109876543210";
        let v = BigUint::from_decimal_str(s).unwrap();
        assert_eq!(v.to_decimal_string(), s);
        assert_eq!(BigUint::zero().to_decimal_string(), "0");
        assert!(BigUint::from_decimal_str("12a").is_none());
        assert!(BigUint::from_decimal_str("").is_none());
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_u64(0b1011);
        assert_eq!((&a << 3).to_u64(), Some(0b1011000));
        assert_eq!((&a >> 2).to_u64(), Some(0b10));
        assert_eq!((&BigUint::from_u64(1) << 100).bits(), 101);
        assert_eq!((&(&BigUint::from_u64(1) << 100) >> 100).to_u64(), Some(1));
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(100);
        let b = BigUint::from_u64(200);
        let c = BigUint::from_u128(1u128 << 70);
        assert!(a < b);
        assert!(b < c);
        assert!(c > a);
        assert_eq!(a.cmp(&BigUint::from_u64(100)), Ordering::Equal);
    }

    #[test]
    fn to_f64_approx() {
        let v = BigUint::from_u64(1 << 40);
        assert!((v.to_f64() - (1u64 << 40) as f64).abs() < 1.0);
    }
}
