//! Arbitrary-precision signed integers, built as a sign + [`BigUint`] magnitude.

use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`]. Zero always has sign [`Sign::Zero`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    magnitude: BigUint,
}

impl BigInt {
    /// The value 0.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            magnitude: BigUint::zero(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            magnitude: BigUint::one(),
        }
    }

    /// Builds from a sign and magnitude, normalizing zero.
    pub fn from_sign_magnitude(sign: Sign, magnitude: BigUint) -> Self {
        if magnitude.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "non-zero magnitude with Zero sign");
            BigInt { sign, magnitude }
        }
    }

    /// Builds from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Positive,
                magnitude: BigUint::from_u64(v as u64),
            },
            Ordering::Less => BigInt {
                sign: Sign::Negative,
                magnitude: BigUint::from_u64(v.unsigned_abs()),
            },
        }
    }

    /// Builds a non-negative integer from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        BigInt::from_sign_magnitude(
            if v == 0 { Sign::Zero } else { Sign::Positive },
            BigUint::from_u64(v),
        )
    }

    /// Converts from an unsigned big integer.
    pub fn from_biguint(v: BigUint) -> Self {
        BigInt::from_sign_magnitude(
            if v.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            v,
        )
    }

    /// The sign of this integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The absolute value, as an unsigned big integer.
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Converts to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.magnitude.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(m).ok(),
            Sign::Negative => {
                if m <= i64::MAX as u64 + 1 {
                    Some(-(m as i128) as i64)
                } else {
                    None
                }
            }
        }
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.magnitude.to_f64();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.magnitude)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from_i64(v)
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.magnitude.cmp(&other.magnitude),
                Sign::Negative => other.magnitude.cmp(&self.magnitude),
            },
            ord => ord,
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        BigInt {
            sign,
            magnitude: self.magnitude,
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt {
                sign: a,
                magnitude: &self.magnitude + &rhs.magnitude,
            },
            _ => {
                // Opposite signs: subtract the smaller magnitude from the larger.
                match self.magnitude.cmp(&rhs.magnitude) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt {
                        sign: self.sign,
                        magnitude: &self.magnitude - &rhs.magnitude,
                    },
                    Ordering::Less => BigInt {
                        sign: rhs.sign,
                        magnitude: &rhs.magnitude - &self.magnitude,
                    },
                }
            }
        }
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        &self + &rhs
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        &self - &rhs
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt {
            sign,
            magnitude: &self.magnitude * &rhs.magnitude,
        }
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        &self * &rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_signs() {
        assert!(BigInt::zero().is_zero());
        assert_eq!(BigInt::from_i64(-5).sign(), Sign::Negative);
        assert_eq!(BigInt::from_i64(5).sign(), Sign::Positive);
        assert_eq!(BigInt::from_i64(0).sign(), Sign::Zero);
    }

    #[test]
    fn roundtrip_i64() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN + 1] {
            assert_eq!(BigInt::from_i64(v).to_i64(), Some(v));
        }
    }

    #[test]
    fn add_mixed_signs() {
        let a = BigInt::from_i64(100);
        let b = BigInt::from_i64(-30);
        assert_eq!((&a + &b).to_i64(), Some(70));
        assert_eq!((&b + &a).to_i64(), Some(70));
        assert_eq!((&(-a.clone()) + &b).to_i64(), Some(-130));
        assert_eq!((&a + &BigInt::from_i64(-100)).to_i64(), Some(0));
    }

    #[test]
    fn sub_and_neg() {
        let a = BigInt::from_i64(10);
        let b = BigInt::from_i64(25);
        assert_eq!((&a - &b).to_i64(), Some(-15));
        assert_eq!((-BigInt::from_i64(-7)).to_i64(), Some(7));
        assert_eq!((-BigInt::zero()).to_i64(), Some(0));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(
            (&BigInt::from_i64(-6) * &BigInt::from_i64(7)).to_i64(),
            Some(-42)
        );
        assert_eq!(
            (&BigInt::from_i64(-6) * &BigInt::from_i64(-7)).to_i64(),
            Some(42)
        );
        assert_eq!(
            (&BigInt::from_i64(0) * &BigInt::from_i64(-7)).to_i64(),
            Some(0)
        );
    }

    #[test]
    fn ordering() {
        let vals = [-100i64, -1, 0, 1, 100];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    BigInt::from_i64(a).cmp(&BigInt::from_i64(b)),
                    a.cmp(&b),
                    "{} vs {}",
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(BigInt::from_i64(-12345).to_string(), "-12345");
        assert_eq!(BigInt::from_i64(0).to_string(), "0");
        assert_eq!(BigInt::from_i64(99).to_string(), "99");
    }
}
