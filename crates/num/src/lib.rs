//! Exact arbitrary-precision arithmetic for the `treelineage` workspace.
//!
//! The paper's tractability results are stated in "ra-linear" time: linear
//! time up to the (polynomial) cost of arithmetic operations on exact rational
//! numbers (Theorem 3.2). This crate provides the number types used by
//! probability evaluation, weighted model counting and match counting:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers (model counts can be
//!   as large as `2^{|I|}`),
//! * [`BigInt`] — signed integers,
//! * [`Rational`] — exact rationals in lowest terms (probabilities are given
//!   as numerator/denominator pairs, footnote 1 of the paper).
//!
//! The implementation is deliberately simple (schoolbook multiplication,
//! binary long division): the experiments run on instances of a few thousand
//! facts, where these routines are nowhere near the bottleneck, and keeping
//! the crate dependency-free makes the workspace self-contained.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use rational::Rational;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn biguint_add_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let sum = &BigUint::from_u64(a) + &BigUint::from_u64(b);
            prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
        }

        #[test]
        fn biguint_mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let prod = &BigUint::from_u64(a) * &BigUint::from_u64(b);
            prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
        }

        #[test]
        fn biguint_div_rem_invariant(a in 0u128..u128::MAX, b in 1u64..u64::MAX) {
            let a_big = BigUint::from_u128(a);
            let b_big = BigUint::from_u64(b);
            let (q, r) = a_big.div_rem(&b_big);
            prop_assert!(r < b_big);
            prop_assert_eq!(&(&q * &b_big) + &r, a_big);
        }

        #[test]
        fn biguint_decimal_roundtrip(a in 0u128..u128::MAX) {
            let v = BigUint::from_u128(a);
            let s = v.to_decimal_string();
            prop_assert_eq!(BigUint::from_decimal_str(&s), Some(v));
            prop_assert_eq!(s, a.to_string());
        }

        #[test]
        fn bigint_add_sub_matches_i128(a in i64::MIN/2..i64::MAX/2, b in i64::MIN/2..i64::MAX/2) {
            let x = BigInt::from_i64(a);
            let y = BigInt::from_i64(b);
            prop_assert_eq!((&x + &y).to_i64(), Some(a + b));
            prop_assert_eq!((&x - &y).to_i64(), Some(a - b));
        }

        #[test]
        fn rational_field_axioms(an in -1000i64..1000, ad in 1u64..1000,
                                 bn in -1000i64..1000, bd in 1u64..1000,
                                 cn in -1000i64..1000, cd in 1u64..1000) {
            let a = Rational::from_ratio_i64(an, ad);
            let b = Rational::from_ratio_i64(bn, bd);
            let c = Rational::from_ratio_i64(cn, cd);
            // Commutativity and associativity.
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&a * &b, &b * &a);
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
            // Distributivity.
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
            // Additive inverse.
            prop_assert!((&a - &a).is_zero());
        }

        #[test]
        fn rational_div_inverts_mul(an in -1000i64..1000, ad in 1u64..1000,
                                    bn in 1i64..1000, bd in 1u64..1000) {
            let a = Rational::from_ratio_i64(an, ad);
            let b = Rational::from_ratio_i64(bn, bd);
            prop_assert_eq!(&(&a * &b) / &b, a);
        }

        #[test]
        fn rational_cmp_matches_f64(an in -1000i64..1000, ad in 1u64..1000,
                                    bn in -1000i64..1000, bd in 1u64..1000) {
            let a = Rational::from_ratio_i64(an, ad);
            let b = Rational::from_ratio_i64(bn, bd);
            let fa = an as f64 / ad as f64;
            let fb = bn as f64 / bd as f64;
            if (fa - fb).abs() > 1e-9 {
                prop_assert_eq!(a < b, fa < fb);
            }
        }
    }
}
