//! Exact arbitrary-precision arithmetic for the `treelineage` workspace.
//!
//! The paper's tractability results are stated in "ra-linear" time: linear
//! time up to the (polynomial) cost of arithmetic operations on exact rational
//! numbers (Theorem 3.2). This crate provides the number types used by
//! probability evaluation, weighted model counting and match counting:
//!
//! * [`BigUint`] — arbitrary-precision unsigned integers (model counts can be
//!   as large as `2^{|I|}`),
//! * [`BigInt`] — signed integers,
//! * [`Rational`] — exact rationals in lowest terms (probabilities are given
//!   as numerator/denominator pairs, footnote 1 of the paper),
//! * [`ErrorInterval`] — certified `f64` enclosures of exact values, the
//!   arithmetic behind the engine's float fast-path with exact fallback.
//!
//! The implementation is deliberately simple (schoolbook multiplication,
//! binary long division): the experiments run on instances of a few thousand
//! facts, where these routines are nowhere near the bottleneck, and keeping
//! the crate dependency-free makes the workspace self-contained.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod interval;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use interval::ErrorInterval;
pub use rational::Rational;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn biguint_add_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let sum = &BigUint::from_u64(a) + &BigUint::from_u64(b);
            prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
        }

        #[test]
        fn biguint_mul_matches_u128(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let prod = &BigUint::from_u64(a) * &BigUint::from_u64(b);
            prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
        }

        #[test]
        fn biguint_div_rem_invariant(a in 0u128..u128::MAX, b in 1u64..u64::MAX) {
            let a_big = BigUint::from_u128(a);
            let b_big = BigUint::from_u64(b);
            let (q, r) = a_big.div_rem(&b_big);
            prop_assert!(r < b_big);
            prop_assert_eq!(&(&q * &b_big) + &r, a_big);
        }

        #[test]
        fn biguint_decimal_roundtrip(a in 0u128..u128::MAX) {
            let v = BigUint::from_u128(a);
            let s = v.to_decimal_string();
            prop_assert_eq!(BigUint::from_decimal_str(&s), Some(v));
            prop_assert_eq!(s, a.to_string());
        }

        #[test]
        fn bigint_add_sub_matches_i128(a in i64::MIN/2..i64::MAX/2, b in i64::MIN/2..i64::MAX/2) {
            let x = BigInt::from_i64(a);
            let y = BigInt::from_i64(b);
            prop_assert_eq!((&x + &y).to_i64(), Some(a + b));
            prop_assert_eq!((&x - &y).to_i64(), Some(a - b));
        }

        #[test]
        fn rational_field_axioms(an in -1000i64..1000, ad in 1u64..1000,
                                 bn in -1000i64..1000, bd in 1u64..1000,
                                 cn in -1000i64..1000, cd in 1u64..1000) {
            let a = Rational::from_ratio_i64(an, ad);
            let b = Rational::from_ratio_i64(bn, bd);
            let c = Rational::from_ratio_i64(cn, cd);
            // Commutativity and associativity.
            prop_assert_eq!(&a + &b, &b + &a);
            prop_assert_eq!(&a * &b, &b * &a);
            prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
            prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
            // Distributivity.
            prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
            // Additive inverse.
            prop_assert!((&a - &a).is_zero());
        }

        #[test]
        fn rational_div_inverts_mul(an in -1000i64..1000, ad in 1u64..1000,
                                    bn in 1i64..1000, bd in 1u64..1000) {
            let a = Rational::from_ratio_i64(an, ad);
            let b = Rational::from_ratio_i64(bn, bd);
            prop_assert_eq!(&(&a * &b) / &b, a);
        }

        #[test]
        fn rational_cmp_matches_f64(an in -1000i64..1000, ad in 1u64..1000,
                                    bn in -1000i64..1000, bd in 1u64..1000) {
            let a = Rational::from_ratio_i64(an, ad);
            let b = Rational::from_ratio_i64(bn, bd);
            let fa = an as f64 / ad as f64;
            let fb = bn as f64 / bd as f64;
            if (fa - fb).abs() > 1e-9 {
                prop_assert_eq!(a < b, fa < fb);
            }
        }

        /// `to_f64_bounds` is a *certified and optimal* enclosure on
        /// arbitrary small rationals: `lo <= r <= hi` exactly, with `hi` at
        /// most one ulp above `lo`, and `to_f64` inside the bounds.
        #[test]
        fn to_f64_bounds_enclose_small_rationals(n in -100_000i64..100_000, d in 1u64..100_000) {
            let r = Rational::from_ratio_i64(n, d);
            let (lo, hi) = r.to_f64_bounds();
            prop_assert!(Rational::from_f64_dyadic(lo).unwrap() <= r);
            prop_assert!(r <= Rational::from_f64_dyadic(hi).unwrap());
            prop_assert!(hi == lo || hi == lo.next_up());
            let approx = r.to_f64();
            prop_assert!(lo <= approx && approx <= hi);
        }

        /// The shift-based large-magnitude path of `to_f64`, audited near
        /// the `f64` boundaries: rationals built as `(2^a + x) / (2^b + y)`
        /// with bit sizes straddling the old 900-bit threshold and the
        /// overflow/subnormal range must come back within one ulp-pair and
        /// *ordered consistently* with exact rational comparison.
        #[test]
        fn to_f64_bounds_enclose_huge_rationals(
            a in 0usize..1200, b in 0usize..1200,
            x in 0u64..u64::MAX, y in 0u64..u64::MAX,
            negate in 0u8..2,
        ) {
            let n = &BigUint::pow2(a) + &BigUint::from_u64(x);
            let d = &BigUint::pow2(b) + &BigUint::from_u64(y);
            let mut r = Rational::new(BigInt::from_biguint(n), d);
            if negate == 1 {
                r = -r;
            }
            let (lo, hi) = r.to_f64_bounds();
            // Exact containment, even past f64::MAX (saturating bound) and
            // below the subnormal range.
            if lo.is_finite() {
                prop_assert!(Rational::from_f64_dyadic(lo).unwrap() <= r);
            }
            if hi.is_finite() {
                prop_assert!(r <= Rational::from_f64_dyadic(hi).unwrap());
            }
            prop_assert!(lo <= hi);
            // Optimality: the bounds are adjacent floats (or equal, or a
            // saturating MAX/inf pair at the range boundary).
            prop_assert!(
                hi == lo || hi == lo.next_up(),
                "bounds not adjacent: {} vs {}", lo, hi
            );
            let approx = r.to_f64();
            prop_assert!(!approx.is_nan());
            prop_assert!(lo <= approx && approx <= hi, "to_f64 {} outside [{}, {}]", approx, lo, hi);
        }

        /// Ordering consistency across the boundary-heavy generator: if the
        /// certified enclosures of two rationals are disjoint, their exact
        /// order matches the float order.
        #[test]
        fn to_f64_bounds_order_consistently(
            a in 800usize..1100, b in 0usize..300,
            x in 0u64..u64::MAX, y in 1u64..u64::MAX,
        ) {
            let r1 = Rational::new(
                BigInt::from_biguint(&BigUint::pow2(a) + &BigUint::from_u64(x)),
                BigUint::from_u64(y),
            );
            let r2 = Rational::new(
                BigInt::from_biguint(&BigUint::pow2(a) + &BigUint::from_u64(y)),
                &BigUint::pow2(b) + &BigUint::from_u64(x),
            );
            let (lo1, hi1) = r1.to_f64_bounds();
            let (lo2, hi2) = r2.to_f64_bounds();
            if hi1 < lo2 {
                prop_assert!(r1 < r2);
            }
            if hi2 < lo1 {
                prop_assert!(r2 < r1);
            }
        }
    }
}
