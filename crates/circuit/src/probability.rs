//! Probability evaluation for Boolean circuits.
//!
//! Three evaluation strategies, in increasing order of sophistication:
//!
//! * [`probability_bruteforce`] — enumerate all assignments (the oracle used
//!   by tests);
//! * [`Dnnf::probability`](crate::dnnf::Dnnf::probability) — linear time on
//!   d-DNNFs (in the `dnnf` module);
//! * [`probability_message_passing`] — the paper's "ra-linear" algorithm for
//!   bounded-treewidth circuits (Theorem 3.2 via \[40\]): given a tree
//!   decomposition of the circuit's gate graph in which every gate appears in
//!   a bag together with all of its inputs, probability evaluation runs in
//!   time linear in the number of decomposition nodes and exponential only in
//!   the decomposition width.

use crate::circuit::{Circuit, Gate, GateId, VarId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use treelineage_graph::{NiceNode, NiceTreeDecomposition, TreeDecomposition};
use treelineage_num::Rational;

/// Brute-force probability of the circuit being true under independent
/// variables (`prob(v)` = probability that `v` is true). Exponential in the
/// number of variables; panics above 20.
pub fn probability_bruteforce(circuit: &Circuit, prob: &dyn Fn(VarId) -> Rational) -> Rational {
    let vars: Vec<VarId> = circuit.variables().into_iter().collect();
    assert!(
        vars.len() <= 20,
        "brute-force probability limited to 20 variables"
    );
    let mut total = Rational::zero();
    for mask in 0u64..(1u64 << vars.len()) {
        let true_vars: BTreeSet<VarId> = vars
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &v)| v)
            .collect();
        if !circuit.evaluate_set(&true_vars) {
            continue;
        }
        let mut weight = Rational::one();
        for &v in &vars {
            let p = prob(v);
            if true_vars.contains(&v) {
                weight *= &p;
            } else {
                weight *= &p.complement();
            }
        }
        total += &weight;
    }
    total
}

/// Errors reported by [`probability_message_passing`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MessagePassingError {
    /// The decomposition does not cover some gate together with its inputs,
    /// so the gate's constraint cannot be assigned to a single bag.
    GateFamilyNotCovered(GateId),
    /// The decomposition is not a valid tree decomposition of the gate graph.
    InvalidDecomposition(String),
}

impl std::fmt::Display for MessagePassingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessagePassingError::GateFamilyNotCovered(g) => {
                write!(f, "gate {g:?} and its inputs do not fit in any bag")
            }
            MessagePassingError::InvalidDecomposition(e) => {
                write!(f, "invalid circuit decomposition: {e}")
            }
        }
    }
}

impl std::error::Error for MessagePassingError {}

/// A factor of the probability computation: either the semantic constraint of
/// a gate (its value must equal the function of its inputs), the weight of an
/// input variable, or the requirement that the output gate be true.
enum Factor {
    GateConstraint(GateId),
    VarWeight(GateId, VarId),
    OutputTrue(GateId),
}

impl Factor {
    fn scope(&self, circuit: &Circuit) -> Vec<usize> {
        match self {
            Factor::GateConstraint(g) => {
                let mut scope = vec![g.0];
                match circuit.gate(*g) {
                    Gate::Not(i) => scope.push(i.0),
                    Gate::And(inputs) | Gate::Or(inputs) => {
                        scope.extend(inputs.iter().map(|i| i.0))
                    }
                    Gate::Var(_) | Gate::Const(_) => {}
                }
                scope.sort_unstable();
                scope.dedup();
                scope
            }
            Factor::VarWeight(g, _) | Factor::OutputTrue(g) => vec![g.0],
        }
    }

    /// Evaluates the factor under an assignment of gate values, returning the
    /// multiplicative contribution (0, 1, p or 1-p).
    fn evaluate(
        &self,
        circuit: &Circuit,
        assignment: &BTreeMap<usize, bool>,
        prob: &dyn Fn(VarId) -> Rational,
    ) -> Rational {
        match self {
            Factor::GateConstraint(g) => {
                let value = assignment[&g.0];
                let expected = match circuit.gate(*g) {
                    Gate::Const(b) => *b,
                    Gate::Not(i) => !assignment[&i.0],
                    Gate::And(inputs) => inputs.iter().all(|i| assignment[&i.0]),
                    Gate::Or(inputs) => inputs.iter().any(|i| assignment[&i.0]),
                    Gate::Var(_) => unreachable!("variables have no constraint factor"),
                };
                if value == expected {
                    Rational::one()
                } else {
                    Rational::zero()
                }
            }
            Factor::VarWeight(g, v) => {
                if assignment[&g.0] {
                    prob(*v)
                } else {
                    prob(*v).complement()
                }
            }
            Factor::OutputTrue(g) => {
                if assignment[&g.0] {
                    Rational::one()
                } else {
                    Rational::zero()
                }
            }
        }
    }
}

/// Probability of the circuit's output being true, computed by message
/// passing over a tree decomposition of the circuit's gate graph. The
/// decomposition must be a valid tree decomposition of
/// [`Circuit::gate_graph`] in which, for every gate, some bag contains the
/// gate and all of its inputs (this holds for the moralized decompositions
/// produced by the lineage builders of the core crate). Runs in
/// `O(#bags · 2^{width+1})` arithmetic operations — the paper's ra-linear
/// bound for fixed width.
pub fn probability_message_passing(
    circuit: &Circuit,
    decomposition: &TreeDecomposition,
    prob: &dyn Fn(VarId) -> Rational,
) -> Result<Rational, MessagePassingError> {
    let gate_graph = circuit.gate_graph();
    decomposition
        .validate(&gate_graph)
        .map_err(|e| MessagePassingError::InvalidDecomposition(e.to_string()))?;

    let nice = NiceTreeDecomposition::from_tree_decomposition(decomposition);
    let order = nice.post_order();

    // Build the factor list.
    let mut factors: Vec<Factor> = Vec::new();
    for id in circuit.gate_ids() {
        match circuit.gate(id) {
            Gate::Var(v) => factors.push(Factor::VarWeight(id, *v)),
            _ => factors.push(Factor::GateConstraint(id)),
        }
    }
    factors.push(Factor::OutputTrue(circuit.output()));

    // Assign each factor to the first node (in post-order) whose bag contains
    // its scope.
    let mut owners: Vec<Vec<usize>> = vec![Vec::new(); nice.node_count()];
    'factor: for (fi, factor) in factors.iter().enumerate() {
        let scope = factor.scope(circuit);
        for &node in &order {
            let bag = nice.bag(node);
            if scope.iter().all(|g| bag.contains(g)) {
                owners[node].push(fi);
                continue 'factor;
            }
        }
        // Not covered: report the offending gate.
        let gate = match factor {
            Factor::GateConstraint(g) | Factor::VarWeight(g, _) | Factor::OutputTrue(g) => *g,
        };
        return Err(MessagePassingError::GateFamilyNotCovered(gate));
    }

    // DP over the nice decomposition. A state maps an assignment of the bag's
    // gates (as a sorted (gate, value) vector) to the accumulated weight.
    type Assignment = Vec<(usize, bool)>;
    type State = HashMap<Assignment, Rational>;

    let apply_owned = |node: usize, state: &mut State| {
        if owners[node].is_empty() {
            return;
        }
        let mut next = State::new();
        for (assignment, weight) in state.iter() {
            let map: BTreeMap<usize, bool> = assignment.iter().copied().collect();
            let mut w = weight.clone();
            for &fi in &owners[node] {
                w *= &factors[fi].evaluate(circuit, &map, prob);
                if w.is_zero() {
                    break;
                }
            }
            if !w.is_zero() {
                next.entry(assignment.clone())
                    .and_modify(|acc| *acc += &w)
                    .or_insert(w);
            }
        }
        *state = next;
    };

    let mut states: Vec<State> = vec![State::new(); nice.node_count()];
    for &node in &order {
        let mut state = match nice.node(node) {
            NiceNode::Leaf => {
                let mut s = State::new();
                s.insert(Vec::new(), Rational::one());
                s
            }
            NiceNode::Introduce { vertex, child } => {
                let mut s = State::new();
                for (assignment, weight) in &states[*child] {
                    for value in [false, true] {
                        let mut extended = assignment.clone();
                        extended.push((*vertex, value));
                        extended.sort_unstable_by_key(|&(g, _)| g);
                        s.entry(extended)
                            .and_modify(|acc| *acc += weight)
                            .or_insert_with(|| weight.clone());
                    }
                }
                s
            }
            NiceNode::Forget { vertex, child } => {
                let mut s = State::new();
                for (assignment, weight) in &states[*child] {
                    let reduced: Assignment = assignment
                        .iter()
                        .copied()
                        .filter(|&(g, _)| g != *vertex)
                        .collect();
                    s.entry(reduced)
                        .and_modify(|acc| *acc += weight)
                        .or_insert_with(|| weight.clone());
                }
                s
            }
            NiceNode::Join { left, right } => {
                let mut s = State::new();
                let smaller;
                let larger;
                if states[*left].len() <= states[*right].len() {
                    smaller = &states[*left];
                    larger = &states[*right];
                } else {
                    smaller = &states[*right];
                    larger = &states[*left];
                }
                for (assignment, wl) in smaller {
                    if let Some(wr) = larger.get(assignment) {
                        let product = wl * wr;
                        s.entry(assignment.clone())
                            .and_modify(|acc| *acc += &product)
                            .or_insert(product);
                    }
                }
                s
            }
        };
        apply_owned(node, &mut state);
        states[node] = state;
    }

    let root_state = &states[nice.root()];
    let mut total = Rational::zero();
    for (_, weight) in root_state.iter() {
        total += weight;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{parity_circuit, threshold2_circuit};
    use treelineage_graph::treewidth;

    fn check_against_bruteforce(circuit: &Circuit, prob: &dyn Fn(VarId) -> Rational) {
        let expected = probability_bruteforce(circuit, prob);
        // The covering decomposition (of the moralized gate graph) always
        // covers every gate family, so message passing must succeed and agree.
        let (_, td) = circuit.covering_decomposition();
        let actual = probability_message_passing(circuit, &td, prob).unwrap();
        assert_eq!(actual, expected);
    }

    #[test]
    fn bruteforce_on_simple_circuits() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let o = c.or(vec![x0, x1]);
        c.set_output(o);
        // P(x0 or x1) with p0 = 1/2, p1 = 1/3 is 1 - 1/2 * 2/3 = 2/3.
        let p = probability_bruteforce(&c, &|v| {
            if v == 0 {
                Rational::one_half()
            } else {
                Rational::from_ratio_u64(1, 3)
            }
        });
        assert_eq!(p, Rational::from_ratio_u64(2, 3));
    }

    #[test]
    fn message_passing_matches_bruteforce_threshold() {
        let vars: Vec<VarId> = (0..5).collect();
        let circuit = threshold2_circuit(&vars);
        check_against_bruteforce(&circuit, &|v| Rational::from_ratio_u64(1, v as u64 + 2));
    }

    #[test]
    fn message_passing_matches_bruteforce_parity() {
        let vars: Vec<VarId> = (0..6).collect();
        let circuit = parity_circuit(&vars);
        check_against_bruteforce(&circuit, &|_| Rational::from_ratio_u64(1, 3));
    }

    #[test]
    fn message_passing_on_explicit_small_circuit() {
        // (x0 AND x1) OR (NOT x2): a circuit whose heuristic decomposition
        // certainly covers every gate family.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let x2 = c.var(2);
        let a = c.and(vec![x0, x1]);
        let n = c.not(x2);
        let o = c.or(vec![a, n]);
        c.set_output(o);
        let prob = |v: VarId| Rational::from_ratio_u64(1, v as u64 + 2);
        let expected = probability_bruteforce(&c, &prob);
        let (_, td) = c.covering_decomposition();
        let p = probability_message_passing(&c, &td, &prob).unwrap();
        assert_eq!(p, expected);
    }

    #[test]
    fn uncovered_gate_family_is_reported() {
        // An OR over 6 variables with a decomposition of width 1 cannot cover
        // the OR gate's family.
        let mut c = Circuit::new();
        let inputs: Vec<_> = (0..6).map(|v| c.var(v)).collect();
        let o = c.or(inputs);
        c.set_output(o);
        // Build a deliberately poor decomposition: a path of bags {or, x_i}.
        let mut td = TreeDecomposition::new();
        let mut prev = None;
        for v in 0..6usize {
            let bag = td.add_bag([v, 6usize].into_iter().collect());
            if let Some(p) = prev {
                td.add_tree_edge(p, bag);
            }
            prev = Some(bag);
        }
        let result = probability_message_passing(&c, &td, &|_| Rational::one_half());
        assert_eq!(
            result.unwrap_err(),
            MessagePassingError::GateFamilyNotCovered(GateId(6))
        );
    }

    #[test]
    fn invalid_decomposition_is_reported() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let o = c.and(vec![x0, x1]);
        c.set_output(o);
        let mut td = TreeDecomposition::new();
        td.add_bag([0usize].into_iter().collect());
        let result = probability_message_passing(&c, &td, &|_| Rational::one_half());
        assert!(matches!(
            result.unwrap_err(),
            MessagePassingError::InvalidDecomposition(_)
        ));
    }

    #[test]
    fn probability_one_and_zero_circuits() {
        let mut c = Circuit::new();
        let t = c.constant(true);
        c.set_output(t);
        let (_, td) = treewidth::treewidth_upper_bound(&c.gate_graph());
        assert!(
            probability_message_passing(&c, &td, &|_| Rational::one_half())
                .unwrap()
                .is_one()
        );
        let mut c0 = Circuit::new();
        let f = c0.constant(false);
        c0.set_output(f);
        let (_, td0) = treewidth::treewidth_upper_bound(&c0.gate_graph());
        assert!(
            probability_message_passing(&c0, &td0, &|_| Rational::one_half())
                .unwrap()
                .is_zero()
        );
    }
}
