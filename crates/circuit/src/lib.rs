//! Boolean function representations and probability computation for the
//! `treelineage` workspace.
//!
//! The paper studies lineage representations in several knowledge-compilation
//! formalisms; this crate implements all of them from scratch:
//!
//! * [`Circuit`] — DAG-shaped Boolean circuits ("lineage circuits",
//!   Definition 6.2), with gate-graph treewidth/pathwidth;
//! * [`Formula`] — tree-shaped formulas and the explicit threshold / parity
//!   constructions behind the Section 7 lower bounds;
//! * [`Obdd`] — reduced ordered binary decision diagrams (Definition 6.4),
//!   with width/size measurement, probability and model counting;
//! * [`Dnnf`] — deterministic decomposable circuits (Definition 6.10) with
//!   linear-time probability evaluation, smoothing, one-pass weighted model
//!   counting and conditioning;
//! * [`Vtree`] — variable trees witnessing *structured* decomposability
//!   (the "structured" in d-SDNNF: OBDDs are the right-linear special case,
//!   and the automaton provenance construction is structured by a vtree read
//!   off its input tree);
//! * probability evaluation for circuits: brute force and the ra-linear
//!   message-passing algorithm over bounded-treewidth circuit decompositions
//!   (the engine of Theorem 3.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod dnnf;
mod formula;
mod obdd;
mod probability;
mod vtree;

pub use circuit::{Circuit, Gate, GateId, VarId};
pub use dnnf::{Dnnf, DnnfError};
pub use formula::{
    parity_circuit, parity_formula, threshold2_circuit, threshold2_formula,
    threshold2_formula_naive, Formula,
};
pub use obdd::{Obdd, Ref};
pub use probability::{probability_bruteforce, probability_message_passing, MessagePassingError};
pub use vtree::{Vtree, VtreeId, VtreeNode};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;
    use treelineage_num::Rational;

    /// A strategy generating random circuits over a bounded variable set, by
    /// composing random gates bottom-up.
    fn arbitrary_circuit(max_vars: usize, gates: usize) -> impl Strategy<Value = Circuit> {
        let ops = proptest::collection::vec((0u8..4, any::<u64>(), any::<u64>()), 1..gates);
        ops.prop_map(move |ops| {
            let mut c = Circuit::new();
            let mut ids = Vec::new();
            for v in 0..max_vars {
                ids.push(c.var(v));
            }
            for (op, a, b) in ops {
                let x = ids[(a % ids.len() as u64) as usize];
                let y = ids[(b % ids.len() as u64) as usize];
                let g = match op {
                    0 => c.and(vec![x, y]),
                    1 => c.or(vec![x, y]),
                    2 => c.not(x),
                    _ => c.or(vec![x]),
                };
                ids.push(g);
            }
            c.set_output(*ids.last().unwrap());
            c
        })
    }

    fn truth_table(eval: impl Fn(&BTreeSet<VarId>) -> bool, vars: &[VarId]) -> Vec<bool> {
        (0u64..(1 << vars.len()))
            .map(|mask| {
                let set: BTreeSet<VarId> = vars
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &v)| v)
                    .collect();
                eval(&set)
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn obdd_agrees_with_circuit(c in arbitrary_circuit(5, 12)) {
            let vars: Vec<VarId> = (0..5).collect();
            let obdd = Obdd::from_circuit(&c, vars.clone());
            let from_circuit = truth_table(|s| c.evaluate_set(s), &vars);
            let from_obdd = truth_table(|s| obdd.evaluate_set(s), &vars);
            prop_assert_eq!(from_circuit, from_obdd);
            // Model count agrees with brute force.
            prop_assert_eq!(
                obdd.count_models().to_u64(),
                Some(c.count_models_bruteforce(&vars))
            );
        }

        #[test]
        fn obdd_level_by_level_is_canonical(c in arbitrary_circuit(4, 8)) {
            let vars: Vec<VarId> = (0..4).collect();
            let a = Obdd::from_circuit(&c, vars.clone());
            let b = Obdd::from_circuit_level_by_level(&c, vars.clone());
            prop_assert!(a.equivalent_to(&b));
            prop_assert_eq!(a.size(), b.size());
            prop_assert_eq!(a.width(), b.width());
        }

        #[test]
        fn obdd_probability_matches_bruteforce(c in arbitrary_circuit(5, 10)) {
            let vars: Vec<VarId> = (0..5).collect();
            let obdd = Obdd::from_circuit(&c, vars);
            let prob = |v: VarId| Rational::from_ratio_u64(1, v as u64 + 2);
            prop_assert_eq!(obdd.probability(&prob), probability_bruteforce(&c, &prob));
        }

        #[test]
        fn message_passing_matches_bruteforce(c in arbitrary_circuit(4, 10)) {
            let prob = |v: VarId| Rational::from_ratio_u64(1, 2 * v as u64 + 3);
            let (_, td) = c.covering_decomposition();
            let mp = probability_message_passing(&c, &td, &prob).unwrap();
            prop_assert_eq!(mp, probability_bruteforce(&c, &prob));
        }

        #[test]
        fn restriction_semantics(c in arbitrary_circuit(5, 10), fixed_mask in 0u32..32, fixed_values in 0u32..32) {
            use std::collections::HashMap;
            let fixed: HashMap<VarId, bool> = (0..5usize)
                .filter(|v| fixed_mask >> v & 1 == 1)
                .map(|v| (v, fixed_values >> v & 1 == 1))
                .collect();
            let restricted = c.restrict(&fixed);
            let free: Vec<VarId> = (0..5).filter(|v| !fixed.contains_key(v)).collect();
            for mask in 0u64..(1 << free.len()) {
                let mut set: BTreeSet<VarId> = free
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &v)| v)
                    .collect();
                let restricted_value = restricted.evaluate_set(&set);
                for (&v, &b) in &fixed {
                    if b {
                        set.insert(v);
                    }
                }
                prop_assert_eq!(restricted_value, c.evaluate_set(&set));
            }
        }

        #[test]
        fn formula_expansion_preserves_function(c in arbitrary_circuit(4, 7)) {
            let f = Formula::from_circuit(&c, 1_000_000);
            let vars: Vec<VarId> = (0..4).collect();
            let from_circuit = truth_table(|s| c.evaluate_set(s), &vars);
            let from_formula = truth_table(|s| f.evaluate_set(s), &vars);
            prop_assert_eq!(from_circuit, from_formula);
            // The formula is never smaller than the number of reachable
            // gates minus constants... but always at least 1 node.
            prop_assert!(f.node_size() >= 1);
        }

        #[test]
        fn dnnf_probability_matches_bruteforce_when_valid(c in arbitrary_circuit(4, 8)) {
            // Most random circuits are not d-DNNFs; when one happens to pass
            // full verification, its linear-time probability must agree with
            // brute force.
            if let Ok(d) = Dnnf::verify(c.clone()) {
                let prob = |v: VarId| Rational::from_ratio_u64(1, v as u64 + 3);
                prop_assert_eq!(d.probability(&prob), probability_bruteforce(&c, &prob));
            }
        }
    }
}
