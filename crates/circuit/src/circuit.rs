//! Boolean circuits ("lineage circuits" / "provenance circuits",
//! Definition 6.2 of the paper).
//!
//! A circuit is a DAG of gates over input variables with AND, OR, NOT and
//! constant gates, and a distinguished output gate. The treewidth and
//! pathwidth of a circuit are those of its gate graph (the undirected graph
//! connecting every gate to its inputs); Theorem 6.3 builds bounded-treewidth
//! lineage circuits and Section 6 converts them to OBDDs and d-DNNFs.

use std::collections::{BTreeSet, HashMap};
use treelineage_graph::{Graph, TreeDecomposition};

/// A variable index. For lineage circuits, variable `i` stands for the fact
/// with id `i` of the instance.
pub type VarId = usize;

/// Identifier of a gate in a [`Circuit`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GateId(pub usize);

/// A gate of a Boolean circuit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Gate {
    /// An input gate for a variable.
    Var(VarId),
    /// A constant gate.
    Const(bool),
    /// Negation of a single gate.
    Not(GateId),
    /// Conjunction of the inputs (an empty AND is `true`).
    And(Vec<GateId>),
    /// Disjunction of the inputs (an empty OR is `false`).
    Or(Vec<GateId>),
}

/// A Boolean circuit: an arena of gates plus an output gate.
#[derive(Clone, Debug)]
pub struct Circuit {
    gates: Vec<Gate>,
    output: Option<GateId>,
    /// Cache of the variable gate for each variable, to share input gates.
    var_gates: HashMap<VarId, GateId>,
}

impl Circuit {
    /// Creates an empty circuit (no output designated yet).
    pub fn new() -> Self {
        Circuit {
            gates: Vec::new(),
            output: None,
            var_gates: HashMap::new(),
        }
    }

    /// Number of gates (the circuit's size).
    pub fn size(&self) -> usize {
        self.gates.len()
    }

    /// Number of edges (wires) of the circuit.
    pub fn wire_count(&self) -> usize {
        self.gates
            .iter()
            .map(|g| match g {
                Gate::Var(_) | Gate::Const(_) => 0,
                Gate::Not(_) => 1,
                Gate::And(inputs) | Gate::Or(inputs) => inputs.len(),
            })
            .sum()
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0]
    }

    /// All gate ids.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> {
        (0..self.gates.len()).map(GateId)
    }

    /// The output gate. Panics if not set.
    pub fn output(&self) -> GateId {
        self.output.expect("circuit output not set")
    }

    /// Designates the output gate.
    pub fn set_output(&mut self, gate: GateId) {
        assert!(gate.0 < self.gates.len());
        self.output = Some(gate);
    }

    /// Adds (or reuses) the input gate for a variable.
    pub fn var(&mut self, v: VarId) -> GateId {
        if let Some(&g) = self.var_gates.get(&v) {
            return g;
        }
        let id = self.push(Gate::Var(v));
        self.var_gates.insert(v, id);
        id
    }

    /// Adds a constant gate.
    pub fn constant(&mut self, value: bool) -> GateId {
        self.push(Gate::Const(value))
    }

    /// Adds a NOT gate.
    pub fn not(&mut self, input: GateId) -> GateId {
        self.push(Gate::Not(input))
    }

    /// Adds an AND gate.
    pub fn and(&mut self, inputs: Vec<GateId>) -> GateId {
        self.push(Gate::And(inputs))
    }

    /// Adds an OR gate.
    pub fn or(&mut self, inputs: Vec<GateId>) -> GateId {
        self.push(Gate::Or(inputs))
    }

    fn push(&mut self, gate: Gate) -> GateId {
        if let Gate::Not(i) = &gate {
            assert!(i.0 < self.gates.len(), "input gate out of range");
        }
        if let Gate::And(inputs) | Gate::Or(inputs) = &gate {
            assert!(
                inputs.iter().all(|i| i.0 < self.gates.len()),
                "input gate out of range"
            );
        }
        self.gates.push(gate);
        GateId(self.gates.len() - 1)
    }

    /// The set of variables appearing in the circuit (reachable from the
    /// output if an output is set, otherwise all variable gates).
    pub fn variables(&self) -> BTreeSet<VarId> {
        match self.output {
            Some(out) => {
                let mut vars = BTreeSet::new();
                let mut seen = vec![false; self.gates.len()];
                let mut stack = vec![out];
                seen[out.0] = true;
                while let Some(gate) = stack.pop() {
                    match &self.gates[gate.0] {
                        Gate::Var(v) => {
                            vars.insert(*v);
                        }
                        Gate::Const(_) => {}
                        Gate::Not(i) => {
                            if !seen[i.0] {
                                seen[i.0] = true;
                                stack.push(*i);
                            }
                        }
                        Gate::And(inputs) | Gate::Or(inputs) => {
                            for &i in inputs {
                                if !seen[i.0] {
                                    seen[i.0] = true;
                                    stack.push(i);
                                }
                            }
                        }
                    }
                }
                vars
            }
            None => self
                .gates
                .iter()
                .filter_map(|g| match g {
                    Gate::Var(v) => Some(*v),
                    _ => None,
                })
                .collect(),
        }
    }

    /// The variables on which each gate depends, as dense bitsets over the
    /// circuit's variables — the cheap representation the d-DNNF
    /// decomposability check and the smoothing pass run on (one word per 64
    /// variables instead of a `BTreeSet` per gate, so deep circuits whose
    /// top gates mention most variables stay near-linear).
    pub(crate) fn dependency_bitsets(&self) -> GateDeps {
        let vars: Vec<VarId> = self
            .gates
            .iter()
            .filter_map(|g| match g {
                Gate::Var(v) => Some(*v),
                _ => None,
            })
            .collect::<BTreeSet<VarId>>()
            .into_iter()
            .collect();
        let index: HashMap<VarId, usize> = vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let words = vars.len().div_ceil(64);
        let mut bits: Vec<u64> = vec![0; self.gates.len() * words];
        for (id, gate) in self.gates.iter().enumerate() {
            let (from, to) = bits.split_at_mut(id * words);
            let row = &mut to[..words];
            match gate {
                Gate::Var(v) => {
                    let i = index[v];
                    row[i / 64] |= 1 << (i % 64);
                }
                Gate::Const(_) => {}
                Gate::Not(i) => {
                    row.copy_from_slice(&from[i.0 * words..(i.0 + 1) * words]);
                }
                Gate::And(inputs) | Gate::Or(inputs) => {
                    for i in inputs {
                        for (w, &src) in row.iter_mut().zip(&from[i.0 * words..(i.0 + 1) * words]) {
                            *w |= src;
                        }
                    }
                }
            }
        }
        GateDeps { vars, words, bits }
    }

    /// The variables on which each gate depends (computed bottom-up for every
    /// gate; used by OBDD construction — the d-DNNF checks and the smoothing
    /// pass run on the crate-private `Circuit::dependency_bitsets` instead).
    pub fn gate_dependencies(&self) -> Vec<BTreeSet<VarId>> {
        let mut deps: Vec<BTreeSet<VarId>> = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let d = match gate {
                Gate::Var(v) => std::iter::once(*v).collect(),
                Gate::Const(_) => BTreeSet::new(),
                Gate::Not(i) => deps[i.0].clone(),
                Gate::And(inputs) | Gate::Or(inputs) => {
                    let mut d = BTreeSet::new();
                    for i in inputs {
                        d.extend(deps[i.0].iter().copied());
                    }
                    d
                }
            };
            deps.push(d);
        }
        deps
    }

    /// Evaluates the circuit under a total assignment of the variables
    /// (variables missing from the map default to `false`, matching the
    /// possible-world reading where an absent fact is false).
    ///
    /// Gates are stored in topological order (every gate's inputs have
    /// smaller ids, enforced at construction), so evaluation is a single
    /// forward pass — no recursion, safe for very deep circuits.
    pub fn evaluate(&self, assignment: &dyn Fn(VarId) -> bool) -> bool {
        let values = self.evaluate_all_gates(assignment);
        values[self.output().0]
    }

    /// Evaluates all gates under an assignment and returns the values vector.
    pub fn evaluate_all_gates(&self, assignment: &dyn Fn(VarId) -> bool) -> Vec<bool> {
        let mut values: Vec<bool> = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let value = match gate {
                Gate::Var(v) => assignment(*v),
                Gate::Const(b) => *b,
                Gate::Not(i) => !values[i.0],
                Gate::And(inputs) => inputs.iter().all(|i| values[i.0]),
                Gate::Or(inputs) => inputs.iter().any(|i| values[i.0]),
            };
            values.push(value);
        }
        values
    }

    /// Evaluates the circuit on a set of true variables.
    pub fn evaluate_set(&self, true_vars: &BTreeSet<VarId>) -> bool {
        self.evaluate(&|v| true_vars.contains(&v))
    }

    /// Returns `true` if the circuit contains no NOT gate (a *monotone*
    /// lineage circuit in the sense of Definition 6.2).
    pub fn is_monotone_syntactically(&self) -> bool {
        !self.gates.iter().any(|g| matches!(g, Gate::Not(_)))
    }

    /// Returns `true` if NOT gates are only applied to input gates (the first
    /// d-DNNF condition, Definition 6.10 (1)).
    pub fn negations_only_on_inputs(&self) -> bool {
        self.gates.iter().all(|g| match g {
            Gate::Not(i) => matches!(self.gates[i.0], Gate::Var(_) | Gate::Const(_)),
            _ => true,
        })
    }

    /// The gate graph of the circuit: one vertex per gate, an edge between
    /// every gate and each of its inputs. The treewidth / pathwidth of the
    /// circuit (Definition 6.2) are those of this graph.
    pub fn gate_graph(&self) -> Graph {
        let mut g = Graph::new(self.gates.len());
        for (id, gate) in self.gates.iter().enumerate() {
            match gate {
                Gate::Var(_) | Gate::Const(_) => {}
                Gate::Not(i) => {
                    g.add_edge(id, i.0);
                }
                Gate::And(inputs) | Gate::Or(inputs) => {
                    for i in inputs {
                        if i.0 != id {
                            g.add_edge(id, i.0);
                        }
                    }
                }
            }
        }
        g
    }

    /// The moralized gate graph: like [`Circuit::gate_graph`] but with every
    /// gate's *family* (the gate together with all its inputs) turned into a
    /// clique. Any valid tree decomposition of this graph has a bag
    /// containing each full family, which is what the message-passing
    /// probability algorithm needs (see `probability_message_passing`).
    pub fn moralized_gate_graph(&self) -> Graph {
        let mut g = self.gate_graph();
        for (id, gate) in self.gates.iter().enumerate() {
            if let Gate::And(inputs) | Gate::Or(inputs) = gate {
                for a in 0..inputs.len() {
                    for b in a + 1..inputs.len() {
                        if inputs[a] != inputs[b] {
                            g.add_edge(inputs[a].0, inputs[b].0);
                        }
                    }
                }
            }
            let _ = id;
        }
        g
    }

    /// A tree decomposition of the moralized gate graph (heuristic width),
    /// guaranteed to cover every gate family — the decomposition expected by
    /// the message-passing probability evaluation.
    pub fn covering_decomposition(&self) -> (usize, TreeDecomposition) {
        treelineage_graph::treewidth::treewidth_upper_bound(&self.moralized_gate_graph())
    }

    /// Heuristic upper bound on the circuit's treewidth (of its gate graph).
    pub fn treewidth_upper_bound(&self) -> (usize, TreeDecomposition) {
        treelineage_graph::treewidth::treewidth_upper_bound(&self.gate_graph())
    }

    /// Heuristic upper bound on the circuit's pathwidth.
    pub fn pathwidth_upper_bound(&self) -> (usize, TreeDecomposition) {
        treelineage_graph::treewidth::pathwidth_upper_bound(&self.gate_graph())
    }

    /// Builds the circuit computing the same function with the given partial
    /// assignment substituted in (the "restriction" used by Lemma 6.6 and by
    /// Proposition 7.3's proof). Gates are copied; variables in `fixed`
    /// become constant gates.
    pub fn restrict(&self, fixed: &HashMap<VarId, bool>) -> Circuit {
        let mut out = Circuit::new();
        let mut mapping: Vec<Option<GateId>> = vec![None; self.gates.len()];
        for (id, gate) in self.gates.iter().enumerate() {
            let new_id = match gate {
                Gate::Var(v) => match fixed.get(v) {
                    Some(&b) => out.constant(b),
                    None => out.var(*v),
                },
                Gate::Const(b) => out.constant(*b),
                Gate::Not(i) => {
                    let input = mapping[i.0].unwrap();
                    out.not(input)
                }
                Gate::And(inputs) => {
                    let mapped: Vec<GateId> =
                        inputs.iter().map(|i| mapping[i.0].unwrap()).collect();
                    out.and(mapped)
                }
                Gate::Or(inputs) => {
                    let mapped: Vec<GateId> =
                        inputs.iter().map(|i| mapping[i.0].unwrap()).collect();
                    out.or(mapped)
                }
            };
            mapping[id] = Some(new_id);
        }
        if let Some(o) = self.output {
            out.set_output(mapping[o.0].unwrap());
        }
        out
    }

    /// Renames the variables of the circuit according to `rename` (variables
    /// not in the map keep their index). Used by the unfolding machinery of
    /// Section 9, which re-reads a lineage over the facts of another instance.
    pub fn rename_variables(&self, rename: &HashMap<VarId, VarId>) -> Circuit {
        let mut out = Circuit::new();
        let mut mapping: Vec<Option<GateId>> = vec![None; self.gates.len()];
        for (id, gate) in self.gates.iter().enumerate() {
            let new_id = match gate {
                Gate::Var(v) => out.var(*rename.get(v).unwrap_or(v)),
                Gate::Const(b) => out.constant(*b),
                Gate::Not(i) => {
                    let input = mapping[i.0].unwrap();
                    out.not(input)
                }
                Gate::And(inputs) => {
                    let mapped: Vec<GateId> =
                        inputs.iter().map(|i| mapping[i.0].unwrap()).collect();
                    out.and(mapped)
                }
                Gate::Or(inputs) => {
                    let mapped: Vec<GateId> =
                        inputs.iter().map(|i| mapping[i.0].unwrap()).collect();
                    out.or(mapped)
                }
            };
            mapping[id] = Some(new_id);
        }
        if let Some(o) = self.output {
            out.set_output(mapping[o.0].unwrap());
        }
        out
    }

    /// Brute-force check that two circuits compute the same Boolean function
    /// over the union of their variables. Exponential; panics above 20
    /// variables.
    pub fn equivalent_to(&self, other: &Circuit) -> bool {
        let vars: Vec<VarId> = self
            .variables()
            .union(&other.variables())
            .copied()
            .collect();
        assert!(
            vars.len() <= 20,
            "equivalence check limited to 20 variables"
        );
        for mask in 0u64..(1u64 << vars.len()) {
            let true_vars: BTreeSet<VarId> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            if self.evaluate_set(&true_vars) != other.evaluate_set(&true_vars) {
                return false;
            }
        }
        true
    }

    /// The number of satisfying assignments over the given variable universe
    /// (brute force; oracle for tests). Panics above 20 variables.
    pub fn count_models_bruteforce(&self, universe: &[VarId]) -> u64 {
        assert!(
            universe.len() <= 20,
            "model counting limited to 20 variables"
        );
        let mut count = 0;
        for mask in 0u64..(1u64 << universe.len()) {
            let true_vars: BTreeSet<VarId> = universe
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            if self.evaluate_set(&true_vars) {
                count += 1;
            }
        }
        count
    }
}

impl Default for Circuit {
    fn default() -> Self {
        Circuit::new()
    }
}

/// Per-gate variable dependencies as dense bitsets (see
/// [`Circuit::dependency_bitsets`]); rows are indexed by gate id.
pub(crate) struct GateDeps {
    /// The circuit's variables, sorted; bit `i` of a row stands for
    /// `vars[i]`.
    pub(crate) vars: Vec<VarId>,
    /// Row width in 64-bit words.
    words: usize,
    bits: Vec<u64>,
}

impl GateDeps {
    /// The dependency row of a gate.
    pub(crate) fn row(&self, gate: GateId) -> &[u64] {
        &self.bits[gate.0 * self.words..(gate.0 + 1) * self.words]
    }

    /// Whether two rows share a variable.
    pub(crate) fn intersects(a: &[u64], b: &[u64]) -> bool {
        a.iter().zip(b).any(|(x, y)| x & y != 0)
    }

    /// The variables set in `row`.
    pub(crate) fn vars_of<'a>(&'a self, row: &'a [u64]) -> impl Iterator<Item = VarId> + 'a {
        row.iter().enumerate().flat_map(move |(w, &word)| {
            (0..64)
                .filter(move |b| word >> b & 1 == 1)
                .map(move |b| self.vars[w * 64 + b])
        })
    }

    /// An empty accumulator row.
    pub(crate) fn empty_row(&self) -> Vec<u64> {
        vec![0; self.words]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (x0 AND x1) OR (NOT x2)
    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let x2 = c.var(2);
        let a = c.and(vec![x0, x1]);
        let n = c.not(x2);
        let o = c.or(vec![a, n]);
        c.set_output(o);
        c
    }

    #[test]
    fn evaluation() {
        let c = sample_circuit();
        assert!(c.evaluate(&|v| v == 0 || v == 1)); // x0, x1 true, x2 false
        assert!(c.evaluate(&|_| false)); // NOT x2 is true
        assert!(!c.evaluate(&|v| v == 2)); // only x2 true
        assert!(c.evaluate(&|_| true)); // x0 AND x1 true
    }

    #[test]
    fn variables_and_size() {
        let c = sample_circuit();
        assert_eq!(c.variables(), [0, 1, 2].into_iter().collect());
        assert_eq!(c.size(), 6);
        assert_eq!(c.wire_count(), 2 + 1 + 2);
        assert!(!c.is_monotone_syntactically());
        assert!(c.negations_only_on_inputs());
    }

    #[test]
    fn var_gates_are_shared() {
        let mut c = Circuit::new();
        let a = c.var(7);
        let b = c.var(7);
        assert_eq!(a, b);
        assert_eq!(c.size(), 1);
    }

    #[test]
    fn empty_and_or_conventions() {
        let mut c = Circuit::new();
        let a = c.and(vec![]);
        c.set_output(a);
        assert!(c.evaluate(&|_| false));
        let mut c2 = Circuit::new();
        let o = c2.or(vec![]);
        c2.set_output(o);
        assert!(!c2.evaluate(&|_| false));
    }

    #[test]
    fn gate_graph_structure() {
        let c = sample_circuit();
        let g = c.gate_graph();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 5);
        let (w, td) = c.treewidth_upper_bound();
        assert!(td.validate(&g).is_ok());
        assert!(w <= 2);
    }

    #[test]
    fn restriction_fixes_variables() {
        let c = sample_circuit();
        let mut fixed = HashMap::new();
        fixed.insert(2usize, true); // NOT x2 = false, so output = x0 AND x1
        let r = c.restrict(&fixed);
        assert_eq!(r.variables(), [0, 1].into_iter().collect());
        assert!(r.evaluate(&|_| true));
        assert!(!r.evaluate(&|v| v == 0));
    }

    #[test]
    fn renaming_variables() {
        let c = sample_circuit();
        let mut rename = HashMap::new();
        rename.insert(0usize, 10usize);
        rename.insert(1usize, 11usize);
        rename.insert(2usize, 12usize);
        let r = c.rename_variables(&rename);
        assert_eq!(r.variables(), [10, 11, 12].into_iter().collect());
        assert!(r.evaluate(&|v| v == 10 || v == 11));
    }

    #[test]
    fn equivalence_and_model_counting() {
        let c = sample_circuit();
        // Same function built differently: NOT x2 OR (x1 AND x0).
        let mut d = Circuit::new();
        let x0 = d.var(0);
        let x1 = d.var(1);
        let x2 = d.var(2);
        let n = d.not(x2);
        let a = d.and(vec![x1, x0]);
        let o = d.or(vec![n, a]);
        d.set_output(o);
        assert!(c.equivalent_to(&d));
        // Truth table: output false only when x2=1 and not(x0 and x1):
        // assignments (x0,x1,x2): 001, 011, 101 are false -> 5 models.
        assert_eq!(c.count_models_bruteforce(&[0, 1, 2]), 5);

        let mut e = Circuit::new();
        let x0 = e.var(0);
        e.set_output(x0);
        assert!(!c.equivalent_to(&e));
    }

    #[test]
    fn monotone_circuit_detection() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let o = c.or(vec![x0, x1]);
        c.set_output(o);
        assert!(c.is_monotone_syntactically());
    }

    #[test]
    fn dependencies_per_gate() {
        let c = sample_circuit();
        let deps = c.gate_dependencies();
        // Gate 3 is AND(x0, x1), gate 4 is NOT(x2), gate 5 is the OR.
        assert_eq!(deps[3], [0, 1].into_iter().collect());
        assert_eq!(deps[4], [2].into_iter().collect());
        assert_eq!(deps[5], [0, 1, 2].into_iter().collect());
    }

    #[test]
    #[should_panic]
    fn forward_reference_panics() {
        let mut c = Circuit::new();
        let _ = c.and(vec![GateId(5)]);
    }
}
