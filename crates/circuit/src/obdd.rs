//! Ordered binary decision diagrams (Definition 6.4 of the paper).
//!
//! An OBDD tests variables in a fixed order; reduced OBDDs (no duplicate
//! nodes, no redundant tests) are canonical for a given order, so their size
//! and width are well-defined function/order invariants. Section 6 shows that
//! MSO lineages on bounded-treewidth instances have polynomial OBDDs (and
//! constant-width ones on bounded pathwidth); Section 8 shows that for the
//! intricate query q_p the width must blow up on any unbounded-treewidth
//! family. The width measurements of those experiments are made on the
//! reduced OBDDs produced here.
//!
//! The construction used by default is the standard apply/`melding`
//! algorithm over a caller-supplied variable order, with hash-consing so the
//! result is reduced (hence canonical — see DESIGN.md §2 item 4 for how this
//! relates to the paper's level-by-level construction of Lemma 6.6, of which
//! [`Obdd::from_circuit_level_by_level`] is a direct, small-scale
//! transliteration used as a cross-check).

use crate::circuit::{Circuit, Gate, VarId};
use std::collections::{BTreeSet, HashMap};
use treelineage_num::{BigUint, Rational};

/// Reference to an OBDD node or terminal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Ref {
    /// The 0-terminal.
    False,
    /// The 1-terminal.
    True,
    /// An internal node (index into the node table).
    Node(usize),
}

/// An internal OBDD node: a level (position of its variable in the order) and
/// the low/high children.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Node {
    level: usize,
    lo: Ref,
    hi: Ref,
}

/// A reduced OBDD over a fixed variable order.
#[derive(Clone, Debug)]
pub struct Obdd {
    order: Vec<VarId>,
    var_level: HashMap<VarId, usize>,
    nodes: Vec<Node>,
    unique: HashMap<(usize, Ref, Ref), usize>,
    root: Ref,
}

impl Obdd {
    /// Creates an OBDD manager for the given variable order, with root
    /// initially the 0-terminal. Duplicate variables in the order are not
    /// allowed.
    pub fn new(order: Vec<VarId>) -> Self {
        let var_level: HashMap<VarId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        assert_eq!(var_level.len(), order.len(), "duplicate variable in order");
        Obdd {
            order,
            var_level,
            nodes: Vec::new(),
            unique: HashMap::new(),
            root: Ref::False,
        }
    }

    /// The variable order.
    pub fn order(&self) -> &[VarId] {
        &self.order
    }

    /// The root of the OBDD.
    pub fn root(&self) -> Ref {
        self.root
    }

    /// Sets the root.
    pub fn set_root(&mut self, root: Ref) {
        self.root = root;
    }

    /// Number of levels (variables in the order).
    pub fn level_count(&self) -> usize {
        self.order.len()
    }

    fn level_of(&self, r: Ref) -> usize {
        match r {
            Ref::False | Ref::True => self.order.len(),
            Ref::Node(i) => self.nodes[i].level,
        }
    }

    /// Creates (or reuses) a node, applying the reduction rules: a node whose
    /// children are equal is elided, and structurally identical nodes are
    /// shared.
    pub fn make_node(&mut self, level: usize, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        if let Some(&i) = self.unique.get(&(level, lo, hi)) {
            return Ref::Node(i);
        }
        let i = self.nodes.len();
        self.nodes.push(Node { level, lo, hi });
        self.unique.insert((level, lo, hi), i);
        Ref::Node(i)
    }

    /// The OBDD node testing a single variable.
    pub fn literal(&mut self, var: VarId, positive: bool) -> Ref {
        let level = *self
            .var_level
            .get(&var)
            .unwrap_or_else(|| panic!("variable {var} not in the order"));
        if positive {
            self.make_node(level, Ref::False, Ref::True)
        } else {
            self.make_node(level, Ref::True, Ref::False)
        }
    }

    /// The terminal for a constant.
    pub fn terminal(&self, value: bool) -> Ref {
        if value {
            Ref::True
        } else {
            Ref::False
        }
    }

    /// For an internal node, returns `(variable, lo child, hi child)`;
    /// `None` for terminals. Exposes the Shannon decomposition so that
    /// downstream code can convert OBDDs into circuits/d-DNNFs.
    pub fn decision_parts(&self, r: Ref) -> Option<(VarId, Ref, Ref)> {
        match r {
            Ref::False | Ref::True => None,
            Ref::Node(i) => {
                let n = self.nodes[i];
                Some((self.order[n.level], n.lo, n.hi))
            }
        }
    }

    fn cofactors(&self, r: Ref, level: usize) -> (Ref, Ref) {
        match r {
            Ref::False | Ref::True => (r, r),
            Ref::Node(i) => {
                let n = self.nodes[i];
                if n.level == level {
                    (n.lo, n.hi)
                } else {
                    (r, r)
                }
            }
        }
    }

    /// Conjunction of two OBDD functions.
    pub fn and(&mut self, a: Ref, b: Ref) -> Ref {
        let mut memo = HashMap::new();
        self.apply(a, b, Op::And, &mut memo)
    }

    /// Disjunction of two OBDD functions.
    pub fn or(&mut self, a: Ref, b: Ref) -> Ref {
        let mut memo = HashMap::new();
        self.apply(a, b, Op::Or, &mut memo)
    }

    /// Exclusive or of two OBDD functions.
    pub fn xor(&mut self, a: Ref, b: Ref) -> Ref {
        let mut memo = HashMap::new();
        self.apply(a, b, Op::Xor, &mut memo)
    }

    /// Negation of an OBDD function: a dedicated memoized pass swapping the
    /// terminals (one visit per reachable node, no binary-apply machinery —
    /// previously this rebuilt the whole diagram as `xor(a, True)`). For
    /// truly O(1) negation see the complement edges of `treelineage-dd`.
    pub fn not(&mut self, a: Ref) -> Ref {
        let mut memo = HashMap::new();
        self.not_rec(a, &mut memo)
    }

    fn not_rec(&mut self, r: Ref, memo: &mut HashMap<Ref, Ref>) -> Ref {
        match r {
            Ref::False => Ref::True,
            Ref::True => Ref::False,
            Ref::Node(i) => {
                if let Some(&n) = memo.get(&r) {
                    return n;
                }
                let Node { level, lo, hi } = self.nodes[i];
                let lo = self.not_rec(lo, memo);
                let hi = self.not_rec(hi, memo);
                let result = self.make_node(level, lo, hi);
                memo.insert(r, result);
                result
            }
        }
    }

    fn apply(&mut self, a: Ref, b: Ref, op: Op, memo: &mut HashMap<(Ref, Ref), Ref>) -> Ref {
        if let Some(result) = op.shortcut(a, b) {
            return result;
        }
        if let Some(&r) = memo.get(&(a, b)) {
            return r;
        }
        let level = self.level_of(a).min(self.level_of(b));
        debug_assert!(level < self.order.len());
        let (a_lo, a_hi) = self.cofactors(a, level);
        let (b_lo, b_hi) = self.cofactors(b, level);
        let lo = self.apply(a_lo, b_lo, op, memo);
        let hi = self.apply(a_hi, b_hi, op, memo);
        let result = self.make_node(level, lo, hi);
        memo.insert((a, b), result);
        result
    }

    /// Compiles a circuit into this OBDD (the circuit's variables must all be
    /// in the order). Returns the root reference and sets it as the OBDD's
    /// root.
    pub fn compile_circuit(&mut self, circuit: &Circuit) -> Ref {
        let mut refs: Vec<Ref> = Vec::with_capacity(circuit.size());
        for id in circuit.gate_ids() {
            let r = match circuit.gate(id) {
                Gate::Var(v) => self.literal(*v, true),
                Gate::Const(b) => self.terminal(*b),
                Gate::Not(i) => {
                    let inner = refs[i.0];
                    self.not(inner)
                }
                Gate::And(inputs) => {
                    let mut acc = Ref::True;
                    for &i in inputs {
                        acc = self.and(acc, refs[i.0]);
                    }
                    acc
                }
                Gate::Or(inputs) => {
                    let mut acc = Ref::False;
                    for &i in inputs {
                        acc = self.or(acc, refs[i.0]);
                    }
                    acc
                }
            };
            refs.push(r);
        }
        let root = refs[circuit.output().0];
        self.root = root;
        root
    }

    /// Builds the OBDD for a circuit with the given order using the standard
    /// apply algorithm. Convenience wrapper around [`Obdd::new`] +
    /// [`Obdd::compile_circuit`].
    pub fn from_circuit(circuit: &Circuit, order: Vec<VarId>) -> Obdd {
        let mut obdd = Obdd::new(order);
        obdd.compile_circuit(circuit);
        obdd
    }

    /// Literal transliteration of Lemma 6.6's level-by-level construction:
    /// build the decision diagram level by level along the order, merging
    /// nodes whose partial valuations are equivalent (tested exhaustively on
    /// the remaining variables). Exponential in the number of variables; used
    /// as a cross-check on small inputs that the apply-based construction
    /// yields the same canonical diagram.
    pub fn from_circuit_level_by_level(circuit: &Circuit, order: Vec<VarId>) -> Obdd {
        assert!(
            order.len() <= 20,
            "level-by-level construction limited to 20 variables"
        );
        let mut obdd = Obdd::new(order.clone());
        // Recursive canonical construction by Shannon expansion along the
        // order, memoized on the truth table of the residual function — this
        // produces the reduced OBDD, merging equivalent partial valuations
        // exactly as in the lemma.
        let mut memo: HashMap<Vec<bool>, Ref> = HashMap::new();
        let root = build_canonical(circuit, &order, 0, &mut Vec::new(), &mut memo, &mut obdd);
        obdd.root = root;
        obdd
    }

    /// Number of internal nodes reachable from the root (the OBDD's size; the
    /// two terminals are not counted).
    pub fn size(&self) -> usize {
        self.reachable().len()
    }

    /// Number of reachable nodes per level; the OBDD's *width* (Definition
    /// 6.4) is the maximum entry.
    pub fn level_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.order.len()];
        for i in self.reachable() {
            sizes[self.nodes[i].level] += 1;
        }
        sizes
    }

    /// The width of the OBDD: the maximum number of reachable nodes at any
    /// level (at least 1 for non-constant functions).
    pub fn width(&self) -> usize {
        self.level_sizes().into_iter().max().unwrap_or(0)
    }

    fn reachable(&self) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = Vec::new();
        if let Ref::Node(i) = self.root {
            stack.push(i);
            seen[i] = true;
        }
        let mut out = Vec::new();
        while let Some(i) = stack.pop() {
            out.push(i);
            for child in [self.nodes[i].lo, self.nodes[i].hi] {
                if let Ref::Node(j) = child {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        out
    }

    /// Evaluates the OBDD on a set of true variables.
    pub fn evaluate_set(&self, true_vars: &BTreeSet<VarId>) -> bool {
        let mut current = self.root;
        loop {
            match current {
                Ref::False => return false,
                Ref::True => return true,
                Ref::Node(i) => {
                    let node = self.nodes[i];
                    let var = self.order[node.level];
                    current = if true_vars.contains(&var) {
                        node.hi
                    } else {
                        node.lo
                    };
                }
            }
        }
    }

    /// Probability that the OBDD's function is true when each variable `v` is
    /// independently true with probability `prob(v)`. Linear in the OBDD size
    /// (probability evaluation for OBDDs is tractable, as used in Theorem 6.5
    /// / \[47\]).
    pub fn probability(&self, prob: &dyn Fn(VarId) -> Rational) -> Rational {
        let mut memo: HashMap<Ref, Rational> = HashMap::new();
        self.prob_rec(self.root, prob, &mut memo)
    }

    fn prob_rec(
        &self,
        r: Ref,
        prob: &dyn Fn(VarId) -> Rational,
        memo: &mut HashMap<Ref, Rational>,
    ) -> Rational {
        match r {
            Ref::False => Rational::zero(),
            Ref::True => Rational::one(),
            Ref::Node(i) => {
                if let Some(p) = memo.get(&r) {
                    return p.clone();
                }
                let node = self.nodes[i];
                let var = self.order[node.level];
                let p_var = prob(var);
                let p_hi = self.prob_rec(node.hi, prob, memo);
                let p_lo = self.prob_rec(node.lo, prob, memo);
                let result = &(&p_var * &p_hi) + &(&p_var.complement() * &p_lo);
                memo.insert(r, result.clone());
                result
            }
        }
    }

    /// Number of satisfying assignments over the variables of the order.
    pub fn count_models(&self) -> BigUint {
        let mut memo: HashMap<usize, BigUint> = HashMap::new();
        // count_rec(r) counts assignments of the variables at levels
        // >= level_of(r); the root may skip leading levels, each doubling
        // the count.
        let below = self.count_rec(self.root, &mut memo);
        &below * &BigUint::pow2(self.level_of(self.root))
    }

    fn count_rec(&self, r: Ref, memo: &mut HashMap<usize, BigUint>) -> BigUint {
        match r {
            Ref::False => BigUint::zero(),
            Ref::True => BigUint::one(),
            Ref::Node(i) => {
                if let Some(c) = memo.get(&i) {
                    return c.clone();
                }
                let node = self.nodes[i];
                // Each child may itself skip levels between node.level + 1
                // and its own level; those skipped variables are free.
                let hi = self.count_rec(node.hi, memo);
                let lo = self.count_rec(node.lo, memo);
                let hi_scaled = &hi * &BigUint::pow2(self.level_of(node.hi) - node.level - 1);
                let lo_scaled = &lo * &BigUint::pow2(self.level_of(node.lo) - node.level - 1);
                let result = &hi_scaled + &lo_scaled;
                memo.insert(i, result.clone());
                result
            }
        }
    }

    /// Returns `true` if the OBDD represents the same function as another
    /// OBDD over the same order (checked by a product traversal, polynomial
    /// in the two sizes).
    pub fn equivalent_to(&self, other: &Obdd) -> bool {
        assert_eq!(self.order, other.order, "orders must match");
        let mut memo: HashMap<(Ref, Ref), bool> = HashMap::new();
        self.equiv_rec(self.root, other, other.root, &mut memo)
    }

    fn equiv_rec(
        &self,
        a: Ref,
        other: &Obdd,
        b: Ref,
        memo: &mut HashMap<(Ref, Ref), bool>,
    ) -> bool {
        match (a, b) {
            (Ref::False, Ref::False) | (Ref::True, Ref::True) => true,
            (Ref::False, Ref::True) | (Ref::True, Ref::False) => false,
            _ => {
                if let Some(&r) = memo.get(&(a, b)) {
                    return r;
                }
                let level = self.level_of(a).min(other.level_of(b));
                let (a_lo, a_hi) = self.cofactors(a, level);
                let (b_lo, b_hi) = other.cofactors(b, level);
                let result = self.equiv_rec(a_lo, other, b_lo, memo)
                    && self.equiv_rec(a_hi, other, b_hi, memo);
                memo.insert((a, b), result);
                result
            }
        }
    }
}

fn build_canonical(
    circuit: &Circuit,
    order: &[VarId],
    level: usize,
    assignment: &mut Vec<(VarId, bool)>,
    memo: &mut HashMap<Vec<bool>, Ref>,
    obdd: &mut Obdd,
) -> Ref {
    // Key: the truth table of the circuit restricted by `assignment`,
    // enumerated over the remaining variables in order. Two partial
    // valuations are merged iff they are equivalent in the sense of
    // Lemma 6.6.
    let remaining = &order[level..];
    let mut table = Vec::with_capacity(1 << remaining.len());
    for mask in 0u64..(1u64 << remaining.len()) {
        let assigned: HashMap<VarId, bool> = assignment
            .iter()
            .copied()
            .chain(
                remaining
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, mask >> i & 1 == 1)),
            )
            .collect();
        table.push(circuit.evaluate(&|v| assigned.get(&v).copied().unwrap_or(false)));
    }
    if let Some(&r) = memo.get(&table) {
        return r;
    }
    let result = if remaining.is_empty() {
        obdd.terminal(table[0])
    } else if table.iter().all(|&b| b) {
        Ref::True
    } else if table.iter().all(|&b| !b) {
        Ref::False
    } else {
        let var = order[level];
        assignment.push((var, false));
        let lo = build_canonical(circuit, order, level + 1, assignment, memo, obdd);
        assignment.pop();
        assignment.push((var, true));
        let hi = build_canonical(circuit, order, level + 1, assignment, memo, obdd);
        assignment.pop();
        obdd.make_node(level, lo, hi)
    };
    memo.insert(table, result);
    result
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Op {
    And,
    Or,
    Xor,
}

impl Op {
    fn shortcut(self, a: Ref, b: Ref) -> Option<Ref> {
        match self {
            Op::And => match (a, b) {
                (Ref::False, _) | (_, Ref::False) => Some(Ref::False),
                (Ref::True, x) | (x, Ref::True) => Some(x),
                _ if a == b => Some(a),
                _ => None,
            },
            Op::Or => match (a, b) {
                (Ref::True, _) | (_, Ref::True) => Some(Ref::True),
                (Ref::False, x) | (x, Ref::False) => Some(x),
                _ if a == b => Some(a),
                _ => None,
            },
            Op::Xor => match (a, b) {
                (Ref::False, x) | (x, Ref::False) => Some(x),
                _ if a == b => Some(Ref::False),
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{parity_circuit, threshold2_circuit};

    fn truth_table(obdd: &Obdd, vars: &[VarId]) -> Vec<bool> {
        let mut out = Vec::new();
        for mask in 0u64..(1u64 << vars.len()) {
            let set: BTreeSet<VarId> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            out.push(obdd.evaluate_set(&set));
        }
        out
    }

    #[test]
    fn literal_and_basic_operations() {
        let mut obdd = Obdd::new(vec![0, 1]);
        let x = obdd.literal(0, true);
        let y = obdd.literal(1, true);
        let both = obdd.and(x, y);
        obdd.set_root(both);
        assert!(obdd.evaluate_set(&[0, 1].into_iter().collect()));
        assert!(!obdd.evaluate_set(&[0].into_iter().collect()));
        assert_eq!(obdd.count_models().to_u64(), Some(1));
        let either = obdd.or(x, y);
        obdd.set_root(either);
        assert_eq!(obdd.count_models().to_u64(), Some(3));
        let neither = obdd.not(either);
        obdd.set_root(neither);
        assert_eq!(obdd.count_models().to_u64(), Some(1));
        assert!(obdd.evaluate_set(&BTreeSet::new()));
    }

    #[test]
    fn compile_circuit_matches_circuit() {
        let vars: Vec<VarId> = (0..6).collect();
        let circuit = threshold2_circuit(&vars);
        let obdd = Obdd::from_circuit(&circuit, vars.clone());
        for mask in 0u64..(1 << 6) {
            let set: BTreeSet<VarId> = vars
                .iter()
                .filter(|&&v| mask >> v & 1 == 1)
                .copied()
                .collect();
            assert_eq!(obdd.evaluate_set(&set), set.len() >= 2);
        }
        // Threshold-2 has a width-3 reduced OBDD under any order.
        assert!(obdd.width() <= 3);
        assert_eq!(
            obdd.count_models().to_u64(),
            Some((0u64..64).filter(|m| m.count_ones() >= 2).count() as u64)
        );
    }

    #[test]
    fn parity_has_constant_width() {
        let vars: Vec<VarId> = (0..10).collect();
        let circuit = parity_circuit(&vars);
        let obdd = Obdd::from_circuit(&circuit, vars.clone());
        assert_eq!(obdd.width(), 2);
        assert_eq!(obdd.size(), 2 * 10 - 1);
        assert_eq!(obdd.count_models().to_u64(), Some(512));
    }

    #[test]
    fn level_by_level_matches_apply_construction() {
        for n in [3usize, 5, 7] {
            let vars: Vec<VarId> = (0..n).collect();
            for circuit in [threshold2_circuit(&vars), parity_circuit(&vars)] {
                let a = Obdd::from_circuit(&circuit, vars.clone());
                let b = Obdd::from_circuit_level_by_level(&circuit, vars.clone());
                assert_eq!(truth_table(&a, &vars), truth_table(&b, &vars));
                assert!(a.equivalent_to(&b));
                // Both are reduced, hence canonical: same size and width.
                assert_eq!(a.size(), b.size(), "n={n}");
                assert_eq!(a.width(), b.width(), "n={n}");
            }
        }
    }

    #[test]
    fn variable_order_affects_width() {
        // The function (x0 AND x1) OR (x2 AND x3) OR (x4 AND x5) has constant
        // width under the interleaved order but exponential width under the
        // "all left ends first" order.
        let build = |order: Vec<VarId>| {
            let mut c = Circuit::new();
            let pairs: Vec<GateIdPair> = (0..3)
                .map(|i| {
                    let a = c.var(2 * i);
                    let b = c.var(2 * i + 1);
                    (a, b)
                })
                .collect();
            let ands: Vec<_> = pairs.iter().map(|&(a, b)| c.and(vec![a, b])).collect();
            let o = c.or(ands);
            c.set_output(o);
            Obdd::from_circuit(&c, order)
        };
        type GateIdPair = (crate::circuit::GateId, crate::circuit::GateId);
        let good = build(vec![0, 1, 2, 3, 4, 5]);
        let bad = build(vec![0, 2, 4, 1, 3, 5]);
        assert!(good.width() <= 2);
        assert!(bad.width() > good.width());
        assert_eq!(good.count_models(), bad.count_models());
    }

    #[test]
    fn probability_matches_bruteforce() {
        let vars: Vec<VarId> = (0..5).collect();
        let circuit = threshold2_circuit(&vars);
        let obdd = Obdd::from_circuit(&circuit, vars.clone());
        let prob = |v: VarId| Rational::from_ratio_u64(1, (v + 2) as u64);
        let exact = obdd.probability(&prob);
        // Brute force.
        let mut expected = Rational::zero();
        for mask in 0u64..(1 << 5) {
            if (mask.count_ones() as usize) < 2 {
                continue;
            }
            let mut w = Rational::one();
            for &v in &vars {
                let p = prob(v);
                if mask >> v & 1 == 1 {
                    w = &w * &p;
                } else {
                    w = &w * &p.complement();
                }
            }
            expected = &expected + &w;
        }
        assert_eq!(exact, expected);
    }

    #[test]
    fn equivalence_check() {
        let vars: Vec<VarId> = (0..4).collect();
        let a = Obdd::from_circuit(&threshold2_circuit(&vars), vars.clone());
        let b = Obdd::from_circuit_level_by_level(&threshold2_circuit(&vars), vars.clone());
        let c = Obdd::from_circuit(&parity_circuit(&vars), vars.clone());
        assert!(a.equivalent_to(&b));
        assert!(!a.equivalent_to(&c));
    }

    #[test]
    #[should_panic]
    fn unknown_variable_panics() {
        let mut obdd = Obdd::new(vec![0, 1]);
        let _ = obdd.literal(5, true);
    }
}
