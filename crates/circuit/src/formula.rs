//! Boolean formulas and the circuit/formula conciseness gap (Section 7).
//!
//! A formula is a tree-shaped circuit: subformulas cannot be shared. The
//! paper's Section 7 shows that lineages that admit linear-size circuits can
//! require super-linear formulas (threshold and parity functions, via the
//! classical lower bounds of Wegener's book \[51\]); this module provides the
//! formula representation, its size measures, conversions to and from
//! circuits, and the explicit constructions used by the Table 2 lower-bound
//! experiments (divide-and-conquer threshold formulas, recursive parity
//! formulas, monotone threshold formulas).

use crate::circuit::{Circuit, Gate, GateId, VarId};
use std::collections::BTreeSet;

/// A Boolean formula (tree-structured, no sharing).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// A variable leaf.
    Var(VarId),
    /// A constant leaf.
    Const(bool),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = `true`).
    And(Vec<Formula>),
    /// Disjunction (empty = `false`).
    Or(Vec<Formula>),
}

impl Formula {
    /// Number of variable occurrences (leaves); the size measure used by the
    /// classical formula lower bounds cited in Section 7.
    pub fn leaf_size(&self) -> usize {
        match self {
            Formula::Var(_) => 1,
            Formula::Const(_) => 0,
            Formula::Not(f) => f.leaf_size(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(|f| f.leaf_size()).sum(),
        }
    }

    /// Total number of nodes (connectives + leaves).
    pub fn node_size(&self) -> usize {
        match self {
            Formula::Var(_) | Formula::Const(_) => 1,
            Formula::Not(f) => 1 + f.node_size(),
            Formula::And(fs) | Formula::Or(fs) => {
                1 + fs.iter().map(|f| f.node_size()).sum::<usize>()
            }
        }
    }

    /// The set of variables occurring in the formula.
    pub fn variables(&self) -> BTreeSet<VarId> {
        let mut vars = BTreeSet::new();
        self.collect_vars(&mut vars);
        vars
    }

    fn collect_vars(&self, vars: &mut BTreeSet<VarId>) {
        match self {
            Formula::Var(v) => {
                vars.insert(*v);
            }
            Formula::Const(_) => {}
            Formula::Not(f) => f.collect_vars(vars),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_vars(vars);
                }
            }
        }
    }

    /// Returns `true` if the formula uses only AND and OR (no negation) —
    /// the monotone basis of Proposition 7.2.
    pub fn is_monotone(&self) -> bool {
        match self {
            Formula::Var(_) | Formula::Const(_) => true,
            Formula::Not(_) => false,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|f| f.is_monotone()),
        }
    }

    /// Returns `true` if the formula is *read-once*: every variable occurs at
    /// most once. Read-once formulas are the simplest tractable lineage class
    /// of \[36\].
    pub fn is_read_once(&self) -> bool {
        fn count(f: &Formula, seen: &mut BTreeSet<VarId>) -> bool {
            match f {
                Formula::Var(v) => seen.insert(*v),
                Formula::Const(_) => true,
                Formula::Not(g) => count(g, seen),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|g| count(g, seen)),
            }
        }
        count(self, &mut BTreeSet::new())
    }

    /// Evaluates the formula.
    pub fn evaluate(&self, assignment: &dyn Fn(VarId) -> bool) -> bool {
        match self {
            Formula::Var(v) => assignment(*v),
            Formula::Const(b) => *b,
            Formula::Not(f) => !f.evaluate(assignment),
            Formula::And(fs) => fs.iter().all(|f| f.evaluate(assignment)),
            Formula::Or(fs) => fs.iter().any(|f| f.evaluate(assignment)),
        }
    }

    /// Evaluates the formula on a set of true variables.
    pub fn evaluate_set(&self, true_vars: &BTreeSet<VarId>) -> bool {
        self.evaluate(&|v| true_vars.contains(&v))
    }

    /// Converts the formula into a circuit (linear in the formula size).
    pub fn to_circuit(&self) -> Circuit {
        let mut circuit = Circuit::new();
        let output = self.build_into(&mut circuit);
        circuit.set_output(output);
        circuit
    }

    fn build_into(&self, circuit: &mut Circuit) -> GateId {
        match self {
            Formula::Var(v) => circuit.var(*v),
            Formula::Const(b) => circuit.constant(*b),
            Formula::Not(f) => {
                let inner = f.build_into(circuit);
                circuit.not(inner)
            }
            Formula::And(fs) => {
                let inputs: Vec<GateId> = fs.iter().map(|f| f.build_into(circuit)).collect();
                circuit.and(inputs)
            }
            Formula::Or(fs) => {
                let inputs: Vec<GateId> = fs.iter().map(|f| f.build_into(circuit)).collect();
                circuit.or(inputs)
            }
        }
    }

    /// Expands a circuit into a formula by duplicating shared subcircuits
    /// (exponential in the worst case — this blow-up is exactly the
    /// conciseness gap studied in Section 7). Panics if the expansion exceeds
    /// `max_nodes` nodes.
    pub fn from_circuit(circuit: &Circuit, max_nodes: usize) -> Formula {
        let mut budget = max_nodes;
        Self::expand(circuit, circuit.output(), &mut budget)
    }

    fn expand(circuit: &Circuit, gate: GateId, budget: &mut usize) -> Formula {
        assert!(*budget > 0, "formula expansion exceeded budget");
        *budget -= 1;
        match circuit.gate(gate) {
            Gate::Var(v) => Formula::Var(*v),
            Gate::Const(b) => Formula::Const(*b),
            Gate::Not(i) => Formula::Not(Box::new(Self::expand(circuit, *i, budget))),
            Gate::And(inputs) => Formula::And(
                inputs
                    .iter()
                    .map(|&i| Self::expand(circuit, i, budget))
                    .collect(),
            ),
            Gate::Or(inputs) => Formula::Or(
                inputs
                    .iter()
                    .map(|&i| Self::expand(circuit, i, budget))
                    .collect(),
            ),
        }
    }
}

/// The threshold-2 function over `vars` ("at least two inputs are true"),
/// as a monotone formula built by divide and conquer:
/// `T2(A ∪ B) = T2(A) ∨ T2(B) ∨ (T1(A) ∧ T1(B))`, giving `O(n log n)` leaves.
/// This is the lineage of the CQ≠ query of Proposition 7.1 / 7.2 on the
/// unary family instance, and the best-possible monotone formula size up to
/// constants (Hansel's `Ω(n log n)` lower bound \[31\]).
pub fn threshold2_formula(vars: &[VarId]) -> Formula {
    match vars.len() {
        0 | 1 => Formula::Const(false),
        2 => Formula::And(vec![Formula::Var(vars[0]), Formula::Var(vars[1])]),
        _ => {
            let mid = vars.len() / 2;
            let (a, b) = vars.split_at(mid);
            let t1a = Formula::Or(a.iter().map(|&v| Formula::Var(v)).collect());
            let t1b = Formula::Or(b.iter().map(|&v| Formula::Var(v)).collect());
            Formula::Or(vec![
                threshold2_formula(a),
                threshold2_formula(b),
                Formula::And(vec![t1a, t1b]),
            ])
        }
    }
}

/// The naive quadratic monotone formula for threshold-2: the disjunction of
/// all pairwise conjunctions. Used as the "obvious" baseline in the formula
/// lower-bound experiment.
pub fn threshold2_formula_naive(vars: &[VarId]) -> Formula {
    let mut disjuncts = Vec::new();
    for i in 0..vars.len() {
        for j in i + 1..vars.len() {
            disjuncts.push(Formula::And(vec![
                Formula::Var(vars[i]),
                Formula::Var(vars[j]),
            ]));
        }
    }
    Formula::Or(disjuncts)
}

/// The linear-size threshold-2 *circuit* (a running "seen one / seen two"
/// scan); the upper-bound counterpart in the Table 2 lower-bound experiment.
pub fn threshold2_circuit(vars: &[VarId]) -> Circuit {
    let mut c = Circuit::new();
    let mut seen_one = c.constant(false);
    let mut seen_two = c.constant(false);
    for &v in vars {
        let x = c.var(v);
        let both = c.and(vec![seen_one, x]);
        seen_two = c.or(vec![seen_two, both]);
        seen_one = c.or(vec![seen_one, x]);
    }
    c.set_output(seen_two);
    c
}

/// The parity function over `vars` as a formula, by the recursive splitting
/// `parity(A ∪ B) = parity(A) ⊕ parity(B)` with XOR expanded over the
/// {AND, OR, NOT} basis. Its leaf size is Θ(n²), matching the classical
/// `Ω(n²)` lower bound (\[51\], used by Proposition 7.3).
pub fn parity_formula(vars: &[VarId]) -> Formula {
    match vars.len() {
        0 => Formula::Const(false),
        1 => Formula::Var(vars[0]),
        _ => {
            let mid = vars.len() / 2;
            let (a, b) = vars.split_at(mid);
            let pa = parity_formula(a);
            let pb = parity_formula(b);
            // pa XOR pb = (pa AND NOT pb) OR (NOT pa AND pb); each operand is
            // duplicated once, which is what drives the quadratic size.
            Formula::Or(vec![
                Formula::And(vec![pa.clone(), Formula::Not(Box::new(pb.clone()))]),
                Formula::And(vec![Formula::Not(Box::new(pa)), pb]),
            ])
        }
    }
}

/// The linear-size parity *circuit* (a running XOR over the inputs, with each
/// XOR expanded over the {AND, OR, NOT} basis but sharing the running value).
pub fn parity_circuit(vars: &[VarId]) -> Circuit {
    let mut c = Circuit::new();
    let mut acc = c.constant(false);
    for &v in vars {
        let x = c.var(v);
        let not_x = c.not(x);
        let not_acc = c.not(acc);
        let left = c.and(vec![acc, not_x]);
        let right = c.and(vec![not_acc, x]);
        acc = c.or(vec![left, right]);
    }
    c.set_output(acc);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_variables() {
        let f = Formula::Or(vec![
            Formula::And(vec![Formula::Var(0), Formula::Var(1)]),
            Formula::Not(Box::new(Formula::Var(2))),
        ]);
        assert_eq!(f.leaf_size(), 3);
        assert_eq!(f.node_size(), 6);
        assert_eq!(f.variables(), [0, 1, 2].into_iter().collect());
        assert!(!f.is_monotone());
        assert!(f.is_read_once());
    }

    #[test]
    fn read_once_detection() {
        let f = Formula::And(vec![Formula::Var(0), Formula::Var(0)]);
        assert!(!f.is_read_once());
        let g = Formula::And(vec![Formula::Var(0), Formula::Var(1)]);
        assert!(g.is_read_once());
    }

    #[test]
    fn formula_circuit_roundtrip() {
        let f = Formula::Or(vec![
            Formula::And(vec![Formula::Var(0), Formula::Var(1)]),
            Formula::Not(Box::new(Formula::Var(2))),
        ]);
        let c = f.to_circuit();
        for mask in 0u32..8 {
            let assignment = |v: VarId| mask >> v & 1 == 1;
            assert_eq!(f.evaluate(&assignment), c.evaluate(&assignment));
        }
        let back = Formula::from_circuit(&c, 1000);
        assert!(back.to_circuit().equivalent_to(&c));
    }

    #[test]
    fn threshold2_constructions_agree() {
        for n in 1..=9usize {
            let vars: Vec<VarId> = (0..n).collect();
            let dnc = threshold2_formula(&vars);
            let naive = threshold2_formula_naive(&vars);
            let circuit = threshold2_circuit(&vars);
            assert!(dnc.is_monotone());
            assert!(naive.is_monotone());
            assert!(circuit.is_monotone_syntactically() || n == 0);
            for mask in 0u32..(1 << n) {
                let expected = mask.count_ones() >= 2;
                let assignment = |v: VarId| mask >> v & 1 == 1;
                assert_eq!(dnc.evaluate(&assignment), expected, "dnc n={n} mask={mask}");
                assert_eq!(naive.evaluate(&assignment), expected);
                assert_eq!(circuit.evaluate(&assignment), expected);
            }
        }
    }

    #[test]
    fn threshold2_sizes() {
        // Divide-and-conquer formula is O(n log n) leaves; the circuit is
        // O(n) gates; the naive formula is Θ(n²).
        let vars: Vec<VarId> = (0..64).collect();
        let dnc = threshold2_formula(&vars).leaf_size();
        let naive = threshold2_formula_naive(&vars).leaf_size();
        let circuit = threshold2_circuit(&vars).size();
        assert!(dnc <= 64 * 7 * 2, "dnc size {dnc}");
        assert_eq!(naive, 64 * 63); // 2 * C(64, 2)
        assert!(circuit <= 64 * 5 + 3, "circuit size {circuit}");
        assert!(dnc < naive);
    }

    #[test]
    fn parity_constructions_agree() {
        for n in 1..=8usize {
            let vars: Vec<VarId> = (0..n).collect();
            let formula = parity_formula(&vars);
            let circuit = parity_circuit(&vars);
            for mask in 0u32..(1 << n) {
                let expected = mask.count_ones() % 2 == 1;
                let assignment = |v: VarId| mask >> v & 1 == 1;
                assert_eq!(formula.evaluate(&assignment), expected, "n={n} mask={mask}");
                assert_eq!(circuit.evaluate(&assignment), expected);
            }
        }
    }

    #[test]
    fn parity_formula_is_quadratic_circuit_is_linear() {
        let sizes: Vec<(usize, usize, usize)> = [8usize, 16, 32, 64]
            .iter()
            .map(|&n| {
                let vars: Vec<VarId> = (0..n).collect();
                (
                    n,
                    parity_formula(&vars).leaf_size(),
                    parity_circuit(&vars).size(),
                )
            })
            .collect();
        for &(n, formula_leaves, circuit_size) in &sizes {
            // Balanced recursive XOR expansion has exactly n^2 leaves when n
            // is a power of two.
            assert_eq!(formula_leaves, n * n);
            assert!(circuit_size <= 6 * n + 2);
        }
        // Quadratic vs linear growth: doubling n quadruples the formula.
        assert_eq!(sizes[1].1, 4 * sizes[0].1);
        assert_eq!(sizes[2].1, 4 * sizes[1].1);
    }

    #[test]
    fn expansion_budget_is_enforced() {
        let vars: Vec<VarId> = (0..12).collect();
        let c = parity_circuit(&vars);
        let result = std::panic::catch_unwind(|| Formula::from_circuit(&c, 50));
        assert!(result.is_err());
    }
}
