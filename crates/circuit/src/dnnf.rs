//! d-DNNFs: deterministic decomposable negation normal forms
//! (Definition 6.10 of the paper, following \[20\] and \[36\]).
//!
//! A d-DNNF is a circuit where (1) negation is applied to inputs only,
//! (2) the children of every AND gate depend on disjoint variables
//! (*decomposability*) and (3) the children of every OR gate are mutually
//! exclusive (*determinism*). Probability evaluation and (after smoothing)
//! model counting are linear on d-DNNFs; Theorem 6.11 shows MSO lineages on
//! bounded-treewidth instances have linear-size d-DNNFs.

use crate::circuit::{Circuit, Gate, GateId, VarId};
use std::collections::BTreeSet;
use treelineage_num::{BigUint, Rational};

/// A circuit together with the verified d-DNNF structural guarantees.
///
/// Construct via [`Dnnf::verify`] (full verification, exponential determinism
/// check — for tests) or [`Dnnf::from_trusted_circuit`] (checks the two
/// syntactic conditions only; determinism is guaranteed by construction for
/// the circuits produced by the deterministic lineage DP of the core crate,
/// cf. Theorem 6.11's "if the automaton is deterministic" argument).
#[derive(Clone, Debug)]
pub struct Dnnf {
    circuit: Circuit,
}

/// Errors reported when a circuit is not a d-DNNF.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnnfError {
    /// A NOT gate is applied to a non-input gate.
    NegationOnInternalGate(GateId),
    /// An AND gate has children sharing a variable.
    NotDecomposable(GateId),
    /// An OR gate has two children that are simultaneously satisfiable.
    NotDeterministic(GateId),
}

impl std::fmt::Display for DnnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnnfError::NegationOnInternalGate(g) => {
                write!(f, "gate {g:?}: negation applied to an internal gate")
            }
            DnnfError::NotDecomposable(g) => {
                write!(f, "AND gate {g:?} has children sharing variables")
            }
            DnnfError::NotDeterministic(g) => {
                write!(f, "OR gate {g:?} has overlapping children")
            }
        }
    }
}

impl std::error::Error for DnnfError {}

impl Dnnf {
    /// Wraps a circuit after checking the two *syntactic* d-DNNF conditions
    /// (negations on inputs, decomposability). Determinism — a semantic
    /// condition — is trusted; use [`Dnnf::verify`] to also check it
    /// exhaustively on small circuits.
    pub fn from_trusted_circuit(circuit: Circuit) -> Result<Self, DnnfError> {
        let dependencies = circuit.gate_dependencies();
        check_syntactic(&circuit, &dependencies)?;
        Ok(Dnnf { circuit })
    }

    /// Wraps a circuit after checking all three d-DNNF conditions; the
    /// determinism check enumerates assignments and is exponential, so the
    /// circuit must have at most 20 variables.
    pub fn verify(circuit: Circuit) -> Result<Self, DnnfError> {
        let dependencies = circuit.gate_dependencies();
        check_syntactic(&circuit, &dependencies)?;
        // Determinism: for every OR gate, no assignment makes two distinct
        // children true simultaneously.
        let vars: Vec<VarId> = circuit.variables().into_iter().collect();
        assert!(
            vars.len() <= 20,
            "exhaustive determinism check limited to 20 variables"
        );
        for mask in 0u64..(1u64 << vars.len()) {
            let true_vars: BTreeSet<VarId> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            let values = circuit.evaluate_all_gates(&|v| true_vars.contains(&v));
            for id in circuit.gate_ids() {
                if let Gate::Or(inputs) = circuit.gate(id) {
                    let true_children = inputs.iter().filter(|i| values[i.0]).count();
                    if true_children > 1 {
                        return Err(DnnfError::NotDeterministic(id));
                    }
                }
            }
        }
        Ok(Dnnf { circuit })
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Size of the d-DNNF (number of gates).
    pub fn size(&self) -> usize {
        self.circuit.size()
    }

    /// The variables the d-DNNF depends on.
    pub fn variables(&self) -> BTreeSet<VarId> {
        self.circuit.variables()
    }

    /// Probability that the represented function is true when variable `v`
    /// is independently true with probability `prob(v)`. Linear in the
    /// circuit size (\[20\]): OR children are mutually exclusive so their
    /// probabilities add; AND children are independent so they multiply.
    pub fn probability(&self, prob: &dyn Fn(VarId) -> Rational) -> Rational {
        let mut values: Vec<Rational> = Vec::with_capacity(self.circuit.size());
        for id in self.circuit.gate_ids() {
            let p = match self.circuit.gate(id) {
                Gate::Var(v) => prob(*v),
                Gate::Const(b) => {
                    if *b {
                        Rational::one()
                    } else {
                        Rational::zero()
                    }
                }
                Gate::Not(i) => values[i.0].complement(),
                Gate::And(inputs) => {
                    let mut acc = Rational::one();
                    for &i in inputs {
                        acc *= &values[i.0];
                    }
                    acc
                }
                Gate::Or(inputs) => {
                    let mut acc = Rational::zero();
                    for &i in inputs {
                        acc += &values[i.0];
                    }
                    acc
                }
            };
            values.push(p);
        }
        values[self.circuit.output().0].clone()
    }

    /// Number of satisfying assignments over `universe` (which must contain
    /// all variables of the d-DNNF). Computed as the probability under the
    /// all-1/2 valuation scaled by `2^{|universe|}` — this is exactly the
    /// relationship between model counting and probability evaluation used in
    /// footnote 3 of the paper, and it sidesteps the need for explicit
    /// smoothing.
    pub fn count_models(&self, universe: &[VarId]) -> BigUint {
        let vars = self.variables();
        assert!(
            vars.iter().all(|v| universe.contains(v)),
            "universe must contain all variables of the d-DNNF"
        );
        let p = self.probability(&|_| Rational::one_half());
        // p has denominator a power of two; p * 2^{|universe|} is an integer.
        let scaled = &p * &Rational::from_biguint(BigUint::pow2(universe.len()));
        assert!(
            scaled.denominator().is_one(),
            "model count computation did not yield an integer"
        );
        assert!(!scaled.numerator().is_negative());
        scaled.numerator().magnitude().clone()
    }
}

fn check_syntactic(circuit: &Circuit, dependencies: &[BTreeSet<VarId>]) -> Result<(), DnnfError> {
    for id in circuit.gate_ids() {
        match circuit.gate(id) {
            Gate::Not(i) if !matches!(circuit.gate(*i), Gate::Var(_) | Gate::Const(_)) => {
                return Err(DnnfError::NegationOnInternalGate(id));
            }
            Gate::And(inputs) => {
                // Children must have pairwise disjoint dependency sets.
                let mut seen: BTreeSet<VarId> = BTreeSet::new();
                for &i in inputs {
                    for v in &dependencies[i.0] {
                        if !seen.insert(*v) {
                            return Err(DnnfError::NotDecomposable(id));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the d-DNNF for "exactly one of x0, x1 is true":
    /// (x0 AND NOT x1) OR (NOT x0 AND x1).
    fn exactly_one() -> Circuit {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let n0 = c.not(x0);
        let n1 = c.not(x1);
        let left = c.and(vec![x0, n1]);
        let right = c.and(vec![n0, x1]);
        let o = c.or(vec![left, right]);
        c.set_output(o);
        c
    }

    #[test]
    fn exactly_one_is_a_ddnnf() {
        let d = Dnnf::verify(exactly_one()).unwrap();
        assert_eq!(d.size(), 7);
        assert_eq!(d.count_models(&[0, 1]).to_u64(), Some(2));
        let p = d.probability(&|v| {
            if v == 0 {
                Rational::from_ratio_u64(1, 3)
            } else {
                Rational::from_ratio_u64(1, 4)
            }
        });
        // 1/3 * 3/4 + 2/3 * 1/4 = 1/4 + 1/6 = 5/12.
        assert_eq!(p, Rational::from_ratio_u64(5, 12));
    }

    #[test]
    fn non_decomposable_and_is_rejected() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let a = c.and(vec![x0, x0]);
        c.set_output(a);
        assert_eq!(
            Dnnf::from_trusted_circuit(c).unwrap_err(),
            DnnfError::NotDecomposable(GateId(1))
        );
    }

    #[test]
    fn non_deterministic_or_is_rejected_by_verify() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let o = c.or(vec![x0, x1]);
        c.set_output(o);
        // Syntactically fine (decomposable OR is not required)…
        assert!(Dnnf::from_trusted_circuit(c.clone()).is_ok());
        // …but not deterministic: x0 = x1 = 1 satisfies both children.
        assert_eq!(
            Dnnf::verify(c).unwrap_err(),
            DnnfError::NotDeterministic(GateId(2))
        );
    }

    #[test]
    fn negation_on_internal_gate_is_rejected() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let a = c.and(vec![x0, x1]);
        let n = c.not(a);
        c.set_output(n);
        assert_eq!(
            Dnnf::from_trusted_circuit(c).unwrap_err(),
            DnnfError::NegationOnInternalGate(GateId(3))
        );
    }

    #[test]
    fn model_count_over_larger_universe() {
        let d = Dnnf::verify(exactly_one()).unwrap();
        // Over a universe with an extra variable the count doubles.
        assert_eq!(d.count_models(&[0, 1, 7]).to_u64(), Some(4));
    }

    #[test]
    fn probability_of_constant_circuits() {
        let mut c = Circuit::new();
        let t = c.constant(true);
        c.set_output(t);
        let d = Dnnf::verify(c).unwrap();
        assert!(d.probability(&|_| Rational::one_half()).is_one());
        assert_eq!(d.count_models(&[0, 1]).to_u64(), Some(4));
    }

    #[test]
    fn deterministic_or_with_mutually_exclusive_guards() {
        // (x0 AND x1) OR (NOT x0 AND x2) is deterministic and decomposable.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let x2 = c.var(2);
        let n0 = c.not(x0);
        let left = c.and(vec![x0, x1]);
        let right = c.and(vec![n0, x2]);
        let o = c.or(vec![left, right]);
        c.set_output(o);
        let d = Dnnf::verify(c).unwrap();
        assert_eq!(d.count_models(&[0, 1, 2]).to_u64(), Some(4));
    }
}
