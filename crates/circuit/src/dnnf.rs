//! d-DNNFs: deterministic decomposable negation normal forms
//! (Definition 6.10 of the paper, following \[20\] and \[36\]).
//!
//! A d-DNNF is a circuit where (1) negation is applied to inputs only,
//! (2) the children of every AND gate depend on disjoint variables
//! (*decomposability*) and (3) the children of every OR gate are mutually
//! exclusive (*determinism*). Probability evaluation and (after smoothing)
//! model counting are linear on d-DNNFs; Theorem 6.11 shows MSO lineages on
//! bounded-treewidth instances have linear-size d-DNNFs.

use crate::circuit::{Circuit, Gate, GateDeps, GateId, VarId};
use std::collections::{BTreeMap, BTreeSet};
use treelineage_num::{BigUint, ErrorInterval, Rational};

/// A circuit together with the verified d-DNNF structural guarantees.
///
/// Construct via [`Dnnf::verify`] (full verification, exponential determinism
/// check — for tests) or [`Dnnf::from_trusted_circuit`] (checks the two
/// syntactic conditions only; determinism is guaranteed by construction for
/// the circuits produced by the deterministic lineage DP of the core crate,
/// cf. Theorem 6.11's "if the automaton is deterministic" argument).
#[derive(Clone, Debug)]
pub struct Dnnf {
    circuit: Circuit,
}

/// Errors reported when a circuit is not a d-DNNF.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DnnfError {
    /// A NOT gate is applied to a non-input gate.
    NegationOnInternalGate(GateId),
    /// An AND gate has children sharing a variable.
    NotDecomposable(GateId),
    /// An OR gate has two children that are simultaneously satisfiable.
    NotDeterministic(GateId),
}

impl std::fmt::Display for DnnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnnfError::NegationOnInternalGate(g) => {
                write!(f, "gate {g:?}: negation applied to an internal gate")
            }
            DnnfError::NotDecomposable(g) => {
                write!(f, "AND gate {g:?} has children sharing variables")
            }
            DnnfError::NotDeterministic(g) => {
                write!(f, "OR gate {g:?} has overlapping children")
            }
        }
    }
}

impl std::error::Error for DnnfError {}

impl Dnnf {
    /// Wraps a circuit after checking the two *syntactic* d-DNNF conditions
    /// (negations on inputs, decomposability). Determinism — a semantic
    /// condition — is trusted; use [`Dnnf::verify`] to also check it
    /// exhaustively on small circuits.
    pub fn from_trusted_circuit(circuit: Circuit) -> Result<Self, DnnfError> {
        let dependencies = circuit.dependency_bitsets();
        check_syntactic(&circuit, &dependencies)?;
        Ok(Dnnf { circuit })
    }

    /// Wraps a circuit after checking all three d-DNNF conditions; the
    /// determinism check enumerates assignments and is exponential, so the
    /// circuit must have at most 20 variables.
    pub fn verify(circuit: Circuit) -> Result<Self, DnnfError> {
        let dependencies = circuit.dependency_bitsets();
        check_syntactic(&circuit, &dependencies)?;
        // Determinism: for every OR gate, no assignment makes two distinct
        // children true simultaneously. The enumeration must range over
        // *every* variable occurring in the circuit — not just the ones
        // reachable from the output — because the syntactic conditions are
        // checked on all gates too, and an OR gate dangling off the output
        // can only overlap under assignments touching its own variables
        // (see `dangling_nondeterministic_or_is_rejected` for the minimal
        // counterexample that the output-reachable enumeration missed).
        let vars: Vec<VarId> = circuit
            .gate_ids()
            .filter_map(|id| match circuit.gate(id) {
                Gate::Var(v) => Some(*v),
                _ => None,
            })
            .collect::<BTreeSet<VarId>>()
            .into_iter()
            .collect();
        assert!(
            vars.len() <= 20,
            "exhaustive determinism check limited to 20 variables"
        );
        for mask in 0u64..(1u64 << vars.len()) {
            let true_vars: BTreeSet<VarId> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            let values = circuit.evaluate_all_gates(&|v| true_vars.contains(&v));
            for id in circuit.gate_ids() {
                if let Gate::Or(inputs) = circuit.gate(id) {
                    let true_children = inputs.iter().filter(|i| values[i.0]).count();
                    if true_children > 1 {
                        return Err(DnnfError::NotDeterministic(id));
                    }
                }
            }
        }
        Ok(Dnnf { circuit })
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Size of the d-DNNF (number of gates).
    pub fn size(&self) -> usize {
        self.circuit.size()
    }

    /// The variables the d-DNNF depends on.
    pub fn variables(&self) -> BTreeSet<VarId> {
        self.circuit.variables()
    }

    /// Probability that the represented function is true when variable `v`
    /// is independently true with probability `prob(v)`. Linear in the
    /// circuit size (\[20\]): OR children are mutually exclusive so their
    /// probabilities add; AND children are independent so they multiply.
    pub fn probability(&self, prob: &dyn Fn(VarId) -> Rational) -> Rational {
        let mut values: Vec<Rational> = Vec::with_capacity(self.circuit.size());
        for id in self.circuit.gate_ids() {
            let p = match self.circuit.gate(id) {
                Gate::Var(v) => prob(*v),
                Gate::Const(b) => {
                    if *b {
                        Rational::one()
                    } else {
                        Rational::zero()
                    }
                }
                Gate::Not(i) => values[i.0].complement(),
                Gate::And(inputs) => {
                    let mut acc = Rational::one();
                    for &i in inputs {
                        acc *= &values[i.0];
                    }
                    acc
                }
                Gate::Or(inputs) => {
                    let mut acc = Rational::zero();
                    for &i in inputs {
                        acc += &values[i.0];
                    }
                    acc
                }
            };
            values.push(p);
        }
        values[self.circuit.output().0].clone()
    }

    /// Number of satisfying assignments over `universe` (which must contain
    /// all variables of the d-DNNF). Computed as the probability under the
    /// all-1/2 valuation scaled by `2^{|universe|}` — this is exactly the
    /// relationship between model counting and probability evaluation used in
    /// footnote 3 of the paper, and it sidesteps the need for explicit
    /// smoothing.
    pub fn count_models(&self, universe: &[VarId]) -> BigUint {
        let vars = self.variables();
        assert!(
            vars.iter().all(|v| universe.contains(v)),
            "universe must contain all variables of the d-DNNF"
        );
        let p = self.probability(&|_| Rational::one_half());
        // p has denominator a power of two; p * 2^{|universe|} is an integer.
        let scaled = &p * &Rational::from_biguint(BigUint::pow2(universe.len()));
        assert!(
            scaled.denominator().is_one(),
            "model count computation did not yield an integer"
        );
        assert!(!scaled.numerator().is_negative());
        scaled.numerator().magnitude().clone()
    }

    /// Returns `true` if the d-DNNF is *smooth*: the children of every OR
    /// gate depend on exactly the same variables. Smoothness is what makes
    /// the single integer pass of [`Dnnf::count_models_smooth`] and the
    /// general-weight pass of [`Dnnf::wmc`] correct (without it, an OR child
    /// that "forgets" a variable under-counts its models).
    pub fn is_smooth(&self) -> bool {
        let deps = self.circuit.dependency_bitsets();
        self.circuit
            .gate_ids()
            .all(|id| match self.circuit.gate(id) {
                Gate::Or(inputs) => inputs.windows(2).all(|w| deps.row(w[0]) == deps.row(w[1])),
                _ => true,
            })
    }

    /// The *smoothing pass*: returns an equivalent d-DNNF over `universe`
    /// where every OR gate's children mention the same variables and the
    /// output mentions all of `universe`. Each OR child missing a variable
    /// `v` is conjoined with the tautology `v ∨ ¬v` (deterministic and
    /// smooth itself), so determinism and decomposability are preserved and
    /// the size grows by at most one gate pair per (gate, missing variable).
    pub fn smooth(&self, universe: &[VarId]) -> Dnnf {
        let deps = self.circuit.dependency_bitsets();
        let universe_set: BTreeSet<VarId> = universe.iter().copied().collect();
        assert!(
            self.variables().is_subset(&universe_set),
            "universe must contain all variables of the d-DNNF"
        );
        let mut out = Circuit::new();
        // Tautology gates v ∨ ¬v, one per padded variable.
        let mut taut: BTreeMap<VarId, GateId> = BTreeMap::new();
        let mut tautology = |v: VarId, out: &mut Circuit| -> GateId {
            if let Some(&g) = taut.get(&v) {
                return g;
            }
            let pos = out.var(v);
            let neg = out.not(pos);
            let g = out.or(vec![pos, neg]);
            taut.insert(v, g);
            g
        };
        let pad = |gate: GateId,
                   missing: &mut dyn Iterator<Item = VarId>,
                   out: &mut Circuit,
                   tautology: &mut dyn FnMut(VarId, &mut Circuit) -> GateId|
         -> GateId {
            let mut inputs = vec![gate];
            for v in missing {
                inputs.push(tautology(v, out));
            }
            if inputs.len() == 1 {
                return gate;
            }
            out.and(inputs)
        };
        let mut mapping: Vec<GateId> = Vec::with_capacity(self.circuit.size());
        for id in self.circuit.gate_ids() {
            let new_id = match self.circuit.gate(id) {
                Gate::Var(v) => out.var(*v),
                Gate::Const(b) => out.constant(*b),
                Gate::Not(i) => {
                    let input = mapping[i.0];
                    out.not(input)
                }
                Gate::And(inputs) => {
                    let mapped: Vec<GateId> = inputs.iter().map(|i| mapping[i.0]).collect();
                    out.and(mapped)
                }
                Gate::Or(inputs) => {
                    let mut scope = deps.empty_row();
                    for i in inputs {
                        for (w, &src) in scope.iter_mut().zip(deps.row(*i)) {
                            *w |= src;
                        }
                    }
                    let mapped: Vec<GateId> = inputs
                        .iter()
                        .map(|i| {
                            let row = deps.row(*i);
                            let gap: Vec<u64> =
                                scope.iter().zip(row).map(|(s, r)| s & !r).collect();
                            let padded = pad(
                                mapping[i.0],
                                &mut deps.vars_of(&gap),
                                &mut out,
                                &mut tautology,
                            );
                            padded
                        })
                        .collect();
                    out.or(mapped)
                }
            };
            mapping.push(new_id);
        }
        let output = self.circuit.output();
        let present: BTreeSet<VarId> = deps.vars_of(deps.row(output)).collect();
        let padded = pad(
            mapping[output.0],
            &mut universe_set.difference(&present).copied(),
            &mut out,
            &mut tautology,
        );
        out.set_output(padded);
        Dnnf::from_trusted_circuit(out).expect("smoothing preserves the d-DNNF conditions")
    }

    /// Model count of a *smooth* d-DNNF whose output mentions its whole
    /// universe (as produced by [`Dnnf::smooth`]): a single bottom-up integer
    /// pass — Var and negated Var count one model, OR children add (they are
    /// mutually exclusive over a common scope), AND children multiply (they
    /// are independent). Linear in the circuit size, no rational arithmetic.
    pub fn count_models_smooth(&self) -> BigUint {
        // A full assert, not a debug_assert: on a non-smooth circuit the
        // pass silently under-counts, and the bitset-based check is cheap
        // next to the bignum arithmetic below.
        assert!(
            self.is_smooth(),
            "count_models_smooth needs a smooth d-DNNF"
        );
        let mut values: Vec<BigUint> = Vec::with_capacity(self.circuit.size());
        for id in self.circuit.gate_ids() {
            let count = match self.circuit.gate(id) {
                Gate::Var(_) => BigUint::one(),
                Gate::Const(b) => {
                    if *b {
                        BigUint::one()
                    } else {
                        BigUint::zero()
                    }
                }
                Gate::Not(i) => match self.circuit.gate(*i) {
                    Gate::Var(_) => BigUint::one(),
                    Gate::Const(b) => {
                        if *b {
                            BigUint::zero()
                        } else {
                            BigUint::one()
                        }
                    }
                    _ => unreachable!("negations on inputs only"),
                },
                Gate::And(inputs) => {
                    let mut acc = BigUint::one();
                    for &i in inputs {
                        acc = &acc * &values[i.0];
                    }
                    acc
                }
                Gate::Or(inputs) => {
                    let mut acc = BigUint::zero();
                    for &i in inputs {
                        acc = &acc + &values[i.0];
                    }
                    acc
                }
            };
            values.push(count);
        }
        values[self.circuit.output().0].clone()
    }

    /// One-pass *weighted* model count with independent per-literal weights:
    /// `Σ_models Π_v (pos(v) if v true else neg(v))`, over the variables the
    /// output mentions. Unlike [`Dnnf::probability`], the weights need not
    /// sum to one per variable, so the d-DNNF must be smooth (smooth it over
    /// the intended universe first — a variable absent from a model's scope
    /// would silently contribute factor 1 instead of `pos(v) + neg(v)`).
    pub fn wmc(
        &self,
        pos: &dyn Fn(VarId) -> Rational,
        neg: &dyn Fn(VarId) -> Rational,
    ) -> Rational {
        // Full assert for the same reason as `count_models_smooth`: a
        // missing variable silently contributes factor 1 instead of
        // `pos(v) + neg(v)`.
        assert!(self.is_smooth(), "wmc needs a smooth d-DNNF");
        let mut values: Vec<Rational> = Vec::with_capacity(self.circuit.size());
        for id in self.circuit.gate_ids() {
            let w = match self.circuit.gate(id) {
                Gate::Var(v) => pos(*v),
                Gate::Const(b) => {
                    if *b {
                        Rational::one()
                    } else {
                        Rational::zero()
                    }
                }
                Gate::Not(i) => match self.circuit.gate(*i) {
                    Gate::Var(v) => neg(*v),
                    Gate::Const(b) => {
                        if *b {
                            Rational::zero()
                        } else {
                            Rational::one()
                        }
                    }
                    _ => unreachable!("negations on inputs only"),
                },
                Gate::And(inputs) => {
                    let mut acc = Rational::one();
                    for &i in inputs {
                        acc *= &values[i.0];
                    }
                    acc
                }
                Gate::Or(inputs) => {
                    let mut acc = Rational::zero();
                    for &i in inputs {
                        acc += &values[i.0];
                    }
                    acc
                }
            };
            values.push(w);
        }
        values[self.circuit.output().0].clone()
    }

    /// Float fast-path of [`Dnnf::probability`]: the same linear pass in
    /// certified `f64` interval arithmetic. Returns an [`ErrorInterval`]
    /// guaranteed to contain the exact rational answer — each gate combines
    /// its children's enclosures with outward-rounded `add`/`mul`, so the
    /// containment invariant is preserved inductively from the leaves (which
    /// get the optimal bracket of the exact input probability). One pass
    /// costs `O(size)` f64 operations instead of `O(size)` big-rational
    /// operations, which is where the fast-path speedup comes from.
    pub fn probability_interval(&self, prob: &dyn Fn(VarId) -> ErrorInterval) -> ErrorInterval {
        let mut values: Vec<ErrorInterval> = Vec::with_capacity(self.circuit.size());
        for id in self.circuit.gate_ids() {
            let p = match self.circuit.gate(id) {
                Gate::Var(v) => prob(*v),
                Gate::Const(b) => {
                    if *b {
                        ErrorInterval::one()
                    } else {
                        ErrorInterval::zero()
                    }
                }
                Gate::Not(i) => values[i.0].complement(),
                Gate::And(inputs) => {
                    let mut acc = ErrorInterval::one();
                    for &i in inputs {
                        acc = acc.mul(&values[i.0]);
                    }
                    acc
                }
                Gate::Or(inputs) => {
                    let mut acc = ErrorInterval::zero();
                    for &i in inputs {
                        acc = acc.add(&values[i.0]);
                    }
                    acc
                }
            };
            values.push(p);
        }
        values[self.circuit.output().0]
    }

    /// Float fast-path of [`Dnnf::wmc`] with the same smoothness requirement
    /// and the same containment guarantee as
    /// [`Dnnf::probability_interval`]: the returned interval contains the
    /// exact weighted model count.
    pub fn wmc_interval(
        &self,
        pos: &dyn Fn(VarId) -> ErrorInterval,
        neg: &dyn Fn(VarId) -> ErrorInterval,
    ) -> ErrorInterval {
        assert!(self.is_smooth(), "wmc needs a smooth d-DNNF");
        let mut values: Vec<ErrorInterval> = Vec::with_capacity(self.circuit.size());
        for id in self.circuit.gate_ids() {
            let w = match self.circuit.gate(id) {
                Gate::Var(v) => pos(*v),
                Gate::Const(b) => {
                    if *b {
                        ErrorInterval::one()
                    } else {
                        ErrorInterval::zero()
                    }
                }
                Gate::Not(i) => match self.circuit.gate(*i) {
                    Gate::Var(v) => neg(*v),
                    Gate::Const(b) => {
                        if *b {
                            ErrorInterval::zero()
                        } else {
                            ErrorInterval::one()
                        }
                    }
                    _ => unreachable!("negations on inputs only"),
                },
                Gate::And(inputs) => {
                    let mut acc = ErrorInterval::one();
                    for &i in inputs {
                        acc = acc.mul(&values[i.0]);
                    }
                    acc
                }
                Gate::Or(inputs) => {
                    let mut acc = ErrorInterval::zero();
                    for &i in inputs {
                        acc = acc.add(&values[i.0]);
                    }
                    acc
                }
            };
            values.push(w);
        }
        values[self.circuit.output().0]
    }

    /// Conditions the d-DNNF on `var = value` (the substitution used by
    /// Lemma 6.6's restrictions): the result no longer depends on `var`.
    /// Restriction preserves all three d-DNNF conditions, so the result is
    /// again a d-DNNF of at most the same size.
    pub fn condition(&self, var: VarId, value: bool) -> Dnnf {
        let mut fixed = std::collections::HashMap::new();
        fixed.insert(var, value);
        Dnnf::from_trusted_circuit(self.circuit.restrict(&fixed))
            .expect("conditioning preserves the d-DNNF conditions")
    }
}

fn check_syntactic(circuit: &Circuit, dependencies: &GateDeps) -> Result<(), DnnfError> {
    let mut seen = dependencies.empty_row();
    for id in circuit.gate_ids() {
        match circuit.gate(id) {
            Gate::Not(i) if !matches!(circuit.gate(*i), Gate::Var(_) | Gate::Const(_)) => {
                return Err(DnnfError::NegationOnInternalGate(id));
            }
            Gate::And(inputs) => {
                // Children must have pairwise disjoint dependency sets.
                seen.iter_mut().for_each(|w| *w = 0);
                for &i in inputs {
                    let row = dependencies.row(i);
                    if GateDeps::intersects(&seen, row) {
                        return Err(DnnfError::NotDecomposable(id));
                    }
                    for (w, &src) in seen.iter_mut().zip(row) {
                        *w |= src;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the d-DNNF for "exactly one of x0, x1 is true":
    /// (x0 AND NOT x1) OR (NOT x0 AND x1).
    fn exactly_one() -> Circuit {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let n0 = c.not(x0);
        let n1 = c.not(x1);
        let left = c.and(vec![x0, n1]);
        let right = c.and(vec![n0, x1]);
        let o = c.or(vec![left, right]);
        c.set_output(o);
        c
    }

    #[test]
    fn exactly_one_is_a_ddnnf() {
        let d = Dnnf::verify(exactly_one()).unwrap();
        assert_eq!(d.size(), 7);
        assert_eq!(d.count_models(&[0, 1]).to_u64(), Some(2));
        let p = d.probability(&|v| {
            if v == 0 {
                Rational::from_ratio_u64(1, 3)
            } else {
                Rational::from_ratio_u64(1, 4)
            }
        });
        // 1/3 * 3/4 + 2/3 * 1/4 = 1/4 + 1/6 = 5/12.
        assert_eq!(p, Rational::from_ratio_u64(5, 12));
    }

    #[test]
    fn non_decomposable_and_is_rejected() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let a = c.and(vec![x0, x0]);
        c.set_output(a);
        assert_eq!(
            Dnnf::from_trusted_circuit(c).unwrap_err(),
            DnnfError::NotDecomposable(GateId(1))
        );
    }

    #[test]
    fn non_deterministic_or_is_rejected_by_verify() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let o = c.or(vec![x0, x1]);
        c.set_output(o);
        // Syntactically fine (decomposable OR is not required)…
        assert!(Dnnf::from_trusted_circuit(c.clone()).is_ok());
        // …but not deterministic: x0 = x1 = 1 satisfies both children.
        assert_eq!(
            Dnnf::verify(c).unwrap_err(),
            DnnfError::NotDeterministic(GateId(2))
        );
    }

    #[test]
    fn negation_on_internal_gate_is_rejected() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let a = c.and(vec![x0, x1]);
        let n = c.not(a);
        c.set_output(n);
        assert_eq!(
            Dnnf::from_trusted_circuit(c).unwrap_err(),
            DnnfError::NegationOnInternalGate(GateId(3))
        );
    }

    #[test]
    fn probability_interval_contains_exact() {
        let d = Dnnf::verify(exactly_one()).unwrap();
        let weight = |v: VarId| {
            if v == 0 {
                Rational::from_ratio_u64(1, 3)
            } else {
                Rational::from_ratio_u64(1, 4)
            }
        };
        let exact = d.probability(&weight);
        let interval = d.probability_interval(&|v| ErrorInterval::from_rational(&weight(v)));
        assert!(interval.contains(&exact));
        assert!(interval.width() < 1e-14);
        // The point estimate is within the certified error of the exact 5/12.
        assert!((interval.midpoint() - 5.0 / 12.0).abs() <= interval.width());
    }

    #[test]
    fn wmc_interval_contains_exact() {
        let d = Dnnf::verify(exactly_one()).unwrap();
        let smooth = d.smooth(&[0, 1]);
        let pos = |v: VarId| Rational::from_ratio_u64(v as u64 + 2, 7);
        let neg = |v: VarId| Rational::from_ratio_u64(v as u64 + 1, 5);
        let exact = smooth.wmc(&pos, &neg);
        let interval = smooth.wmc_interval(&|v| ErrorInterval::from_rational(&pos(v)), &|v| {
            ErrorInterval::from_rational(&neg(v))
        });
        assert!(interval.contains(&exact));
        assert!(interval.width() < 1e-14);
    }

    #[test]
    fn model_count_over_larger_universe() {
        let d = Dnnf::verify(exactly_one()).unwrap();
        // Over a universe with an extra variable the count doubles.
        assert_eq!(d.count_models(&[0, 1, 7]).to_u64(), Some(4));
    }

    #[test]
    fn probability_of_constant_circuits() {
        let mut c = Circuit::new();
        let t = c.constant(true);
        c.set_output(t);
        let d = Dnnf::verify(c).unwrap();
        assert!(d.probability(&|_| Rational::one_half()).is_one());
        assert_eq!(d.count_models(&[0, 1]).to_u64(), Some(4));
    }

    #[test]
    fn dangling_nondeterministic_or_is_rejected() {
        // Minimal counterexample for the old determinism check: the output is
        // the bare variable x0, and an OR over x1, x2 dangles off the output.
        // Enumerating only output-reachable variables ({x0}) never sets
        // x1 = x2 = 1, so the overlapping OR used to slip through `verify`.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let x2 = c.var(2);
        let dangling = c.or(vec![x1, x2]);
        c.set_output(x0);
        assert_eq!(
            Dnnf::verify(c).unwrap_err(),
            DnnfError::NotDeterministic(dangling)
        );
    }

    #[test]
    fn smoothing_pass_produces_smooth_equivalent_ddnnf() {
        // exactly_one is smooth already over {0, 1}; over a larger universe
        // the output must be padded.
        let d = Dnnf::verify(exactly_one()).unwrap();
        assert!(d.is_smooth());
        let s = d.smooth(&[0, 1, 5]);
        assert!(s.is_smooth());
        assert!(s.circuit().equivalent_to(d.circuit()));
        assert_eq!(s.variables(), [0, 1, 5].into_iter().collect());
        assert_eq!(s.count_models_smooth().to_u64(), Some(4));
        // The OBDD-shaped circuit (x0 AND x1) OR (NOT x0 AND x2) is NOT
        // smooth ({x0,x1} vs {x0,x2}); smoothing fixes it without changing
        // the function or the model count.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let x2 = c.var(2);
        let n0 = c.not(x0);
        let left = c.and(vec![x0, x1]);
        let right = c.and(vec![n0, x2]);
        let o = c.or(vec![left, right]);
        c.set_output(o);
        let d = Dnnf::verify(c).unwrap();
        assert!(!d.is_smooth());
        let s = d.smooth(&[0, 1, 2]);
        assert!(s.is_smooth());
        assert!(s.circuit().equivalent_to(d.circuit()));
        assert_eq!(
            s.count_models_smooth().to_u64(),
            d.count_models(&[0, 1, 2]).to_u64()
        );
    }

    #[test]
    fn wmc_with_general_weights_matches_enumeration() {
        // Weights that do NOT sum to 1 per variable: w(x0)=2/1, w(¬x0)=3/1,
        // w(x1)=1/2, w(¬x1)=5/1. exactly_one models: {x0}, {x1}.
        // WMC = 2*5 + 3*(1/2) = 23/2.
        let d = Dnnf::verify(exactly_one()).unwrap().smooth(&[0, 1]);
        let pos = |v: VarId| {
            if v == 0 {
                Rational::from_ratio_u64(2, 1)
            } else {
                Rational::from_ratio_u64(1, 2)
            }
        };
        let neg = |v: VarId| {
            if v == 0 {
                Rational::from_ratio_u64(3, 1)
            } else {
                Rational::from_ratio_u64(5, 1)
            }
        };
        assert_eq!(d.wmc(&pos, &neg), Rational::from_ratio_u64(23, 2));
        // With probability weights (pos + neg = 1), wmc agrees with
        // probability.
        let p = |v: VarId| Rational::from_ratio_u64(1, v as u64 + 3);
        let q = |v: VarId| p(v).complement();
        assert_eq!(d.wmc(&p, &q), d.probability(&p));
    }

    #[test]
    fn conditioning_fixes_a_variable() {
        let d = Dnnf::verify(exactly_one()).unwrap();
        // exactly_one | x0=1 is ¬x1; | x0=0 is x1.
        let c1 = d.condition(0, true);
        assert!(!c1.variables().contains(&0));
        assert_eq!(c1.count_models(&[1]).to_u64(), Some(1));
        assert!(c1.circuit().evaluate(&|_| false));
        assert!(!c1.circuit().evaluate(&|v| v == 1));
        let c0 = d.condition(0, false);
        assert!(c0.circuit().evaluate(&|v| v == 1));
        assert!(!c0.circuit().evaluate(&|_| false));
    }

    #[test]
    fn smooth_model_count_of_constant_circuits() {
        let mut c = Circuit::new();
        let t = c.constant(true);
        c.set_output(t);
        let d = Dnnf::verify(c).unwrap().smooth(&[0, 1, 2]);
        assert_eq!(d.count_models_smooth().to_u64(), Some(8));
        let mut c = Circuit::new();
        let f = c.constant(false);
        c.set_output(f);
        let d = Dnnf::verify(c).unwrap().smooth(&[0, 1, 2]);
        assert_eq!(d.count_models_smooth().to_u64(), Some(0));
    }

    #[test]
    fn deterministic_or_with_mutually_exclusive_guards() {
        // (x0 AND x1) OR (NOT x0 AND x2) is deterministic and decomposable.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let x2 = c.var(2);
        let n0 = c.not(x0);
        let left = c.and(vec![x0, x1]);
        let right = c.and(vec![n0, x2]);
        let o = c.or(vec![left, right]);
        c.set_output(o);
        let d = Dnnf::verify(c).unwrap();
        assert_eq!(d.count_models(&[0, 1, 2]).to_u64(), Some(4));
    }
}
