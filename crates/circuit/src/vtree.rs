//! Vtrees: variable trees witnessing *structured* decomposability.
//!
//! A vtree is a full binary tree whose leaves are variables. A decomposable
//! circuit is *structured* by a vtree when every AND gate splits its
//! variables along some vtree node: the children's variable scopes can be
//! routed into disjoint vtree subtrees. Structuredness is what makes d-DNNFs
//! composable (it underlies SDDs and the d-SDNNF extension discussed with
//! Theorem 6.11: the provenance construction on trees is structured by a
//! vtree read off the tree / tree decomposition, which is the witness this
//! module certifies). OBDDs are the special case of a *right-linear* vtree
//! over the variable order.
//!
//! Internally a node's scope is not materialized as a set: because internal
//! nodes must join *adjacent* leaf spans, every node covers a contiguous
//! range of the leaf ordering, so a scope is just a `[start, end)` interval
//! of leaf indices — O(1) containment checks and O(total leaves) memory,
//! which keeps vtree construction out of the compile hot path.

use crate::circuit::{Circuit, Gate, GateId, VarId};
use std::collections::BTreeMap;

/// Identifier of a node in a [`Vtree`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VtreeId(pub usize);

/// A node of a vtree: a variable leaf or an internal node with two children.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VtreeNode {
    /// A leaf holding one variable.
    Leaf(VarId),
    /// An internal node over two adjacent (hence disjoint) subtrees.
    Internal(VtreeId, VtreeId),
}

/// A full binary tree over a set of variables (each appearing in exactly one
/// leaf), used as a structure witness for decomposable circuits.
#[derive(Clone, Debug)]
pub struct Vtree {
    nodes: Vec<VtreeNode>,
    /// Scope of each node as a `[start, end)` range of leaf indices.
    spans: Vec<(u32, u32)>,
    /// Leaf index → variable, in creation order.
    leaf_vars: Vec<VarId>,
    /// Variable → leaf index (doubles as the duplicate-leaf check).
    var_leaf: BTreeMap<VarId, u32>,
    root: Option<VtreeId>,
}

impl Vtree {
    /// Creates an empty vtree (no nodes, no root): the witness for circuits
    /// over no variables.
    pub fn new() -> Self {
        Vtree {
            nodes: Vec::new(),
            spans: Vec::new(),
            leaf_vars: Vec::new(),
            var_leaf: BTreeMap::new(),
            root: None,
        }
    }

    /// Adds a leaf for `var`. The variable must not already occur in the
    /// vtree.
    pub fn leaf(&mut self, var: VarId) -> VtreeId {
        let index = self.leaf_vars.len() as u32;
        assert!(
            self.var_leaf.insert(var, index).is_none(),
            "variable {var} already in the vtree"
        );
        self.leaf_vars.push(var);
        self.nodes.push(VtreeNode::Leaf(var));
        self.spans.push((index, index + 1));
        VtreeId(self.nodes.len() - 1)
    }

    /// Adds an internal node over two existing subtrees covering *adjacent*
    /// leaf spans (in either order); adjacency implies disjoint scopes and
    /// keeps every node's scope a contiguous leaf range.
    pub fn internal(&mut self, left: VtreeId, right: VtreeId) -> VtreeId {
        assert!(left.0 < self.nodes.len() && right.0 < self.nodes.len());
        let l = self.spans[left.0];
        let r = self.spans[right.0];
        assert!(
            l.1 == r.0 || r.1 == l.0,
            "vtree subtrees must cover adjacent leaf spans"
        );
        self.nodes.push(VtreeNode::Internal(left, right));
        self.spans.push((l.0.min(r.0), l.1.max(r.1)));
        VtreeId(self.nodes.len() - 1)
    }

    /// Designates the root node.
    pub fn set_root(&mut self, root: VtreeId) {
        assert!(root.0 < self.nodes.len());
        self.root = Some(root);
    }

    /// The root node, if the vtree is non-empty.
    pub fn root(&self) -> Option<VtreeId> {
        self.root
    }

    /// The node with the given id.
    pub fn node(&self, id: VtreeId) -> VtreeNode {
        self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The variables under a node.
    pub fn scope(&self, id: VtreeId) -> std::collections::BTreeSet<VarId> {
        let (start, end) = self.spans[id.0];
        self.leaf_vars[start as usize..end as usize]
            .iter()
            .copied()
            .collect()
    }

    /// All variables of the vtree (the root's scope; empty for the empty
    /// vtree).
    pub fn variables(&self) -> std::collections::BTreeSet<VarId> {
        match self.root {
            Some(r) => self.scope(r),
            None => std::collections::BTreeSet::new(),
        }
    }

    /// The right-linear vtree over a variable order: variable `order[0]` is
    /// the leftmost leaf, and every internal node pairs one variable against
    /// the rest of the order. OBDDs under `order` are structured by exactly
    /// this vtree (each decision node on `v` splits `{v}` from the variables
    /// tested below it).
    pub fn right_linear(order: &[VarId]) -> Self {
        let mut vt = Vtree::new();
        // Leaves first, in order, so spans nest right-to-left.
        let leaves: Vec<VtreeId> = order.iter().map(|&v| vt.leaf(v)).collect();
        let mut acc: Option<VtreeId> = None;
        for &leaf in leaves.iter().rev() {
            acc = Some(match acc {
                None => leaf,
                Some(rest) => vt.internal(leaf, rest),
            });
        }
        if let Some(root) = acc {
            vt.set_root(root);
        }
        vt
    }

    /// Checks that `circuit` is *structured* by this vtree: for every AND
    /// gate, the (non-constant) children's variable scopes can be routed into
    /// disjoint subtrees of a single vtree node, recursively. Children with
    /// empty scope (constants) are ignored. Returns the first offending AND
    /// gate on failure.
    ///
    /// This is the structure-witness check for d-SDNNFs; a circuit respecting
    /// a right-linear vtree is OBDD-shaped, and the automaton provenance
    /// d-SDNNF respects the vtree read off its input tree. Each gate scope is
    /// summarized as its `[min, max]` leaf-index interval (scopes sit inside
    /// contiguous spans, so interval containment is exact), making the check
    /// linear in circuit size times vtree depth.
    pub fn respects(&self, circuit: &Circuit) -> Result<(), GateId> {
        let deps = circuit.dependency_bitsets();
        // Leaf-index interval of every gate's scope (`None` for empty
        // scopes, `Err` sentinel for variables outside the vtree).
        let mut intervals: Vec<Option<(u32, u32)>> = Vec::with_capacity(circuit.size());
        let mut foreign: Vec<bool> = Vec::with_capacity(circuit.size());
        for id in circuit.gate_ids() {
            let mut interval: Option<(u32, u32)> = None;
            let mut outside = false;
            for v in deps.vars_of(deps.row(id)) {
                match self.var_leaf.get(&v) {
                    None => outside = true,
                    Some(&i) => {
                        interval = Some(match interval {
                            None => (i, i),
                            Some((lo, hi)) => (lo.min(i), hi.max(i)),
                        });
                    }
                }
            }
            intervals.push(interval);
            foreign.push(outside);
        }
        for id in circuit.gate_ids() {
            if let Gate::And(inputs) = circuit.gate(id) {
                let nonempty: Vec<&GateId> = inputs
                    .iter()
                    .filter(|i| intervals[i.0].is_some() || foreign[i.0])
                    .collect();
                if nonempty.len() <= 1 {
                    continue;
                }
                // With a split to certify, a variable outside the vtree can
                // never be routed.
                if nonempty.iter().any(|i| foreign[i.0]) {
                    return Err(id);
                }
                let scopes: Vec<(u32, u32)> =
                    nonempty.iter().map(|i| intervals[i.0].unwrap()).collect();
                if !self.and_is_structured(&scopes) {
                    return Err(id);
                }
            }
        }
        Ok(())
    }

    /// Whether a collection of two or more pairwise-disjoint scopes (an AND
    /// gate's children, as leaf-index intervals) can be routed into this
    /// vtree.
    fn and_is_structured(&self, scopes: &[(u32, u32)]) -> bool {
        let union = scopes
            .iter()
            .fold((u32::MAX, 0u32), |(lo, hi), &(a, b)| (lo.min(a), hi.max(b)));
        let Some(root) = self.root else {
            return false;
        };
        if !span_contains(self.spans[root.0], union) {
            return false;
        }
        let lowest = self.lowest_covering(root, union);
        self.partition_scopes(lowest, scopes)
    }

    /// Descends from `from` to the lowest node whose span still contains
    /// `interval` (which must be contained in `from`'s span).
    fn lowest_covering(&self, from: VtreeId, interval: (u32, u32)) -> VtreeId {
        let mut node = from;
        loop {
            match self.nodes[node.0] {
                VtreeNode::Leaf(_) => return node,
                VtreeNode::Internal(l, r) => {
                    if span_contains(self.spans[l.0], interval) {
                        node = l;
                    } else if span_contains(self.spans[r.0], interval) {
                        node = r;
                    } else {
                        return node;
                    }
                }
            }
        }
    }

    /// Recursively checks that `scopes` (two or more intervals of non-empty,
    /// pairwise disjoint scopes whose union is covered by `node` but by
    /// neither child) split cleanly along `node` and, within each side,
    /// along its subtree.
    fn partition_scopes(&self, node: VtreeId, scopes: &[(u32, u32)]) -> bool {
        if scopes.len() <= 1 {
            return true;
        }
        let VtreeNode::Internal(l, r) = self.nodes[node.0] else {
            // Two or more disjoint non-empty scopes cannot sit under a leaf.
            return false;
        };
        let mut left: Vec<(u32, u32)> = Vec::new();
        let mut right: Vec<(u32, u32)> = Vec::new();
        for &s in scopes {
            if span_contains(self.spans[l.0], s) {
                left.push(s);
            } else if span_contains(self.spans[r.0], s) {
                right.push(s);
            } else {
                // A child scope straddles the split: not structured here.
                return false;
            }
        }
        for (side, child) in [(&left, l), (&right, r)] {
            if side.len() > 1 {
                let union = side
                    .iter()
                    .fold((u32::MAX, 0u32), |(lo, hi), &(a, b)| (lo.min(a), hi.max(b)));
                let lowest = self.lowest_covering(child, union);
                if !self.partition_scopes(lowest, side) {
                    return false;
                }
            }
        }
        true
    }
}

/// Whether the closed interval `inner` lies within the `[start, end)` span.
fn span_contains(span: (u32, u32), inner: (u32, u32)) -> bool {
    span.0 <= inner.0 && inner.1 < span.1
}

impl Default for Vtree {
    fn default() -> Self {
        Vtree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn right_linear_shape_and_scopes() {
        let vt = Vtree::right_linear(&[3, 1, 4]);
        assert_eq!(vt.node_count(), 5);
        assert_eq!(vt.variables(), [1, 3, 4].into_iter().collect());
        let root = vt.root().unwrap();
        let VtreeNode::Internal(l, r) = vt.node(root) else {
            panic!("root must be internal");
        };
        assert_eq!(vt.node(l), VtreeNode::Leaf(3));
        assert_eq!(vt.scope(r), [1, 4].into_iter().collect());
    }

    #[test]
    fn empty_and_singleton_vtrees() {
        let vt = Vtree::right_linear(&[]);
        assert!(vt.root().is_none());
        assert!(vt.variables().is_empty());
        let vt = Vtree::right_linear(&[7]);
        assert_eq!(vt.node(vt.root().unwrap()), VtreeNode::Leaf(7));
    }

    #[test]
    fn obdd_shaped_circuit_respects_right_linear_vtree() {
        // x0 AND (x1 OR (x1 AND x2)) nested in OBDD shape: the outer AND has
        // a multi-variable child {1, 2}.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let x2 = c.var(2);
        let inner_and = c.and(vec![x1, x2]);
        let inner = c.or(vec![x1, inner_and]);
        let outer = c.and(vec![x0, inner]);
        c.set_output(outer);
        assert!(Vtree::right_linear(&[0, 1, 2]).respects(&c).is_ok());
        // Under the order (1, 0, 2) the child scope {1, 2} straddles the
        // first split ({1} vs {0, 2}), so the outer AND is not structured.
        assert_eq!(Vtree::right_linear(&[1, 0, 2]).respects(&c), Err(outer));
    }

    #[test]
    fn straddling_and_gate_is_rejected() {
        // AND({0,2}, {1}): under the right-linear vtree on (0, 1, 2) the
        // first child straddles the 0-vs-rest and 1-vs-2 splits.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let x2 = c.var(2);
        let inner = c.and(vec![x0, x2]);
        let outer = c.and(vec![inner, x1]);
        c.set_output(outer);
        let vt = Vtree::right_linear(&[0, 1, 2]);
        // The inner AND has singleton child scopes (always routable); the
        // outer AND is the first offender.
        assert_eq!(vt.respects(&c), Err(outer));
        // A vtree pairing {0,2} against {1} accepts it.
        let mut vt = Vtree::new();
        let l0 = vt.leaf(0);
        let l2 = vt.leaf(2);
        let l1 = vt.leaf(1);
        let inner_v = vt.internal(l0, l2);
        let root = vt.internal(inner_v, l1);
        vt.set_root(root);
        assert!(vt.respects(&c).is_ok());
    }

    #[test]
    fn variable_outside_the_vtree_is_rejected() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x9 = c.var(9);
        let a = c.and(vec![x0, x9]);
        c.set_output(a);
        assert!(Vtree::right_linear(&[0, 9]).respects(&c).is_ok());
        assert_eq!(Vtree::right_linear(&[0, 1]).respects(&c), Err(a));
    }

    #[test]
    fn constants_and_single_child_ands_are_ignored() {
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let t = c.constant(true);
        let a = c.and(vec![x0, t]);
        c.set_output(a);
        assert!(Vtree::right_linear(&[0]).respects(&c).is_ok());
        // The checker certifies splits, so an AND with at most one
        // variable-bearing child is structured by any vtree — even the empty
        // one.
        assert!(Vtree::new().respects(&c).is_ok());
    }

    #[test]
    fn nary_and_needs_nested_splits() {
        // AND({0}, {1}, {2}) is structured by the right-linear vtree: split
        // {0} at the root, then {1} vs {2} below.
        let mut c = Circuit::new();
        let x0 = c.var(0);
        let x1 = c.var(1);
        let x2 = c.var(2);
        let a = c.and(vec![x0, x1, x2]);
        c.set_output(a);
        assert!(Vtree::right_linear(&[0, 1, 2]).respects(&c).is_ok());
        assert!(Vtree::right_linear(&[2, 1, 0]).respects(&c).is_ok());
    }

    #[test]
    #[should_panic]
    fn duplicate_leaf_variable_panics() {
        let mut vt = Vtree::new();
        let _ = vt.leaf(0);
        let _ = vt.leaf(0);
    }

    #[test]
    #[should_panic]
    fn non_adjacent_internal_spans_panic() {
        let mut vt = Vtree::new();
        let a = vt.leaf(0);
        let _b = vt.leaf(1);
        let c = vt.leaf(2);
        // 0 and 2 are not adjacent in leaf order (1 sits between them).
        let _ = vt.internal(a, c);
    }
}
