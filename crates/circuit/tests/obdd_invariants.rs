//! OBDD structural invariants (Definition 6.4): reducedness, agreement of
//! `evaluate_set` with `probability` at the all-1/2 valuation, and width
//! behaviour on the chain instances of `tests/end_to_end.rs`.

use std::collections::{BTreeSet, HashSet};
use treelineage::LineageBuilder;
use treelineage_circuit::{parity_circuit, threshold2_circuit, Obdd, Ref, VarId};
use treelineage_instance::{Instance, Signature};
use treelineage_num::Rational;
use treelineage_query::parse_query;

/// The chain instance R(i), S(i, i+1), T(i+1) for i < n (pathwidth 1), as in
/// `tests/end_to_end.rs` and the bench harness.
fn chain_instance(n: usize) -> (Signature, Instance) {
    let sig = Signature::builder()
        .relation("R", 1)
        .relation("S", 2)
        .relation("T", 1)
        .build();
    let mut inst = Instance::new(sig.clone());
    for i in 0..n as u64 {
        inst.add_fact_by_name("R", &[i]);
        inst.add_fact_by_name("S", &[i, i + 1]);
        inst.add_fact_by_name("T", &[i + 1]);
    }
    (sig, inst)
}

/// The OBDD of the chain query's lineage on the chain instance of length `n`.
fn chain_obdd(n: usize) -> Obdd {
    let (sig, inst) = chain_instance(n);
    let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
    LineageBuilder::new(&q, &inst).unwrap().obdd()
}

/// All internal nodes reachable from the root.
fn reachable_nodes(obdd: &Obdd) -> Vec<(Ref, (VarId, Ref, Ref))> {
    let mut seen: HashSet<Ref> = HashSet::new();
    let mut stack = vec![obdd.root()];
    let mut nodes = Vec::new();
    while let Some(r) = stack.pop() {
        if !seen.insert(r) {
            continue;
        }
        if let Some((var, lo, hi)) = obdd.decision_parts(r) {
            nodes.push((r, (var, lo, hi)));
            stack.push(lo);
            stack.push(hi);
        }
    }
    nodes
}

/// Reducedness: no redundant node (equal children) and no two distinct
/// reachable nodes with the same (variable, lo, hi) triple.
fn assert_reduced(obdd: &Obdd) {
    let nodes = reachable_nodes(obdd);
    let mut triples = HashSet::new();
    for (r, (var, lo, hi)) in &nodes {
        assert_ne!(lo, hi, "redundant node {r:?} on variable {var}");
        assert!(
            triples.insert((*var, *lo, *hi)),
            "duplicate node {r:?}: ({var}, {lo:?}, {hi:?}) appears twice"
        );
    }
    // Reachable nodes are also bounded by the reported size (the node table
    // may retain garbage from intermediate apply steps, never less).
    assert!(
        nodes.len() <= obdd.size() + 2,
        "more reachable nodes than size"
    );
}

#[test]
fn chain_and_formula_obdds_are_reduced() {
    for n in 1..=6 {
        assert_reduced(&chain_obdd(n));
    }
    for vars in [2usize, 4, 6, 8] {
        let order: Vec<VarId> = (0..vars).collect();
        assert_reduced(&Obdd::from_circuit(&parity_circuit(&order), order.clone()));
        assert_reduced(&Obdd::from_circuit(&threshold2_circuit(&order), order));
    }
}

#[test]
fn probability_at_all_one_half_counts_satisfying_sets() {
    for n in 1..=3 {
        let obdd = chain_obdd(n);
        let vars: Vec<VarId> = obdd.order().to_vec();
        // Enumerate the full truth table with evaluate_set.
        let mut satisfying = 0u64;
        for mask in 0u64..(1 << vars.len()) {
            let set: BTreeSet<VarId> = vars
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &v)| v)
                .collect();
            if obdd.evaluate_set(&set) {
                satisfying += 1;
            }
        }
        // At the all-1/2 valuation every world weighs 2^-k, so the
        // probability must be exactly (#satisfying sets) / 2^k.
        let p = obdd.probability(&|_| Rational::one_half());
        let expected = Rational::from_ratio_u64(satisfying, 1 << vars.len());
        assert_eq!(p, expected, "chain of length {n}");
        assert_eq!(obdd.count_models().to_u64(), Some(satisfying));
    }
}

#[test]
fn chain_obdd_width_is_constant_in_the_chain_length() {
    // Theorem 6.7 on pathwidth-1 instances: the OBDD width under the
    // decomposition-derived order is bounded by a constant independent of n.
    // Width may only be monotone in the instance *width*, never in its
    // length; on chains it must not grow at all.
    let widths: Vec<usize> = (1..=8).map(|n| chain_obdd(n).width()).collect();
    for (i, pair) in widths.windows(2).enumerate() {
        assert!(
            pair[1] <= pair[0].max(1),
            "width grew along the chain at n={}: {:?}",
            i + 2,
            widths
        );
    }
    let tail = widths.last().copied().unwrap();
    assert_eq!(
        tail, 1,
        "long chains must reach the constant width 1: {widths:?}"
    );
    // Sizes stay linear: size(n) <= size(1) * n (no blow-up in length).
    let sizes: Vec<usize> = (1..=8).map(|n| chain_obdd(n).size()).collect();
    for (i, &s) in sizes.iter().enumerate() {
        assert!(
            s <= sizes[0] * (i + 1),
            "superlinear OBDD size on chains: {sizes:?}"
        );
    }
}
