//! Topological minors and embeddings (Definition 4.3 of the paper).
//!
//! An embedding of `H` in `G` maps vertices of `H` injectively to vertices of
//! `G` and edges of `H` to vertex-disjoint paths of `G` between the images of
//! their endpoints. The paper uses the polynomial grid-minor theorem of
//! Chekuri and Chuzhoy \[10\] (Lemma 4.4) to extract degree-3 planar topological
//! minors from any graph of sufficiently large treewidth. Reimplementing that
//! extractor is out of scope (see DESIGN.md §2); instead we provide:
//!
//! * a backtracking embedding search adequate for the small gadgets used in
//!   tests (it is exact: if it reports an embedding, the minor relation
//!   holds, and the embedding is verified);
//! * explicit embeddings of grids and subdivided ("skewed") grids inside grid
//!   instances, which is what the OBDD-width and matching-counting
//!   experiments actually exercise.

use crate::graph::{Graph, Vertex};
use std::collections::BTreeSet;

/// An embedding of a graph `H` into a graph `G`: an injective vertex map and,
/// for every edge of `H`, an internally vertex-disjoint path of `G`.
#[derive(Clone, Debug)]
pub struct Embedding {
    /// `vertex_map[v]` is the image in `G` of vertex `v` of `H`.
    pub vertex_map: Vec<Vertex>,
    /// For each edge of `H` (in the order of `H.edges()`), the path in `G`
    /// realizing it, as a vertex sequence starting and ending at the images
    /// of its endpoints.
    pub paths: Vec<Vec<Vertex>>,
}

impl Embedding {
    /// Verifies that this embedding witnesses `H` as a topological minor of `G`:
    /// the vertex map is injective, every path connects the right images using
    /// edges of `G`, and all paths are vertex-disjoint except at shared branch
    /// vertices (endpoints).
    pub fn verify(&self, h: &Graph, g: &Graph) -> Result<(), String> {
        if self.vertex_map.len() != h.vertex_count() {
            return Err("vertex map has wrong length".into());
        }
        let image: BTreeSet<Vertex> = self.vertex_map.iter().copied().collect();
        if image.len() != self.vertex_map.len() {
            return Err("vertex map not injective".into());
        }
        let h_edges = h.edges();
        if self.paths.len() != h_edges.len() {
            return Err("wrong number of paths".into());
        }
        let mut used_internal: BTreeSet<Vertex> = BTreeSet::new();
        for (edge, path) in h_edges.iter().zip(&self.paths) {
            if path.len() < 2 {
                return Err("path too short".into());
            }
            let expected_ends = [self.vertex_map[edge.u], self.vertex_map[edge.v]];
            let actual_ends = [path[0], *path.last().unwrap()];
            if !(actual_ends == expected_ends
                || actual_ends == [expected_ends[1], expected_ends[0]])
            {
                return Err("path endpoints do not match edge endpoints".into());
            }
            for w in path.windows(2) {
                if !g.has_edge(w[0], w[1]) {
                    return Err(format!("path uses non-edge ({}, {})", w[0], w[1]));
                }
            }
            // Internal vertices must be fresh: not branch vertices, not used
            // by another path.
            for &v in &path[1..path.len() - 1] {
                if image.contains(&v) {
                    return Err(format!("path passes through branch vertex {v}"));
                }
                if !used_internal.insert(v) {
                    return Err(format!("vertex {v} used by two paths"));
                }
            }
            // A path must be simple.
            let distinct: BTreeSet<Vertex> = path.iter().copied().collect();
            if distinct.len() != path.len() {
                return Err("path is not simple".into());
            }
        }
        Ok(())
    }
}

/// Searches for an embedding of `H` into `G` witnessing that `H` is a
/// topological minor of `G`. Backtracking over branch-vertex placements and
/// shortest-path routing through unused vertices: exact but exponential, so
/// only suitable for small `H` and moderate `G` (the call is bounded by
/// `budget` backtracking steps; `None` may therefore mean "not found within
/// budget" for adversarial inputs, and tests use generous budgets on inputs
/// where existence is known).
pub fn find_topological_minor(h: &Graph, g: &Graph, budget: usize) -> Option<Embedding> {
    let mut searcher = Searcher {
        h,
        g,
        budget,
        steps: 0,
    };
    let mut vertex_map: Vec<Option<Vertex>> = vec![None; h.vertex_count()];
    let mut used: Vec<bool> = vec![false; g.vertex_count()];
    searcher.place_vertices(0, &mut vertex_map, &mut used)
}

struct Searcher<'a> {
    h: &'a Graph,
    g: &'a Graph,
    budget: usize,
    steps: usize,
}

impl<'a> Searcher<'a> {
    fn place_vertices(
        &mut self,
        next: usize,
        vertex_map: &mut Vec<Option<Vertex>>,
        used: &mut Vec<bool>,
    ) -> Option<Embedding> {
        if self.steps > self.budget {
            return None;
        }
        self.steps += 1;
        if next == self.h.vertex_count() {
            // All branch vertices placed; route the edges.
            let map: Vec<Vertex> = vertex_map.iter().map(|v| v.unwrap()).collect();
            let mut path_used = used.clone();
            let mut paths = Vec::new();
            if self.route_edges(0, &map, &mut path_used, &mut paths) {
                return Some(Embedding {
                    vertex_map: map,
                    paths,
                });
            }
            return None;
        }
        // Candidate images: any unused vertex of G with degree at least the
        // degree of the H-vertex.
        let needed_degree = self.h.degree(next);
        for candidate in 0..self.g.vertex_count() {
            if used[candidate] || self.g.degree(candidate) < needed_degree {
                continue;
            }
            vertex_map[next] = Some(candidate);
            used[candidate] = true;
            if let Some(found) = self.place_vertices(next + 1, vertex_map, used) {
                return Some(found);
            }
            vertex_map[next] = None;
            used[candidate] = false;
        }
        None
    }

    fn route_edges(
        &mut self,
        edge_index: usize,
        map: &[Vertex],
        used: &mut Vec<bool>,
        paths: &mut Vec<Vec<Vertex>>,
    ) -> bool {
        if self.steps > self.budget {
            return false;
        }
        self.steps += 1;
        let edges = self.h.edges();
        if edge_index == edges.len() {
            return true;
        }
        let e = edges[edge_index];
        let from = map[e.u];
        let to = map[e.v];
        // Enumerate simple paths from `from` to `to` through unused vertices
        // (shortest first, via iterative deepening up to a modest bound).
        for max_len in 1..=6usize {
            let mut path = vec![from];
            if self.try_path(from, to, max_len, used, &mut path, map, paths, edge_index) {
                return true;
            }
        }
        false
    }

    #[allow(clippy::too_many_arguments)]
    fn try_path(
        &mut self,
        current: Vertex,
        target: Vertex,
        remaining: usize,
        used: &mut Vec<bool>,
        path: &mut Vec<Vertex>,
        map: &[Vertex],
        paths: &mut Vec<Vec<Vertex>>,
        edge_index: usize,
    ) -> bool {
        if self.steps > self.budget {
            return false;
        }
        self.steps += 1;
        if current == target {
            paths.push(path.clone());
            if self.route_edges(edge_index + 1, map, used, paths) {
                return true;
            }
            paths.pop();
            return false;
        }
        if remaining == 0 {
            return false;
        }
        let neighbors: Vec<Vertex> = self.g.neighbors(current).collect();
        for v in neighbors {
            if v == target {
                path.push(v);
                if self.try_path(v, target, remaining - 1, used, path, map, paths, edge_index) {
                    return true;
                }
                path.pop();
            } else if !used[v] {
                used[v] = true;
                path.push(v);
                if self.try_path(v, target, remaining - 1, used, path, map, paths, edge_index) {
                    return true;
                }
                path.pop();
                used[v] = false;
            }
        }
        false
    }
}

/// The explicit embedding of the `k x k` grid inside the `n x n` grid for
/// `k <= n`: branch vertices are the top-left `k x k` corner, edges map to
/// single grid edges. Used by the lower-bound experiments, which run on grid
/// families where minor extraction is trivial (DESIGN.md §2).
pub fn grid_in_grid_embedding(k: usize, n: usize) -> Option<Embedding> {
    if k > n || k == 0 {
        return None;
    }
    let h = crate::generators::grid_graph(k, k);
    let vertex_map: Vec<Vertex> = (0..k * k).map(|v| (v / k) * n + (v % k)).collect();
    let paths = h
        .edges()
        .iter()
        .map(|e| vec![vertex_map[e.u], vertex_map[e.v]])
        .collect();
    Some(Embedding { vertex_map, paths })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_is_topological_minor_of_k4() {
        let h = generators::cycle_graph(3);
        let g = generators::complete_graph(4);
        let emb = find_topological_minor(&h, &g, 100_000).expect("embedding exists");
        assert!(emb.verify(&h, &g).is_ok());
    }

    #[test]
    fn triangle_is_topological_minor_of_subdivided_triangle() {
        let h = generators::cycle_graph(3);
        let g = generators::subdivide(&h, 2);
        let emb = find_topological_minor(&h, &g, 500_000).expect("embedding exists");
        assert!(emb.verify(&h, &g).is_ok());
        // At least one path must have internal vertices.
        assert!(emb.paths.iter().any(|p| p.len() > 2));
    }

    #[test]
    fn k4_not_minor_of_tree() {
        let h = generators::complete_graph(4);
        let g = generators::balanced_binary_tree(15);
        assert!(find_topological_minor(&h, &g, 200_000).is_none());
    }

    #[test]
    fn triangle_not_minor_of_path() {
        let h = generators::cycle_graph(3);
        let g = generators::path_graph(10);
        assert!(find_topological_minor(&h, &g, 200_000).is_none());
    }

    #[test]
    fn grid_in_grid_embedding_is_valid() {
        for (k, n) in [(2usize, 4usize), (3, 5), (3, 3)] {
            let emb = grid_in_grid_embedding(k, n).unwrap();
            let h = generators::grid_graph(k, k);
            let g = generators::grid_graph(n, n);
            assert!(emb.verify(&h, &g).is_ok(), "k={k}, n={n}");
        }
        assert!(grid_in_grid_embedding(5, 3).is_none());
    }

    #[test]
    fn embedding_verification_rejects_bad_embeddings() {
        let h = generators::path_graph(2);
        let g = generators::path_graph(3);
        // Wrong: claims an edge between the two endpoints of the path of
        // length 2 directly.
        let bad = Embedding {
            vertex_map: vec![0, 2],
            paths: vec![vec![0, 2]],
        };
        assert!(bad.verify(&h, &g).is_err());
        let good = Embedding {
            vertex_map: vec![0, 2],
            paths: vec![vec![0, 1, 2]],
        };
        assert!(good.verify(&h, &g).is_ok());
    }

    #[test]
    fn degree3_minor_in_high_treewidth_graph() {
        // Lemma 4.4's qualitative content at test scale: the 4-vertex cycle
        // (a degree-2 planar graph) embeds in a 4x4 grid.
        let h = generators::cycle_graph(4);
        let g = generators::grid_graph(4, 4);
        let emb = find_topological_minor(&h, &g, 2_000_000).expect("embedding exists");
        assert!(emb.verify(&h, &g).is_ok());
    }
}
