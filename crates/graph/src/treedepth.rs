//! Tree-depth and elimination forests (Definition 9.1 of the paper).
//!
//! An elimination forest of a graph `G` is a forest `F` on the vertices of
//! `G` such that every edge of `G` connects an ancestor–descendant pair
//! in `F`; the tree-depth of `G` is the minimum height of such a forest.
//! Section 9 shows that unfoldings of ranked instances under inversion-free
//! UCQs have tree-depth at most `arity(σ)`, hence bounded pathwidth and
//! treewidth (pathwidth ≤ tree-depth − 1, \[5\] / Lemma 11 as cited).

use crate::graph::{Graph, Vertex};
use std::collections::BTreeSet;

/// A rooted forest on the vertices of a graph, represented by parent pointers
/// (`None` for roots).
#[derive(Clone, Debug)]
pub struct EliminationForest {
    parent: Vec<Option<Vertex>>,
}

impl EliminationForest {
    /// Builds a forest from parent pointers. Panics if the pointers contain a
    /// cycle.
    pub fn new(parent: Vec<Option<Vertex>>) -> Self {
        let forest = EliminationForest { parent };
        for v in 0..forest.parent.len() {
            // Walking to the root must terminate.
            let mut seen = BTreeSet::new();
            let mut cur = v;
            while let Some(p) = forest.parent[cur] {
                assert!(seen.insert(cur), "cycle in elimination forest");
                cur = p;
            }
        }
        forest
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.parent.len()
    }

    /// The parent of `v`, or `None` if `v` is a root.
    pub fn parent(&self, v: Vertex) -> Option<Vertex> {
        self.parent[v]
    }

    /// Depth of `v`: number of vertices on the path from `v` to its root
    /// (so roots have depth 1).
    pub fn depth(&self, v: Vertex) -> usize {
        let mut d = 1;
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the forest: maximum depth of any vertex (0 for the empty forest).
    pub fn height(&self) -> usize {
        (0..self.parent.len())
            .map(|v| self.depth(v))
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if `a` is an ancestor of `b` or vice versa (or `a == b`).
    pub fn related(&self, a: Vertex, b: Vertex) -> bool {
        self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }

    fn is_ancestor(&self, a: Vertex, b: Vertex) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.parent[cur] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Checks that this forest is a valid elimination forest of `g`: every
    /// edge of `g` connects an ancestor–descendant pair.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.parent.len() < g.vertex_count() {
            return Err("forest smaller than graph".into());
        }
        for e in g.edges() {
            if !self.related(e.u, e.v) {
                return Err(format!(
                    "edge ({}, {}) does not connect ancestor and descendant",
                    e.u, e.v
                ));
            }
        }
        Ok(())
    }

    /// Converts the elimination forest into a path decomposition of width
    /// `height - 1`: one bag per vertex containing the vertex together with
    /// all its ancestors, in depth-first order. Witnesses
    /// `pathwidth(G) <= treedepth(G) - 1`.
    pub fn to_path_bags(&self) -> Vec<BTreeSet<Vertex>> {
        // Depth-first order over the forest.
        let n = self.parent.len();
        let mut children: Vec<Vec<Vertex>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for v in 0..n {
            match self.parent[v] {
                Some(p) => children[p].push(v),
                None => roots.push(v),
            }
        }
        let mut bags = Vec::with_capacity(n);
        let mut stack: Vec<Vertex> = roots.into_iter().rev().collect();
        while let Some(v) = stack.pop() {
            let mut bag = BTreeSet::new();
            let mut cur = v;
            bag.insert(cur);
            while let Some(p) = self.parent[cur] {
                bag.insert(p);
                cur = p;
            }
            bags.push(bag);
            for &c in children[v].iter().rev() {
                stack.push(c);
            }
        }
        bags
    }
}

/// Exact tree-depth of `g` by the recursive characterization
/// (`td(G) = 1 + min over v of td(G - v)` for connected `G`, max over
/// components otherwise), with memoization on vertex subsets. Exponential;
/// panics above 20 vertices.
pub fn treedepth_exact(g: &Graph) -> usize {
    let n = g.vertex_count();
    assert!(n <= 20, "exact tree-depth limited to 20 vertices");
    if n == 0 {
        return 0;
    }
    let full: u32 = (1u32 << n) - 1;
    let mut memo: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    td_rec(g, full, &mut memo)
}

fn td_rec(g: &Graph, mask: u32, memo: &mut std::collections::HashMap<u32, usize>) -> usize {
    if mask == 0 {
        return 0;
    }
    if let Some(&v) = memo.get(&mask) {
        return v;
    }
    // Split into connected components within the mask.
    let components = components_in_mask(g, mask);
    let result = if components.len() > 1 {
        components
            .into_iter()
            .map(|c| td_rec(g, c, memo))
            .max()
            .unwrap()
    } else if mask.count_ones() == 1 {
        1
    } else {
        let mut best = usize::MAX;
        let mut bits = mask;
        while bits != 0 {
            let v = bits.trailing_zeros();
            bits &= bits - 1;
            let rest = mask & !(1u32 << v);
            best = best.min(1 + td_rec(g, rest, memo));
            if best == 1 {
                break;
            }
        }
        best
    };
    memo.insert(mask, result);
    result
}

fn components_in_mask(g: &Graph, mask: u32) -> Vec<u32> {
    let mut remaining = mask;
    let mut out = Vec::new();
    while remaining != 0 {
        let start = remaining.trailing_zeros() as usize;
        let mut comp: u32 = 1 << start;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for v in g.neighbors(u) {
                let bit = 1u32 << v;
                if mask & bit != 0 && comp & bit == 0 {
                    comp |= bit;
                    stack.push(v);
                }
            }
        }
        out.push(comp);
        remaining &= !comp;
    }
    out
}

/// A heuristic elimination forest built by recursively removing a vertex of
/// maximum degree (balanced separator would be better; this is good enough
/// for an upper bound — the experiments that need an exact value use
/// [`treedepth_exact`] or a forest given by construction, e.g. the unfolding
/// of Theorem 9.7 carries its own elimination forest).
pub fn treedepth_upper_bound(g: &Graph) -> (usize, EliminationForest) {
    let n = g.vertex_count();
    let mut parent: Vec<Option<Vertex>> = vec![None; n];
    let all: Vec<Vertex> = (0..n).collect();
    build_forest(g, &all, None, &mut parent);
    let forest = EliminationForest::new(parent);
    (forest.height(), forest)
}

fn build_forest(
    g: &Graph,
    vertices: &[Vertex],
    parent_vertex: Option<Vertex>,
    parent: &mut Vec<Option<Vertex>>,
) {
    if vertices.is_empty() {
        return;
    }
    // Split vertices into connected components of the induced subgraph.
    let vertex_set: BTreeSet<Vertex> = vertices.iter().copied().collect();
    let mut seen: BTreeSet<Vertex> = BTreeSet::new();
    for &start in vertices {
        if seen.contains(&start) {
            continue;
        }
        let mut comp = vec![start];
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(u) = stack.pop() {
            for v in g.neighbors(u) {
                if vertex_set.contains(&v) && seen.insert(v) {
                    comp.push(v);
                    stack.push(v);
                }
            }
        }
        // Pick the vertex of maximum degree within the component as the root.
        let root = *comp
            .iter()
            .max_by_key(|&&v| g.neighbors(v).filter(|u| vertex_set.contains(u)).count())
            .unwrap();
        parent[root] = parent_vertex;
        let rest: Vec<Vertex> = comp.into_iter().filter(|&v| v != root).collect();
        build_forest(g, &rest, Some(root), parent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::treewidth;

    #[test]
    fn treedepth_of_simple_graphs() {
        assert_eq!(treedepth_exact(&generators::path_graph(1)), 1);
        assert_eq!(treedepth_exact(&generators::path_graph(2)), 2);
        assert_eq!(treedepth_exact(&generators::path_graph(3)), 2);
        assert_eq!(treedepth_exact(&generators::path_graph(4)), 3);
        // td(P_n) = ceil(log2(n+1))
        assert_eq!(treedepth_exact(&generators::path_graph(7)), 3);
        assert_eq!(treedepth_exact(&generators::path_graph(8)), 4);
        assert_eq!(treedepth_exact(&generators::complete_graph(5)), 5);
        assert_eq!(treedepth_exact(&generators::star_graph(6)), 2);
        assert_eq!(treedepth_exact(&generators::cycle_graph(4)), 3);
    }

    #[test]
    fn treedepth_of_disconnected_graph_is_max_of_components() {
        let g = generators::path_graph(4).disjoint_union(&generators::complete_graph(3));
        assert_eq!(treedepth_exact(&g), 3);
    }

    #[test]
    fn heuristic_upper_bound_dominates_exact_and_is_valid() {
        for seed in 0..4 {
            let g = generators::random_graph(10, 0.3, seed + 20);
            let exact = treedepth_exact(&g);
            let (ub, forest) = treedepth_upper_bound(&g);
            assert!(ub >= exact, "ub {ub} < exact {exact}");
            assert!(forest.validate(&g).is_ok());
            assert_eq!(forest.height(), ub);
        }
    }

    #[test]
    fn elimination_forest_validation_detects_bad_forests() {
        let g = generators::path_graph(3); // edges 0-1, 1-2

        // A star rooted at 0 with children 1 and 2: fine for the star graph
        // (edges 0-1, 0-2) but invalid for the path, whose edge (1, 2)
        // connects two siblings.
        let forest = EliminationForest::new(vec![None, Some(0), Some(0)]);
        assert!(forest.validate(&generators::star_graph(2)).is_ok());
        assert!(forest.validate(&g).is_err());
    }

    #[test]
    fn elimination_forest_validation_rejects_unrelated_edge() {
        // Graph with edge (1, 2); forest where 1 and 2 are siblings.
        let mut g = Graph::new(3);
        g.add_edge(1, 2);
        let forest = EliminationForest::new(vec![None, Some(0), Some(0)]);
        assert!(forest.validate(&g).is_err());
    }

    #[test]
    fn forest_height_and_depth() {
        // Chain 0 <- 1 <- 2 (2's parent is 1, 1's parent is 0).
        let f = EliminationForest::new(vec![None, Some(0), Some(1)]);
        assert_eq!(f.depth(0), 1);
        assert_eq!(f.depth(2), 3);
        assert_eq!(f.height(), 3);
        assert!(f.related(0, 2));
        assert!(f.related(2, 1));
        assert!(f.related(1, 2));
    }

    #[test]
    fn path_bags_from_forest_give_valid_path_decomposition() {
        let g = generators::balanced_binary_tree(15);
        let (h, forest) = treedepth_upper_bound(&g);
        let bags = forest.to_path_bags();
        let pd = crate::decomposition::TreeDecomposition::path_from_bags(bags);
        assert!(pd.validate(&g).is_ok());
        assert!(pd.is_path());
        assert!(pd.width() < h);
    }

    #[test]
    fn pathwidth_below_treedepth() {
        for seed in 0..3 {
            let g = generators::random_graph(9, 0.3, seed + 55);
            let td = treedepth_exact(&g);
            let pw = treewidth::pathwidth_exact(&g);
            assert!(pw < td || td == 0, "pw {pw} td {td}");
        }
    }

    #[test]
    #[should_panic]
    fn cyclic_parent_pointers_panic() {
        let _ = EliminationForest::new(vec![Some(1), Some(0)]);
    }
}
