//! Graph generators for the instance families used throughout the paper.
//!
//! The experiments need bounded-treewidth families (paths, trees, k-trees and
//! their partial subgraphs), unbounded-treewidth families (grids, cliques,
//! complete bipartite graphs), planar {1,3}-regular and 3-regular graphs
//! (Sections 4 and 5 reduce from hard problems on those), and subdivisions
//! (the hard queries must be invariant under subdivision).

use crate::graph::{Graph, Vertex};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Path graph `P_n` on `n` vertices (`n - 1` edges). Treewidth 1 for `n >= 2`.
pub fn path_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// Cycle graph `C_n` on `n >= 3` vertices. Treewidth 2.
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = path_graph(n);
    g.add_edge(n - 1, 0);
    g
}

/// Star graph: one center (vertex 0) joined to `leaves` leaves. Treewidth 1.
pub fn star_graph(leaves: usize) -> Graph {
    let mut g = Graph::new(leaves + 1);
    for i in 1..=leaves {
        g.add_edge(0, i);
    }
    g
}

/// Complete graph `K_n`. Treewidth `n - 1`.
pub fn complete_graph(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            g.add_edge(i, j);
        }
    }
    g
}

/// Complete bipartite graph `K_{a,b}` with parts `0..a` and `a..a+b`.
/// Treewidth `min(a, b)`. Proposition 8.9 builds its easy instance family
/// from complete bipartite graphs.
pub fn complete_bipartite_graph(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for i in 0..a {
        for j in 0..b {
            g.add_edge(i, a + j);
        }
    }
    g
}

/// The `rows x cols` grid graph. Treewidth `min(rows, cols)`; the canonical
/// unbounded-treewidth planar family (Sections 4, 5, 8).
pub fn grid_graph(rows: usize, cols: usize) -> Graph {
    grid_graph_with_coords(rows, cols).0
}

/// Like [`grid_graph`], also returning the (row, column) coordinates of every
/// vertex. Vertex `r * cols + c` sits at row `r`, column `c`.
pub fn grid_graph_with_coords(rows: usize, cols: usize) -> (Graph, Vec<(usize, usize)>) {
    let mut g = Graph::new(rows * cols);
    let mut coords = Vec::with_capacity(rows * cols);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            coords.push((r, c));
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    (g, coords)
}

/// A balanced binary tree with `n` vertices (vertex `i` has children `2i+1`,
/// `2i+2`). Treewidth 1.
pub fn balanced_binary_tree(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i, (i - 1) / 2);
    }
    g
}

/// A uniformly random labelled tree on `n` vertices (via a random Prüfer-like
/// attachment: vertex `i` attaches to a uniformly random earlier vertex).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(i, parent);
    }
    g
}

/// A `k`-tree on `n >= k + 1` vertices: start from `K_{k+1}` and repeatedly
/// attach a new vertex to a random existing `k`-clique. Treewidth exactly `k`.
/// Returns the graph together with, for each vertex `v >= k + 1`, the clique
/// it was attached to (useful to build a width-`k` tree decomposition
/// directly).
pub fn k_tree(n: usize, k: usize, seed: u64) -> (Graph, Vec<Vec<Vertex>>) {
    assert!(n > k, "a k-tree needs at least k+1 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = complete_graph(k + 1);
    g.ensure_vertices(n);
    // All k-cliques we may attach to; start with the k+1 subsets of the base.
    let mut cliques: Vec<Vec<Vertex>> = (0..=k)
        .map(|skip| (0..=k).filter(|&x| x != skip).collect())
        .collect();
    let mut attachments = Vec::with_capacity(n.saturating_sub(k + 1));
    for v in (k + 1)..n {
        let clique = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &clique {
            g.add_edge(v, u);
        }
        // New k-cliques: v together with each (k-1)-subset of the chosen clique.
        for skip in 0..clique.len() {
            let mut c: Vec<Vertex> = clique
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &u)| u)
                .collect();
            c.push(v);
            cliques.push(c);
        }
        attachments.push(clique);
    }
    (g, attachments)
}

/// A random partial `k`-tree: a `k`-tree with each edge kept independently
/// with probability `keep_probability`. Treewidth at most `k`; the canonical
/// bounded-treewidth benchmark family.
pub fn random_partial_k_tree(n: usize, k: usize, keep_probability: f64, seed: u64) -> Graph {
    let (full, _) = k_tree(n, k, seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9E3779B97F4A7C15));
    let mut g = Graph::new(n);
    for e in full.edges() {
        if rng.gen_bool(keep_probability) {
            g.add_edge(e.u, e.v);
        }
    }
    g
}

/// The ladder graph `L_n`: two paths of length `n` joined by rungs. Planar,
/// 2-/3-regular internally, treewidth 2. Vertex `2i` is on the top rail,
/// `2i + 1` on the bottom rail.
pub fn ladder_graph(n: usize) -> Graph {
    assert!(n >= 1);
    let mut g = Graph::new(2 * n);
    for i in 0..n {
        g.add_edge(2 * i, 2 * i + 1);
        if i + 1 < n {
            g.add_edge(2 * i, 2 * (i + 1));
            g.add_edge(2 * i + 1, 2 * (i + 1) + 1);
        }
    }
    g
}

/// The circular ladder (prism) graph `CL_n` for `n >= 3`: a ladder closed into
/// a cycle. It is 3-regular and planar — the family of hard inputs for
/// matching counting in Theorem 4.2 (\[52\] shows #Matchings is #P-hard on
/// 3-regular planar graphs).
pub fn circular_ladder_graph(n: usize) -> Graph {
    assert!(n >= 3, "a prism needs at least 3 rungs");
    let mut g = ladder_graph(n);
    g.add_edge(2 * (n - 1), 0);
    g.add_edge(2 * (n - 1) + 1, 1);
    g
}

/// The Möbius–Kantor-style ladder: like the circular ladder but with the
/// closing edges crossed. 3-regular (not planar for all n); used to vary the
/// matching-counting inputs.
pub fn moebius_ladder_graph(n: usize) -> Graph {
    assert!(n >= 3);
    let mut g = ladder_graph(n);
    g.add_edge(2 * (n - 1), 1);
    g.add_edge(2 * (n - 1) + 1, 0);
    g
}

/// A planar {1,3}-regular graph (every vertex has degree 1 or 3), as used by
/// Lemma 5.3: a circular ladder with a pendant edge attached to a subdivision
/// of one rung, keeping planarity. `n` is the number of rungs of the base
/// prism.
pub fn planar_one_three_regular(n: usize) -> Graph {
    // Subdivide one rung of the prism with a degree-2 vertex, then attach a
    // pendant to it: the subdivision vertex becomes degree 3 and the pendant
    // has degree 1; all other vertices keep degree 3.
    let mut g = circular_ladder_graph(n);
    let mid = g.add_vertex();
    let pendant = g.add_vertex();
    g.remove_edge(0, 1);
    g.add_edge(0, mid);
    g.add_edge(mid, 1);
    g.add_edge(mid, pendant);
    g
}

/// Subdivision of a graph: replaces every edge by a simple path with
/// `extra_per_edge` fresh internal vertices (so `extra_per_edge = 0` returns
/// an isomorphic copy). Definitions 4.3 / Lemma 5.3 need hard queries to be
/// invariant under subdivision.
pub fn subdivide(g: &Graph, extra_per_edge: usize) -> Graph {
    let mut out = Graph::new(g.vertex_count());
    for e in g.edges() {
        if extra_per_edge == 0 {
            out.add_edge(e.u, e.v);
            continue;
        }
        let mut prev = e.u;
        for _ in 0..extra_per_edge {
            let mid = out.add_vertex();
            out.add_edge(prev, mid);
            prev = mid;
        }
        out.add_edge(prev, e.v);
    }
    out
}

/// A random graph in the Erdős–Rényi `G(n, p)` model (used to produce
/// arbitrary-treewidth instances for the "any instance" rows of Table 2).
pub fn random_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// A random 3-regular (cubic) graph on an even number of vertices via the
/// pairing model with rejection (retries until simple). Not necessarily
/// planar; used to stress the matching-counting reduction beyond the planar
/// families.
pub fn random_cubic_graph(n: usize, seed: u64) -> Graph {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "cubic graphs need an even n >= 4"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let mut points: Vec<usize> = (0..3 * n).collect();
        points.shuffle(&mut rng);
        let mut g = Graph::new(n);
        let mut ok = true;
        for pair in points.chunks(2) {
            let (a, b) = (pair[0] / 3, pair[1] / 3);
            if a == b || g.has_edge(a, b) {
                ok = false;
                break;
            }
            g.add_edge(a, b);
        }
        if ok && g.is_k_regular(3) {
            return g;
        }
    }
}

/// The "skewed grid" family used in the proof of Lemma 8.2: an `n x n` grid
/// where each horizontal edge is subdivided once. We expose it for the OBDD
/// width experiments.
pub fn skewed_grid(n: usize) -> Graph {
    let (base, coords) = grid_graph_with_coords(n, n);
    let mut g = Graph::new(base.vertex_count());
    for e in base.edges() {
        let (r1, c1) = coords[e.u];
        let (r2, c2) = coords[e.v];
        if r1 == r2 && c1.abs_diff(c2) == 1 {
            // Horizontal edge: subdivide.
            let mid = g.add_vertex();
            g.add_edge(e.u, mid);
            g.add_edge(mid, e.v);
        } else {
            g.add_edge(e.u, e.v);
        }
    }
    g
}

/// A caterpillar tree: a path of `spine` vertices, each with `legs` pendant
/// leaves. Pathwidth 1; used for the bounded-pathwidth experiments.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let mut g = path_graph(spine);
    for s in 0..spine {
        for _ in 0..legs {
            let leaf = g.add_vertex();
            g.add_edge(s, leaf);
        }
    }
    g
}

/// A random graph generated to have moderate treewidth but high connectivity:
/// the union of `layers` random perfect matchings on `n` vertices plus a
/// Hamiltonian cycle. Used as a treewidth-constructible unbounded family.
pub fn expander_like(n: usize, layers: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = cycle_graph(n.max(3));
    for _ in 0..layers {
        let mut perm: Vec<usize> = (0..g.vertex_count()).collect();
        perm.shuffle(&mut rng);
        for pair in perm.chunks(2) {
            if pair.len() == 2 && pair[0] != pair[1] && !g.has_edge(pair[0], pair[1]) {
                g.add_edge(pair[0], pair[1]);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_cycle() {
        let p = path_graph(5);
        assert_eq!(p.edge_count(), 4);
        assert!(p.is_tree());
        let c = cycle_graph(5);
        assert_eq!(c.edge_count(), 5);
        assert!(c.has_cycle());
        assert!(c.is_k_regular(2));
    }

    #[test]
    fn star_and_complete() {
        let s = star_graph(4);
        assert_eq!(s.degree(0), 4);
        assert!(s.is_tree());
        let k = complete_graph(6);
        assert_eq!(k.edge_count(), 15);
        assert!(k.is_k_regular(5));
    }

    #[test]
    fn complete_bipartite() {
        let g = complete_bipartite_graph(3, 4);
        assert_eq!(g.edge_count(), 12);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
        for i in 0..3 {
            assert_eq!(g.degree(i), 4);
        }
        for j in 3..7 {
            assert_eq!(g.degree(j), 3);
        }
    }

    #[test]
    fn grid_structure() {
        let (g, coords) = grid_graph_with_coords(3, 4);
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(coords[5], (1, 1));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 4));
        assert!(!g.has_edge(3, 4)); // row wrap-around must not exist
    }

    #[test]
    fn trees_are_trees() {
        assert!(balanced_binary_tree(15).is_tree());
        for seed in 0..5 {
            let t = random_tree(20, seed);
            assert!(t.is_tree());
            assert_eq!(t.edge_count(), 19);
        }
    }

    #[test]
    fn k_tree_properties() {
        let (g, attachments) = k_tree(12, 3, 7);
        assert_eq!(attachments.len(), 12 - 4);
        // Every vertex beyond the base clique has degree >= k.
        for v in 4..12 {
            assert!(g.degree(v) >= 3);
        }
        // Each attachment clique is indeed a clique in the graph.
        for clique in &attachments {
            assert_eq!(clique.len(), 3);
            for i in 0..clique.len() {
                for j in i + 1..clique.len() {
                    assert!(g.has_edge(clique[i], clique[j]));
                }
            }
        }
    }

    #[test]
    fn partial_k_tree_is_subgraph() {
        let g = random_partial_k_tree(30, 2, 0.7, 3);
        assert_eq!(g.vertex_count(), 30);
        let (full, _) = k_tree(30, 2, 3);
        for e in g.edges() {
            assert!(full.has_edge(e.u, e.v));
        }
    }

    #[test]
    fn ladders_and_prisms() {
        let l = ladder_graph(4);
        assert_eq!(l.vertex_count(), 8);
        assert_eq!(l.edge_count(), 4 + 2 * 3);
        let p = circular_ladder_graph(5);
        assert!(p.is_k_regular(3));
        assert_eq!(p.vertex_count(), 10);
        assert_eq!(p.edge_count(), 15);
        let m = moebius_ladder_graph(5);
        assert!(m.is_k_regular(3));
    }

    #[test]
    fn one_three_regular_is_one_three_regular() {
        let g = planar_one_three_regular(4);
        assert!(g.is_set_regular(&[1, 3]));
        // Exactly one degree-1 vertex (the pendant).
        let pendants = g.vertices().filter(|&v| g.degree(v) == 1).count();
        assert_eq!(pendants, 1);
    }

    #[test]
    fn subdivision_preserves_structure() {
        let g = cycle_graph(4);
        let s = subdivide(&g, 2);
        assert_eq!(s.vertex_count(), 4 + 2 * 4);
        assert_eq!(s.edge_count(), 3 * 4);
        assert!(s.is_k_regular(2)); // a subdivided cycle is a longer cycle
        assert!(s.has_cycle());
        let same = subdivide(&g, 0);
        assert_eq!(same.edge_count(), g.edge_count());
    }

    #[test]
    fn cubic_random_graph_is_cubic() {
        let g = random_cubic_graph(10, 42);
        assert!(g.is_k_regular(3));
        assert_eq!(g.vertex_count(), 10);
    }

    #[test]
    fn random_graph_seeded_is_deterministic() {
        let a = random_graph(15, 0.3, 9);
        let b = random_graph(15, 0.3, 9);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn skewed_grid_subdivides_horizontals() {
        let g = skewed_grid(3);
        // 3x3 grid: 9 original vertices, 6 horizontal edges subdivided.
        assert_eq!(g.vertex_count(), 9 + 6);
        assert_eq!(g.edge_count(), 6 * 2 + 6); // subdivided horizontals + verticals
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(4, 2);
        assert_eq!(g.vertex_count(), 4 + 8);
        assert!(g.is_tree());
        assert_eq!(g.degree(0), 3); // one path neighbor + two legs
    }

    #[test]
    fn expander_like_connected() {
        let g = expander_like(20, 3, 5);
        assert!(g.is_connected());
        assert!(g.edge_count() >= 20);
    }
}
