//! Exact counting of combinatorial structures used as reduction sources.
//!
//! * **Matchings** (edge subsets with no two incident edges): counting them is
//!   #P-hard on 3-regular planar graphs \[52\], and Theorem 4.2 reduces from
//!   this problem. We provide a brute-force counter (oracle for tests) and a
//!   linear-time dynamic program over a tree decomposition (the tractable
//!   counterpart on treelike inputs, and the reference value for the
//!   probability-evaluation reduction experiment D-4.2b).
//! * **Independent sets**, counted by the same kind of DP; used as an extra
//!   MSO-definable match-counting workload (Theorem 5.7 experiments).
//! * **Hamiltonian cycles**, counted by brute force on small graphs
//!   (Theorem 5.7 reduces from counting them on planar 3-regular graphs
//!   \[41\]).

use crate::decomposition::TreeDecomposition;
use crate::graph::{Graph, Vertex};
use crate::nice::{NiceNode, NiceTreeDecomposition};
use crate::treewidth;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use treelineage_num::BigUint;

/// Counts all matchings of `g` (including the empty matching) by brute-force
/// enumeration of edge subsets. Exponential; panics above 25 edges.
pub fn count_matchings_bruteforce(g: &Graph) -> BigUint {
    let edges = g.edges();
    assert!(
        edges.len() <= 25,
        "brute-force matching count limited to 25 edges"
    );
    let mut count = 0u64;
    for mask in 0u64..(1u64 << edges.len()) {
        let chosen: Vec<_> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, e)| *e)
            .collect();
        if g.is_matching(&chosen) {
            count += 1;
        }
    }
    BigUint::from_u64(count)
}

/// Counts all matchings of `g` by dynamic programming over a (nice) tree
/// decomposition: linear in the number of decomposition nodes for fixed
/// width. Works on any graph for which a decomposition can be computed.
pub fn count_matchings(g: &Graph) -> BigUint {
    let (_, td) = treewidth::treewidth_upper_bound(g);
    count_matchings_with_decomposition(g, &td)
}

/// Like [`count_matchings`] but with a caller-provided decomposition.
pub fn count_matchings_with_decomposition(g: &Graph, td: &TreeDecomposition) -> BigUint {
    let nice = NiceTreeDecomposition::from_tree_decomposition(td);
    // Assign every edge of g to a unique node of the nice decomposition whose
    // bag contains both endpoints (the lowest such node in post-order).
    let order = nice.post_order();
    let mut edge_owner: BTreeMap<(Vertex, Vertex), usize> = BTreeMap::new();
    for &node in &order {
        let bag = nice.bag(node);
        for &u in bag {
            for &v in bag {
                if u < v && g.has_edge(u, v) {
                    edge_owner.entry((u, v)).or_insert(node);
                }
            }
        }
    }
    // DP state at a node: map from "matched subset of the bag" -> number of
    // matchings of the edges assigned in the subtree, where exactly the
    // vertices in the subset are matched among bag vertices.
    // Represent bag subsets as sorted Vec<Vertex>.
    type State = BTreeMap<Vec<Vertex>, BigUint>;
    let mut states: Vec<State> = vec![State::new(); nice.node_count()];
    for &node in &order {
        let bag = nice.bag(node);
        let state = match nice.node(node) {
            NiceNode::Leaf => {
                let mut s = State::new();
                s.insert(Vec::new(), BigUint::one());
                s
            }
            NiceNode::Introduce { vertex, child } => {
                // The new vertex starts unmatched; then we may use edges
                // assigned to this node that involve it (or not involve it).
                let mut s = State::new();
                for (matched, count) in &states[*child] {
                    s.entry(matched.clone())
                        .and_modify(|c| *c += count)
                        .or_insert_with(|| count.clone());
                }
                let _ = vertex;
                // Process the edges owned by this node.
                apply_owned_edges(g, &edge_owner, node, bag, &mut s);
                s
            }
            NiceNode::Forget { vertex, child } => {
                // Drop the forgotten vertex from the matched subsets (whether
                // it was matched or not no longer matters).
                let mut s = State::new();
                for (matched, count) in &states[*child] {
                    let reduced: Vec<Vertex> =
                        matched.iter().copied().filter(|&v| v != *vertex).collect();
                    s.entry(reduced)
                        .and_modify(|c| *c += count)
                        .or_insert_with(|| count.clone());
                }
                apply_owned_edges(g, &edge_owner, node, bag, &mut s);
                s
            }
            NiceNode::Join { left, right } => {
                // Combine: matched subsets must be disjoint (a bag vertex can
                // be matched in at most one side).
                let mut s = State::new();
                for (ml, cl) in &states[*left] {
                    let ml_set: BTreeSet<Vertex> = ml.iter().copied().collect();
                    for (mr, cr) in &states[*right] {
                        if mr.iter().any(|v| ml_set.contains(v)) {
                            continue;
                        }
                        let mut merged: Vec<Vertex> = ml.iter().chain(mr.iter()).copied().collect();
                        merged.sort_unstable();
                        let prod = cl * cr;
                        s.entry(merged).and_modify(|c| *c += &prod).or_insert(prod);
                    }
                }
                apply_owned_edges(g, &edge_owner, node, bag, &mut s);
                s
            }
        };
        states[node] = state;
    }
    let mut total = BigUint::zero();
    for count in states[nice.root()].values() {
        total += count;
    }
    total
}

/// Extends a matching DP state with the edges assigned to `node`: each such
/// edge may be left out, or added if neither endpoint is already matched.
fn apply_owned_edges(
    g: &Graph,
    edge_owner: &BTreeMap<(Vertex, Vertex), usize>,
    node: usize,
    bag: &BTreeSet<Vertex>,
    state: &mut BTreeMap<Vec<Vertex>, BigUint>,
) {
    let owned: Vec<(Vertex, Vertex)> = bag
        .iter()
        .flat_map(|&u| bag.iter().map(move |&v| (u, v)))
        .filter(|&(u, v)| u < v && g.has_edge(u, v))
        .filter(|key| edge_owner.get(key) == Some(&node))
        .collect();
    for (u, v) in owned {
        let mut additions: Vec<(Vec<Vertex>, BigUint)> = Vec::new();
        for (matched, count) in state.iter() {
            if matched.contains(&u) || matched.contains(&v) {
                continue;
            }
            let mut extended = matched.clone();
            extended.push(u);
            extended.push(v);
            extended.sort_unstable();
            additions.push((extended, count.clone()));
        }
        for (key, count) in additions {
            state
                .entry(key)
                .and_modify(|c| *c += &count)
                .or_insert(count);
        }
    }
}

/// Counts independent sets (including the empty set) by brute force.
/// Panics above 25 vertices.
pub fn count_independent_sets_bruteforce(g: &Graph) -> BigUint {
    let n = g.vertex_count();
    assert!(
        n <= 25,
        "brute-force independent set count limited to 25 vertices"
    );
    let mut count = 0u64;
    'outer: for mask in 0u64..(1u64 << n) {
        for e in g.edges() {
            if mask >> e.u & 1 == 1 && mask >> e.v & 1 == 1 {
                continue 'outer;
            }
        }
        count += 1;
    }
    BigUint::from_u64(count)
}

/// Counts independent sets by DP over a tree decomposition (linear for
/// bounded width).
pub fn count_independent_sets(g: &Graph) -> BigUint {
    let (_, td) = treewidth::treewidth_upper_bound(g);
    let nice = NiceTreeDecomposition::from_tree_decomposition(&td);
    let order = nice.post_order();
    // State: map from "selected subset of the bag" (must be independent
    // within the bag w.r.t. edges seen so far) to count.
    type State = HashMap<Vec<Vertex>, BigUint>;
    let mut states: Vec<State> = vec![State::new(); nice.node_count()];
    for &node in &order {
        let state = match nice.node(node) {
            NiceNode::Leaf => {
                let mut s = State::new();
                s.insert(Vec::new(), BigUint::one());
                s
            }
            NiceNode::Introduce { vertex, child } => {
                let mut s = State::new();
                for (sel, count) in &states[*child] {
                    // Not selecting the new vertex.
                    s.entry(sel.clone())
                        .and_modify(|c| *c += count)
                        .or_insert_with(|| count.clone());
                    // Selecting it, if compatible with the current selection.
                    if sel.iter().all(|&u| !g.has_edge(u, *vertex)) {
                        let mut extended = sel.clone();
                        extended.push(*vertex);
                        extended.sort_unstable();
                        s.entry(extended)
                            .and_modify(|c| *c += count)
                            .or_insert_with(|| count.clone());
                    }
                }
                s
            }
            NiceNode::Forget { vertex, child } => {
                let mut s = State::new();
                for (sel, count) in &states[*child] {
                    let reduced: Vec<Vertex> =
                        sel.iter().copied().filter(|&v| v != *vertex).collect();
                    s.entry(reduced)
                        .and_modify(|c| *c += count)
                        .or_insert_with(|| count.clone());
                }
                s
            }
            NiceNode::Join { left, right } => {
                let mut s = State::new();
                for (sl, cl) in &states[*left] {
                    for (sr, cr) in &states[*right] {
                        if sl == sr {
                            let prod = cl * cr;
                            s.entry(sl.clone())
                                .and_modify(|c| *c += &prod)
                                .or_insert(prod);
                        }
                    }
                }
                s
            }
        };
        states[node] = state;
    }
    let mut total = BigUint::zero();
    for count in states[nice.root()].values() {
        total += count;
    }
    // Vertices that never appear in any bag (isolated vertices) can be freely
    // selected or not: multiply by 2 for each.
    let covered: BTreeSet<Vertex> = (0..nice.node_count())
        .flat_map(|n| nice.bag(n).iter().copied())
        .collect();
    let isolated = g.vertices().filter(|v| !covered.contains(v)).count();
    for _ in 0..isolated {
        total = &total * &BigUint::from_u64(2);
    }
    total
}

/// Counts Hamiltonian cycles of `g` by brute-force permutation search
/// (each cycle counted once, regardless of orientation and starting vertex).
/// Panics above 12 vertices.
pub fn count_hamiltonian_cycles_bruteforce(g: &Graph) -> BigUint {
    let n = g.vertex_count();
    assert!(
        n <= 12,
        "brute-force Hamiltonian cycle count limited to 12 vertices"
    );
    if n < 3 {
        return BigUint::zero();
    }
    // Fix vertex 0 as the start; enumerate permutations of the rest; divide by
    // 2 at the end for the two orientations.
    let rest: Vec<Vertex> = (1..n).collect();
    let mut count = 0u64;
    permute(&rest, &mut Vec::new(), &mut |perm| {
        let mut prev = 0;
        for &v in perm {
            if !g.has_edge(prev, v) {
                return;
            }
            prev = v;
        }
        if g.has_edge(prev, 0) {
            count += 1;
        }
    });
    BigUint::from_u64(count / 2)
}

fn permute(remaining: &[Vertex], prefix: &mut Vec<Vertex>, f: &mut impl FnMut(&[Vertex])) {
    if remaining.is_empty() {
        f(prefix);
        return;
    }
    for i in 0..remaining.len() {
        let mut rest = remaining.to_vec();
        let v = rest.remove(i);
        prefix.push(v);
        permute(&rest, prefix, f);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    #[allow(clippy::needless_range_loop)] // `n` is both the graph size and the index
    fn matchings_of_paths_are_fibonacci() {
        // #matchings(P_n with n vertices) = Fibonacci(n+1) with F(1)=F(2)=1.
        let expected = [1u64, 1, 2, 3, 5, 8, 13, 21, 34];
        for n in 1..=8 {
            let g = generators::path_graph(n);
            assert_eq!(
                count_matchings_bruteforce(&g).to_u64(),
                Some(expected[n]),
                "path with {n} vertices"
            );
            assert_eq!(count_matchings(&g).to_u64(), Some(expected[n]));
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `n` is both the graph size and the index
    fn matchings_of_cycles() {
        // #matchings(C_n) = Lucas number L_n.
        let lucas = [0u64, 0, 0, 4, 7, 11, 18, 29, 47];
        for n in 3..=8 {
            let g = generators::cycle_graph(n);
            assert_eq!(count_matchings_bruteforce(&g).to_u64(), Some(lucas[n]));
            assert_eq!(count_matchings(&g).to_u64(), Some(lucas[n]));
        }
    }

    #[test]
    fn matchings_dp_matches_bruteforce_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::random_graph(8, 0.4, seed);
            if g.edge_count() > 25 {
                continue;
            }
            assert_eq!(
                count_matchings(&g).to_u64(),
                count_matchings_bruteforce(&g).to_u64(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matchings_dp_on_three_regular_planar_graphs() {
        for n in 3..=6 {
            let g = generators::circular_ladder_graph(n);
            if g.edge_count() <= 25 {
                assert_eq!(
                    count_matchings(&g).to_u64(),
                    count_matchings_bruteforce(&g).to_u64()
                );
            }
        }
    }

    #[test]
    fn matchings_dp_handles_larger_treelike_graphs() {
        // A long path is treewidth 1; the DP handles sizes far beyond brute force.
        let g = generators::path_graph(60);
        let count = count_matchings(&g);
        // Fibonacci(61): known value.
        assert_eq!(count.to_decimal_string(), "2504730781961");
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `n` is both the graph size and the index
    fn independent_sets_of_paths() {
        // #IS(P_n) = Fibonacci(n+2).
        let expected = [1u64, 2, 3, 5, 8, 13, 21, 34, 55];
        for n in 1..=8 {
            let g = generators::path_graph(n);
            assert_eq!(
                count_independent_sets_bruteforce(&g).to_u64(),
                Some(expected[n]),
            );
            assert_eq!(count_independent_sets(&g).to_u64(), Some(expected[n]));
        }
    }

    #[test]
    fn independent_sets_dp_matches_bruteforce() {
        for seed in 0..5 {
            let g = generators::random_graph(9, 0.35, seed + 33);
            assert_eq!(
                count_independent_sets(&g).to_u64(),
                count_independent_sets_bruteforce(&g).to_u64()
            );
        }
    }

    #[test]
    fn hamiltonian_cycles_of_small_graphs() {
        assert_eq!(
            count_hamiltonian_cycles_bruteforce(&generators::cycle_graph(5)).to_u64(),
            Some(1)
        );
        assert_eq!(
            count_hamiltonian_cycles_bruteforce(&generators::complete_graph(4)).to_u64(),
            Some(3)
        );
        assert_eq!(
            count_hamiltonian_cycles_bruteforce(&generators::complete_graph(5)).to_u64(),
            Some(12)
        );
        assert_eq!(
            count_hamiltonian_cycles_bruteforce(&generators::path_graph(5)).to_u64(),
            Some(0)
        );
        // The triangular prism (circular ladder with 3 rungs) has 3
        // Hamiltonian cycles.
        assert_eq!(
            count_hamiltonian_cycles_bruteforce(&generators::circular_ladder_graph(3)).to_u64(),
            Some(3)
        );
    }
}
