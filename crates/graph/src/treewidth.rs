//! Treewidth and pathwidth computation.
//!
//! Computing treewidth exactly is NP-hard, so we provide:
//! * construction of a tree decomposition from an *elimination ordering*
//!   (the textbook fill-in procedure),
//! * the min-degree and min-fill heuristics, which are what the library uses
//!   by default (every decomposition is validated, so a heuristic result is
//!   always a *correct* decomposition, just possibly not of optimal width),
//! * an exact exponential dynamic program over vertex subsets for small
//!   graphs (used by tests and by the experiments that need the true
//!   treewidth of a gadget),
//! * the degeneracy lower bound,
//! * analogous machinery for pathwidth via vertex separation orderings.
//!
//! Note: bounded-treewidth *families* in the experiments (partial k-trees,
//! paths, caterpillars, grids-by-columns) come with constructive
//! decompositions from their generators, so the heuristics here are a
//! convenience, not a correctness requirement — this mirrors the paper, where
//! instances of treewidth ≤ k are assumed given and a decomposition can be
//! computed in linear time by Bodlaender's algorithm (which we do not
//! reimplement; see DESIGN.md §2).

use crate::decomposition::TreeDecomposition;
use crate::graph::{Graph, Vertex};
use std::collections::{BTreeSet, HashMap};

/// Builds a tree decomposition from an elimination ordering using the
/// standard fill-in procedure. The resulting decomposition is always valid;
/// its width is the maximum elimination degree encountered.
pub fn decomposition_from_elimination_order(g: &Graph, order: &[Vertex]) -> TreeDecomposition {
    assert_eq!(
        order.len(),
        g.vertex_count(),
        "elimination order must mention every vertex exactly once"
    );
    let n = g.vertex_count();
    let mut position = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        assert!(position[v] == usize::MAX, "duplicate vertex in order");
        position[v] = i;
    }
    // Work on a copy of the adjacency structure to add fill edges.
    let mut adjacency: Vec<BTreeSet<Vertex>> = (0..n).map(|v| g.neighbor_set(v).clone()).collect();
    let mut bags: Vec<BTreeSet<Vertex>> = Vec::with_capacity(n);
    for &v in order {
        // Later neighbors of v in the (filled) graph.
        let later: Vec<Vertex> = adjacency[v]
            .iter()
            .copied()
            .filter(|&u| position[u] > position[v])
            .collect();
        let mut bag: BTreeSet<Vertex> = later.iter().copied().collect();
        bag.insert(v);
        bags.push(bag);
        // Add fill edges among the later neighbors.
        for i in 0..later.len() {
            for j in i + 1..later.len() {
                adjacency[later[i]].insert(later[j]);
                adjacency[later[j]].insert(later[i]);
            }
        }
    }
    let mut td = TreeDecomposition::new();
    let mut bag_id = vec![0; n];
    for (i, bag) in bags.iter().enumerate() {
        bag_id[order[i]] = td.add_bag(bag.clone());
    }
    // Connect the bag of v to the bag of its earliest-eliminated later
    // neighbor (the standard clique-tree construction); vertices with no
    // later neighbor connect to the next bag in order so the tree stays
    // connected.
    for (i, &v) in order.iter().enumerate() {
        let later_min = bags[i]
            .iter()
            .copied()
            .filter(|&u| u != v)
            .min_by_key(|&u| position[u]);
        match later_min {
            Some(u) => td.add_tree_edge(bag_id[v], bag_id[u]),
            None => {
                if i + 1 < n {
                    td.add_tree_edge(bag_id[v], bag_id[order[i + 1]]);
                }
            }
        }
    }
    td
}

/// The min-degree heuristic: repeatedly eliminate a vertex of minimum degree
/// in the current fill graph. Returns the elimination ordering.
pub fn min_degree_order(g: &Graph) -> Vec<Vertex> {
    elimination_heuristic(g, |adj, remaining| {
        remaining
            .iter()
            .copied()
            .min_by_key(|&v| adj[v].iter().filter(|u| remaining.contains(u)).count())
            .unwrap()
    })
}

/// The min-fill heuristic: repeatedly eliminate the vertex whose elimination
/// adds the fewest fill edges. Returns the elimination ordering.
pub fn min_fill_order(g: &Graph) -> Vec<Vertex> {
    elimination_heuristic(g, |adj, remaining| {
        remaining
            .iter()
            .copied()
            .min_by_key(|&v| {
                let neighbors: Vec<Vertex> = adj[v]
                    .iter()
                    .copied()
                    .filter(|u| remaining.contains(u))
                    .collect();
                let mut fill = 0usize;
                for i in 0..neighbors.len() {
                    for j in i + 1..neighbors.len() {
                        if !adj[neighbors[i]].contains(&neighbors[j]) {
                            fill += 1;
                        }
                    }
                }
                fill
            })
            .unwrap()
    })
}

fn elimination_heuristic<F>(g: &Graph, mut pick: F) -> Vec<Vertex>
where
    F: FnMut(&[BTreeSet<Vertex>], &BTreeSet<Vertex>) -> Vertex,
{
    let n = g.vertex_count();
    let mut adjacency: Vec<BTreeSet<Vertex>> = (0..n).map(|v| g.neighbor_set(v).clone()).collect();
    let mut remaining: BTreeSet<Vertex> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let v = pick(&adjacency, &remaining);
        let neighbors: Vec<Vertex> = adjacency[v]
            .iter()
            .copied()
            .filter(|u| remaining.contains(u))
            .collect();
        for i in 0..neighbors.len() {
            for j in i + 1..neighbors.len() {
                adjacency[neighbors[i]].insert(neighbors[j]);
                adjacency[neighbors[j]].insert(neighbors[i]);
            }
        }
        remaining.remove(&v);
        order.push(v);
    }
    order
}

/// Upper bound on treewidth together with a witnessing decomposition, taking
/// the better of the min-degree and min-fill heuristics.
pub fn treewidth_upper_bound(g: &Graph) -> (usize, TreeDecomposition) {
    let candidates = [min_degree_order(g), min_fill_order(g)];
    let mut best: Option<(usize, TreeDecomposition)> = None;
    for order in candidates {
        let td = decomposition_from_elimination_order(g, &order);
        let w = td.width();
        if best.as_ref().map(|(bw, _)| w < *bw).unwrap_or(true) {
            best = Some((w, td));
        }
    }
    best.expect("at least one heuristic ran")
}

/// The degeneracy of the graph (maximum over subgraphs of the minimum
/// degree); a lower bound on treewidth.
pub fn degeneracy(g: &Graph) -> usize {
    let n = g.vertex_count();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut best = 0;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| !removed[v])
            .min_by_key(|&v| degree[v])
            .unwrap();
        best = best.max(degree[v]);
        removed[v] = true;
        for u in g.neighbors(v) {
            if !removed[u] {
                degree[u] -= 1;
            }
        }
    }
    best
}

/// Exact treewidth by dynamic programming over vertex subsets (the classic
/// `O*(2^n)` elimination-ordering DP). Panics if the graph has more than 24
/// vertices — use the heuristics above for larger graphs.
pub fn treewidth_exact(g: &Graph) -> usize {
    let n = g.vertex_count();
    assert!(n <= 24, "exact treewidth limited to 24 vertices");
    if n == 0 {
        return 0;
    }
    // q(v, S) = number of vertices outside S ∪ {v} adjacent to v or reachable
    // from v through S: the elimination degree of v when S was eliminated
    // before it.
    let q = |v: usize, s: u32| -> usize {
        let mut seen: u32 = 1 << v;
        let mut stack = vec![v];
        let mut count = 0usize;
        let mut counted: u32 = 0;
        while let Some(u) = stack.pop() {
            for w in g.neighbors(u) {
                let bit = 1u32 << w;
                if seen & bit != 0 {
                    continue;
                }
                seen |= bit;
                if s & bit != 0 {
                    stack.push(w);
                } else if counted & bit == 0 {
                    counted |= bit;
                    count += 1;
                }
            }
        }
        count
    };
    // dp[S] = minimum over elimination orderings of S (eliminated first) of
    // the maximum elimination degree.
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut dp: HashMap<u32, usize> = HashMap::with_capacity(1 << n.min(22));
    dp.insert(0, 0);
    // Process subsets in increasing popcount order.
    let mut subsets: Vec<u32> = (0..=full).collect();
    subsets.sort_by_key(|s| s.count_ones());
    for s in subsets {
        if s == 0 {
            continue;
        }
        let mut best = usize::MAX;
        let mut bits = s;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let prev = s & !(1u32 << v);
            let sub = dp[&prev];
            let cost = sub.max(q(v, prev));
            best = best.min(cost);
        }
        dp.insert(s, best);
    }
    dp[&full]
}

/// Builds a path decomposition from a linear vertex layout: bag `i` contains
/// `order[i]` together with every earlier vertex that still has a neighbor at
/// or after position `i`. Its width is the vertex separation of the layout.
pub fn path_decomposition_from_layout(g: &Graph, order: &[Vertex]) -> TreeDecomposition {
    assert_eq!(order.len(), g.vertex_count());
    let n = g.vertex_count();
    let mut position = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        position[v] = i;
    }
    let mut bags = Vec::with_capacity(n);
    for i in 0..n {
        let mut bag: BTreeSet<Vertex> = BTreeSet::new();
        bag.insert(order[i]);
        for (j, &u) in order.iter().enumerate().take(i) {
            let _ = j;
            if g.neighbors(u).any(|w| position[w] >= i) {
                bag.insert(u);
            }
        }
        bags.push(bag);
    }
    TreeDecomposition::path_from_bags(bags)
}

/// Pathwidth upper bound: best of the identity, BFS, and min-degree layouts.
pub fn pathwidth_upper_bound(g: &Graph) -> (usize, TreeDecomposition) {
    let n = g.vertex_count();
    let identity: Vec<Vertex> = (0..n).collect();
    let mut bfs = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        seen[start] = true;
        while let Some(u) = queue.pop_front() {
            bfs.push(u);
            for v in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    let candidates = [identity, bfs, min_degree_order(g)];
    let mut best: Option<(usize, TreeDecomposition)> = None;
    for order in candidates {
        let pd = path_decomposition_from_layout(g, &order);
        let w = pd.width();
        if best.as_ref().map(|(bw, _)| w < *bw).unwrap_or(true) {
            best = Some((w, pd));
        }
    }
    best.expect("at least one layout ran")
}

/// Exact pathwidth by dynamic programming over vertex subsets (vertex
/// separation formulation). Panics above 22 vertices.
pub fn pathwidth_exact(g: &Graph) -> usize {
    let n = g.vertex_count();
    assert!(n <= 22, "exact pathwidth limited to 22 vertices");
    if n == 0 {
        return 0;
    }
    let full: u32 = (1u32 << n) - 1;
    // boundary(S) = vertices in S with a neighbor outside S.
    let boundary = |s: u32| -> usize {
        let mut count = 0;
        let mut bits = s;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if g.neighbors(v).any(|u| s & (1u32 << u) == 0) {
                count += 1;
            }
        }
        count
    };
    // dp[S] = minimal over layouts placing S first of the maximum boundary
    // size over all prefixes; forward DP extending prefixes one vertex at a
    // time (in increasing popcount order so predecessors are final).
    let mut dp: Vec<usize> = vec![usize::MAX; (full as usize) + 1];
    dp[0] = 0;
    let mut order: Vec<u32> = (0..=full).collect();
    order.sort_by_key(|s| s.count_ones());
    for s in order {
        if dp[s as usize] == usize::MAX {
            continue;
        }
        let cost_so_far = dp[s as usize];
        for v in 0..n {
            let bit = 1u32 << v;
            if s & bit != 0 {
                continue;
            }
            let next = s | bit;
            let cost = cost_so_far.max(boundary(next));
            if cost < dp[next as usize] {
                dp[next as usize] = cost;
            }
        }
    }
    // The vertex separation equals the pathwidth.
    dp[full as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn elimination_decomposition_is_valid_on_small_graphs() {
        for g in [
            generators::path_graph(6),
            generators::cycle_graph(6),
            generators::complete_graph(5),
            generators::grid_graph(3, 3),
            generators::random_graph(10, 0.4, 1),
        ] {
            let order = min_degree_order(&g);
            let td = decomposition_from_elimination_order(&g, &order);
            assert!(td.validate(&g).is_ok(), "invalid decomposition");
        }
    }

    #[test]
    fn heuristics_match_known_treewidths() {
        // Path: tw 1, cycle: tw 2, K5: tw 4 — min-fill is exact on these.
        assert_eq!(treewidth_upper_bound(&generators::path_graph(8)).0, 1);
        assert_eq!(treewidth_upper_bound(&generators::cycle_graph(8)).0, 2);
        assert_eq!(treewidth_upper_bound(&generators::complete_graph(5)).0, 4);
        assert_eq!(treewidth_upper_bound(&generators::star_graph(7)).0, 1);
    }

    #[test]
    fn exact_treewidth_small_graphs() {
        assert_eq!(treewidth_exact(&generators::path_graph(5)), 1);
        assert_eq!(treewidth_exact(&generators::cycle_graph(5)), 2);
        assert_eq!(treewidth_exact(&generators::complete_graph(6)), 5);
        assert_eq!(treewidth_exact(&generators::grid_graph(3, 3)), 3);
        assert_eq!(treewidth_exact(&generators::grid_graph(2, 5)), 2);
        assert_eq!(
            treewidth_exact(&generators::complete_bipartite_graph(3, 3)),
            3
        );
        assert_eq!(treewidth_exact(&generators::star_graph(6)), 1);
    }

    #[test]
    fn exact_treewidth_of_k_tree_is_k() {
        let (g, _) = generators::k_tree(9, 3, 11);
        assert_eq!(treewidth_exact(&g), 3);
    }

    #[test]
    fn heuristic_upper_bound_dominates_exact() {
        for seed in 0..5 {
            let g = generators::random_graph(10, 0.35, seed);
            let exact = treewidth_exact(&g);
            let (ub, td) = treewidth_upper_bound(&g);
            assert!(ub >= exact);
            assert!(td.validate(&g).is_ok());
            assert!(degeneracy(&g) <= exact);
        }
    }

    #[test]
    fn degeneracy_examples() {
        assert_eq!(degeneracy(&generators::path_graph(5)), 1);
        assert_eq!(degeneracy(&generators::complete_graph(5)), 4);
        assert_eq!(degeneracy(&generators::grid_graph(3, 3)), 2);
    }

    #[test]
    fn path_decomposition_from_layout_is_valid() {
        let g = generators::grid_graph(3, 5);
        let order: Vec<usize> = (0..g.vertex_count()).collect();
        let pd = path_decomposition_from_layout(&g, &order);
        assert!(pd.is_path());
        assert!(pd.validate(&g).is_ok());
        // Row-major layout of an r x c grid has vertex separation about c
        // (here 5), so bags contain at most c + 1 vertices.
        assert!(pd.width() <= 5 + 1);
    }

    #[test]
    fn pathwidth_examples() {
        assert_eq!(pathwidth_exact(&generators::path_graph(6)), 1);
        assert_eq!(pathwidth_exact(&generators::cycle_graph(6)), 2);
        assert_eq!(pathwidth_exact(&generators::complete_graph(5)), 4);
        // Caterpillars have pathwidth 1.
        assert_eq!(pathwidth_exact(&generators::caterpillar(4, 2)), 1);
        // Complete binary tree of height 3 has pathwidth 2.
        assert_eq!(pathwidth_exact(&generators::balanced_binary_tree(15)), 2);
    }

    #[test]
    fn pathwidth_upper_bound_dominates_exact() {
        for seed in 0..4 {
            let g = generators::random_graph(9, 0.3, seed + 100);
            let exact = pathwidth_exact(&g);
            let (ub, pd) = pathwidth_upper_bound(&g);
            assert!(ub >= exact);
            assert!(pd.validate(&g).is_ok());
            assert!(pd.is_path());
        }
    }

    #[test]
    fn pathwidth_at_least_treewidth() {
        for seed in 0..4 {
            let g = generators::random_graph(9, 0.35, seed + 7);
            assert!(pathwidth_exact(&g) >= treewidth_exact(&g));
        }
    }
}
