//! Nice tree decompositions.
//!
//! Dynamic programming over tree decompositions (the engine behind
//! Theorem 3.2 and all of Section 6) is much easier to state over *nice*
//! decompositions, where every node is one of:
//!
//! * a **leaf** with an empty bag,
//! * an **introduce** node: bag = child's bag plus one new vertex,
//! * a **forget** node: bag = child's bag minus one vertex,
//! * a **join** node: two children with the same bag as the node.
//!
//! The root has an empty bag. Any tree decomposition of width `k` can be
//! converted into a nice one of the same width with `O(k · n)` nodes, which
//! is what [`NiceTreeDecomposition::from_tree_decomposition`] does.

use crate::decomposition::TreeDecomposition;
use crate::graph::{Graph, Vertex};
use std::collections::BTreeSet;

/// Identifier of a node in a [`NiceTreeDecomposition`].
pub type NiceNodeId = usize;

/// The kind of a node in a nice tree decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NiceNode {
    /// A leaf with an empty bag.
    Leaf,
    /// Introduces `vertex` on top of `child`.
    Introduce {
        /// The introduced vertex (present in this bag, absent in the child's).
        vertex: Vertex,
        /// The unique child node.
        child: NiceNodeId,
    },
    /// Forgets `vertex` from `child`.
    Forget {
        /// The forgotten vertex (absent from this bag, present in the child's).
        vertex: Vertex,
        /// The unique child node.
        child: NiceNodeId,
    },
    /// Joins two children with identical bags.
    Join {
        /// Left child.
        left: NiceNodeId,
        /// Right child.
        right: NiceNodeId,
    },
}

/// A nice tree decomposition, rooted, with bags stored per node.
#[derive(Clone, Debug)]
pub struct NiceTreeDecomposition {
    nodes: Vec<NiceNode>,
    bags: Vec<BTreeSet<Vertex>>,
    root: NiceNodeId,
}

impl NiceTreeDecomposition {
    /// The root node (its bag is empty).
    pub fn root(&self) -> NiceNodeId {
        self.root
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node of the given id.
    pub fn node(&self, id: NiceNodeId) -> &NiceNode {
        &self.nodes[id]
    }

    /// The bag of the given node.
    pub fn bag(&self, id: NiceNodeId) -> &BTreeSet<Vertex> {
        &self.bags[id]
    }

    /// Width of the decomposition (max bag size - 1; 0 if all bags are empty).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Nodes in post-order (children before parents); the natural order for
    /// bottom-up dynamic programming.
    pub fn post_order(&self) -> Vec<NiceNodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
                continue;
            }
            stack.push((node, true));
            match self.nodes[node] {
                NiceNode::Leaf => {}
                NiceNode::Introduce { child, .. } | NiceNode::Forget { child, .. } => {
                    stack.push((child, false));
                }
                NiceNode::Join { left, right } => {
                    stack.push((left, false));
                    stack.push((right, false));
                }
            }
        }
        order
    }

    /// Structural validation: child bags relate to parent bags as required,
    /// the root bag is empty, and the result is a valid tree decomposition of
    /// `g` (every edge covered by some bag, occurrence sets connected — the
    /// latter holds by construction, the former is checked explicitly).
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if !self.bags[self.root].is_empty() {
            return Err("root bag is not empty".into());
        }
        for (id, node) in self.nodes.iter().enumerate() {
            match node {
                NiceNode::Leaf => {
                    if !self.bags[id].is_empty() {
                        return Err(format!("leaf {id} has a non-empty bag"));
                    }
                }
                NiceNode::Introduce { vertex, child } => {
                    let mut expected = self.bags[*child].clone();
                    if !expected.insert(*vertex) {
                        return Err(format!("introduce {id}: vertex already in child bag"));
                    }
                    if expected != self.bags[id] {
                        return Err(format!("introduce {id}: bag mismatch"));
                    }
                }
                NiceNode::Forget { vertex, child } => {
                    let mut expected = self.bags[*child].clone();
                    if !expected.remove(vertex) {
                        return Err(format!("forget {id}: vertex not in child bag"));
                    }
                    if expected != self.bags[id] {
                        return Err(format!("forget {id}: bag mismatch"));
                    }
                }
                NiceNode::Join { left, right } => {
                    if self.bags[*left] != self.bags[id] || self.bags[*right] != self.bags[id] {
                        return Err(format!("join {id}: children bags differ from node bag"));
                    }
                }
            }
        }
        // Every vertex with an edge must be introduced somewhere, and every
        // edge must be inside some bag.
        for e in g.edges() {
            if !self
                .bags
                .iter()
                .any(|b| b.contains(&e.u) && b.contains(&e.v))
            {
                return Err(format!("edge ({}, {}) not covered", e.u, e.v));
            }
        }
        Ok(())
    }

    /// For every vertex, the (unique) topmost forget node for that vertex —
    /// i.e. the node where DP results about the vertex become final. Vertices
    /// never appearing in a bag are absent from the result.
    pub fn forget_node_of(&self) -> std::collections::BTreeMap<Vertex, NiceNodeId> {
        let mut out = std::collections::BTreeMap::new();
        for (id, node) in self.nodes.iter().enumerate() {
            if let NiceNode::Forget { vertex, .. } = node {
                out.insert(*vertex, id);
            }
        }
        out
    }

    /// Converts an arbitrary (connected, non-empty) tree decomposition into a
    /// nice one of the same width. Isolated graph vertices absent from all
    /// bags stay absent.
    pub fn from_tree_decomposition(td: &TreeDecomposition) -> Self {
        let mut builder = Builder::default();
        if td.bag_count() == 0 {
            let leaf = builder.push(NiceNode::Leaf, BTreeSet::new());
            return NiceTreeDecomposition {
                nodes: builder.nodes,
                bags: builder.bags,
                root: leaf,
            };
        }
        // Root the decomposition tree at bag 0 and build recursively.
        let top = builder.build_subtree(td, 0, usize::MAX);
        // Close the chain: forget every vertex of bag 0 so the root is empty.
        let root_bag = td.bag(0).clone();
        let root = builder.forget_all(top, &root_bag);
        NiceTreeDecomposition {
            nodes: builder.nodes,
            bags: builder.bags,
            root,
        }
    }

    /// Builds a nice path decomposition directly from an ordered list of bags
    /// (a path decomposition), keeping the "path" structure: no join nodes
    /// are created, so DP over it is a left-to-right scan (this matters for
    /// the constant-width OBDD results on bounded-pathwidth instances,
    /// Theorem 6.7).
    pub fn from_path_bags(bags: &[BTreeSet<Vertex>]) -> Self {
        let mut builder = Builder::default();
        let mut current = builder.push(NiceNode::Leaf, BTreeSet::new());
        let mut current_bag: BTreeSet<Vertex> = BTreeSet::new();
        for (i, bag) in bags.iter().enumerate() {
            // Forget vertices that are in current_bag but not needed anymore
            // (not in this bag).
            let to_forget: Vec<Vertex> = current_bag.difference(bag).copied().collect();
            for v in to_forget {
                current_bag.remove(&v);
                current = builder.push_with_bag(
                    NiceNode::Forget {
                        vertex: v,
                        child: current,
                    },
                    current_bag.clone(),
                );
            }
            // Introduce the new vertices of this bag.
            let to_introduce: Vec<Vertex> = bag.difference(&current_bag).copied().collect();
            for v in to_introduce {
                current_bag.insert(v);
                current = builder.push_with_bag(
                    NiceNode::Introduce {
                        vertex: v,
                        child: current,
                    },
                    current_bag.clone(),
                );
            }
            let _ = i;
        }
        // Forget the remaining vertices.
        let remaining: Vec<Vertex> = current_bag.iter().copied().collect();
        for v in remaining {
            current_bag.remove(&v);
            current = builder.push_with_bag(
                NiceNode::Forget {
                    vertex: v,
                    child: current,
                },
                current_bag.clone(),
            );
        }
        NiceTreeDecomposition {
            nodes: builder.nodes,
            bags: builder.bags,
            root: current,
        }
    }

    /// Returns `true` if no node is a join node (the decomposition is a
    /// "nice path decomposition").
    pub fn is_path_shaped(&self) -> bool {
        !self
            .nodes
            .iter()
            .any(|n| matches!(n, NiceNode::Join { .. }))
    }
}

#[derive(Default)]
struct Builder {
    nodes: Vec<NiceNode>,
    bags: Vec<BTreeSet<Vertex>>,
}

impl Builder {
    fn push(&mut self, node: NiceNode, bag: BTreeSet<Vertex>) -> NiceNodeId {
        self.push_with_bag(node, bag)
    }

    fn push_with_bag(&mut self, node: NiceNode, bag: BTreeSet<Vertex>) -> NiceNodeId {
        self.nodes.push(node);
        self.bags.push(bag);
        self.nodes.len() - 1
    }

    /// Introduce all vertices of `target` on top of `node` (whose bag is `from`).
    fn introduce_all(
        &mut self,
        mut node: NiceNodeId,
        from: &BTreeSet<Vertex>,
        target: &BTreeSet<Vertex>,
    ) -> NiceNodeId {
        let mut bag = from.clone();
        for &v in target.difference(from) {
            bag.insert(v);
            node = self.push_with_bag(
                NiceNode::Introduce {
                    vertex: v,
                    child: node,
                },
                bag.clone(),
            );
        }
        node
    }

    /// Forget all vertices of `from` not in `target` on top of `node`.
    fn forget_down_to(
        &mut self,
        mut node: NiceNodeId,
        from: &BTreeSet<Vertex>,
        target: &BTreeSet<Vertex>,
    ) -> NiceNodeId {
        let mut bag = from.clone();
        let to_forget: Vec<Vertex> = from.difference(target).copied().collect();
        for v in to_forget {
            bag.remove(&v);
            node = self.push_with_bag(
                NiceNode::Forget {
                    vertex: v,
                    child: node,
                },
                bag.clone(),
            );
        }
        node
    }

    fn forget_all(&mut self, node: NiceNodeId, from: &BTreeSet<Vertex>) -> NiceNodeId {
        self.forget_down_to(node, from, &BTreeSet::new())
    }

    /// Builds the nice subtree for the subtree of `td` rooted at `bag_id`
    /// (with parent `parent`), returning a node whose bag equals
    /// `td.bag(bag_id)`.
    fn build_subtree(
        &mut self,
        td: &TreeDecomposition,
        bag_id: usize,
        parent: usize,
    ) -> NiceNodeId {
        let my_bag = td.bag(bag_id).clone();
        // Start from a leaf and introduce my whole bag.
        let leaf = self.push(NiceNode::Leaf, BTreeSet::new());
        let mut acc = self.introduce_all(leaf, &BTreeSet::new(), &my_bag);
        for &child in td.tree_neighbors(bag_id) {
            if child == parent {
                continue;
            }
            let child_top = self.build_subtree(td, child, bag_id);
            // Adapt the child (bag = td.bag(child)) to my bag: forget what I
            // don't have, introduce what I have.
            let child_bag = td.bag(child).clone();
            let intersection: BTreeSet<Vertex> = child_bag.intersection(&my_bag).copied().collect();
            let forgotten = self.forget_down_to(child_top, &child_bag, &intersection);
            let adapted = self.introduce_all(forgotten, &intersection, &my_bag);
            // Join with the accumulator.
            acc = self.push_with_bag(
                NiceNode::Join {
                    left: acc,
                    right: adapted,
                },
                my_bag.clone(),
            );
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::treewidth;

    fn nice_of(g: &Graph) -> NiceTreeDecomposition {
        let (_, td) = treewidth::treewidth_upper_bound(g);
        NiceTreeDecomposition::from_tree_decomposition(&td)
    }

    #[test]
    fn nice_decomposition_of_path_is_valid_and_width_one() {
        let g = generators::path_graph(8);
        let nice = nice_of(&g);
        assert!(nice.validate(&g).is_ok());
        assert_eq!(nice.width(), 1);
        assert!(nice.bag(nice.root()).is_empty());
    }

    #[test]
    fn nice_decomposition_preserves_width_on_known_graphs() {
        for (g, expected) in [
            (generators::cycle_graph(7), 2usize),
            (generators::complete_graph(5), 4),
            (generators::star_graph(6), 1),
        ] {
            let nice = nice_of(&g);
            assert!(nice.validate(&g).is_ok());
            assert_eq!(nice.width(), expected);
        }
    }

    #[test]
    fn nice_decomposition_of_random_partial_k_trees() {
        for seed in 0..4 {
            let g = generators::random_partial_k_tree(25, 3, 0.8, seed);
            let nice = nice_of(&g);
            assert!(nice.validate(&g).is_ok());
            assert!(nice.width() <= 3 + 1); // heuristic may lose a little

            // Post-order ends at the root and visits every node once.
            let order = nice.post_order();
            assert_eq!(order.len(), nice.node_count());
            assert_eq!(*order.last().unwrap(), nice.root());
        }
    }

    #[test]
    fn post_order_children_before_parents() {
        let g = generators::balanced_binary_tree(15);
        let nice = nice_of(&g);
        let order = nice.post_order();
        let mut position = vec![usize::MAX; nice.node_count()];
        for (i, &n) in order.iter().enumerate() {
            position[n] = i;
        }
        for (id, node) in (0..nice.node_count()).map(|i| (i, nice.node(i))) {
            match node {
                NiceNode::Leaf => {}
                NiceNode::Introduce { child, .. } | NiceNode::Forget { child, .. } => {
                    assert!(position[*child] < position[id]);
                }
                NiceNode::Join { left, right } => {
                    assert!(position[*left] < position[id]);
                    assert!(position[*right] < position[id]);
                }
            }
        }
    }

    #[test]
    fn from_path_bags_has_no_joins() {
        let g = generators::path_graph(10);
        let (_, pd) = treewidth::pathwidth_upper_bound(&g);
        let order = pd.path_order().unwrap();
        let bags: Vec<_> = order.iter().map(|&b| pd.bag(b).clone()).collect();
        let nice = NiceTreeDecomposition::from_path_bags(&bags);
        assert!(nice.is_path_shaped());
        assert!(nice.validate(&g).is_ok());
        assert_eq!(nice.width(), 1);
    }

    #[test]
    fn forget_nodes_cover_all_vertices() {
        let g = generators::cycle_graph(6);
        let nice = nice_of(&g);
        let forget = nice.forget_node_of();
        for v in g.vertices() {
            assert!(forget.contains_key(&v), "vertex {v} never forgotten");
        }
    }
}
