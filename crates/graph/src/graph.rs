//! Undirected simple graphs.
//!
//! Following Section 2 of the paper, a graph is undirected, simple and
//! unlabeled. Vertices are dense indices `0..n`; the Gaifman graph of a
//! relational instance (built in `treelineage-instance`) maps domain elements
//! to such indices. Unlike the paper's active-domain convention we allow
//! isolated vertices at this level — callers that need the active-domain view
//! can drop them — because decompositions and generators are simpler to state
//! over a fixed vertex range.

use std::collections::{BTreeSet, VecDeque};

/// A vertex identifier: a dense index in `0..Graph::vertex_count()`.
pub type Vertex = usize;

/// An undirected edge, stored with `min <= max` endpoints.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Edge {
    /// The smaller endpoint.
    pub u: Vertex,
    /// The larger endpoint.
    pub v: Vertex,
}

impl Edge {
    /// Creates an edge, normalizing endpoint order. Panics on self-loops.
    pub fn new(a: Vertex, b: Vertex) -> Self {
        assert!(a != b, "graphs are simple: no self-loops");
        Edge {
            u: a.min(b),
            v: a.max(b),
        }
    }

    /// Returns the endpoint different from `x`; panics if `x` is not an endpoint.
    pub fn other(&self, x: Vertex) -> Vertex {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("vertex {x} is not an endpoint of {self:?}");
        }
    }

    /// Returns `true` if the two edges share an endpoint.
    pub fn is_incident_to(&self, other: &Edge) -> bool {
        self.u == other.u || self.u == other.v || self.v == other.u || self.v == other.v
    }
}

/// An undirected simple graph on vertices `0..n`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adjacency: Vec<BTreeSet<Vertex>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adjacency: vec![BTreeSet::new(); n],
            edge_count: 0,
        }
    }

    /// Number of vertices (including isolated ones).
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.vertex_count()
    }

    /// Adds a vertex and returns its index.
    pub fn add_vertex(&mut self) -> Vertex {
        self.adjacency.push(BTreeSet::new());
        self.adjacency.len() - 1
    }

    /// Ensures the graph has at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: usize) {
        while self.adjacency.len() < n {
            self.adjacency.push(BTreeSet::new());
        }
    }

    /// Adds an undirected edge; returns `true` if it was not already present.
    /// Panics on self-loops or out-of-range vertices.
    pub fn add_edge(&mut self, a: Vertex, b: Vertex) -> bool {
        assert!(a != b, "graphs are simple: no self-loops");
        assert!(
            a < self.vertex_count() && b < self.vertex_count(),
            "vertex out of range"
        );
        let inserted = self.adjacency[a].insert(b);
        self.adjacency[b].insert(a);
        if inserted {
            self.edge_count += 1;
        }
        inserted
    }

    /// Removes an edge; returns `true` if it was present.
    pub fn remove_edge(&mut self, a: Vertex, b: Vertex) -> bool {
        let removed = self.adjacency[a].remove(&b);
        self.adjacency[b].remove(&a);
        if removed {
            self.edge_count -= 1;
        }
        removed
    }

    /// Returns `true` if `a` and `b` are adjacent.
    pub fn has_edge(&self, a: Vertex, b: Vertex) -> bool {
        self.adjacency.get(a).is_some_and(|s| s.contains(&b))
    }

    /// Neighbors of `v`, in increasing order.
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.adjacency[v].iter().copied()
    }

    /// The set of neighbors of `v`.
    pub fn neighbor_set(&self, v: Vertex) -> &BTreeSet<Vertex> {
        &self.adjacency[v]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: Vertex) -> usize {
        self.adjacency[v].len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Returns `true` if every vertex has degree exactly `k`
    /// (the paper's "k-regular").
    pub fn is_k_regular(&self, k: usize) -> bool {
        self.adjacency.iter().all(|s| s.len() == k)
    }

    /// Returns `true` if every vertex has degree in `degrees`
    /// (the paper's "K-regular" for a finite set K).
    pub fn is_set_regular(&self, degrees: &[usize]) -> bool {
        self.adjacency.iter().all(|s| degrees.contains(&s.len()))
    }

    /// All edges, each reported once with `u < v`, in lexicographic order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edge_count);
        for u in self.vertices() {
            for &v in &self.adjacency[u] {
                if u < v {
                    out.push(Edge { u, v });
                }
            }
        }
        out
    }

    /// Vertices with degree at least one (the active domain in the paper's
    /// graph-as-instance encoding, which disallows isolated vertices).
    pub fn non_isolated_vertices(&self) -> Vec<Vertex> {
        self.vertices().filter(|&v| self.degree(v) > 0).collect()
    }

    /// Breadth-first search from `start`; returns the set of reachable vertices.
    pub fn reachable_from(&self, start: Vertex) -> BTreeSet<Vertex> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Connected components, as sorted vertex lists; isolated vertices form
    /// singleton components.
    pub fn connected_components(&self) -> Vec<Vec<Vertex>> {
        let mut seen = vec![false; self.vertex_count()];
        let mut components = Vec::new();
        for v in self.vertices() {
            if seen[v] {
                continue;
            }
            let comp = self.reachable_from(v);
            for &u in &comp {
                seen[u] = true;
            }
            components.push(comp.into_iter().collect());
        }
        components
    }

    /// Returns `true` if the graph is connected (the empty graph and the
    /// single-vertex graph count as connected).
    pub fn is_connected(&self) -> bool {
        self.connected_components().len() <= 1
    }

    /// Returns `true` if the graph contains a cycle.
    pub fn has_cycle(&self) -> bool {
        // A forest has exactly n - (#components) edges.
        let components = self.connected_components().len();
        self.edge_count > self.vertex_count().saturating_sub(components)
    }

    /// Returns `true` if the graph is a tree in the paper's sense: acyclic and
    /// connected.
    pub fn is_tree(&self) -> bool {
        self.is_connected() && !self.has_cycle()
    }

    /// Length (in edges) of a shortest path between `a` and `b`, or `None` if
    /// they are disconnected.
    pub fn distance(&self, a: Vertex, b: Vertex) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.vertex_count()];
        dist[a] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adjacency[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    if v == b {
                        return Some(dist[v]);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// The subgraph induced by `keep`, with vertices renumbered `0..keep.len()`
    /// in the order given. Returns the subgraph and the mapping from new to
    /// old vertex indices.
    pub fn induced_subgraph(&self, keep: &[Vertex]) -> (Graph, Vec<Vertex>) {
        let mut new_index = vec![usize::MAX; self.vertex_count()];
        for (i, &v) in keep.iter().enumerate() {
            new_index[v] = i;
        }
        let mut sub = Graph::new(keep.len());
        for (i, &v) in keep.iter().enumerate() {
            for &w in &self.adjacency[v] {
                if new_index[w] != usize::MAX && new_index[w] > i {
                    sub.add_edge(i, new_index[w]);
                }
            }
        }
        (sub, keep.to_vec())
    }

    /// The subgraph keeping all vertices but only the given edges
    /// (a "subinstance" of the graph seen as an instance).
    pub fn edge_subgraph(&self, edges: &[Edge]) -> Graph {
        let mut sub = Graph::new(self.vertex_count());
        for e in edges {
            assert!(self.has_edge(e.u, e.v), "edge not in graph");
            sub.add_edge(e.u, e.v);
        }
        sub
    }

    /// Disjoint union of two graphs: vertices of `other` are shifted by
    /// `self.vertex_count()`.
    pub fn disjoint_union(&self, other: &Graph) -> Graph {
        let offset = self.vertex_count();
        let mut out = self.clone();
        out.ensure_vertices(offset + other.vertex_count());
        for e in other.edges() {
            out.add_edge(e.u + offset, e.v + offset);
        }
        out
    }

    /// Checks whether `edges` forms a matching: no two selected edges share an
    /// endpoint. (The hard problem behind Theorem 4.2 counts such subsets.)
    pub fn is_matching(&self, edges: &[Edge]) -> bool {
        let mut used = vec![false; self.vertex_count()];
        for e in edges {
            if used[e.u] || used[e.v] {
                return false;
            }
            used[e.u] = true;
            used[e.v] = true;
        }
        true
    }

    /// A simple greedy proper coloring; returns the color of each vertex.
    /// Used by tests as a quick sanity device, not an optimal coloring.
    pub fn greedy_coloring(&self) -> Vec<usize> {
        let mut colors = vec![usize::MAX; self.vertex_count()];
        for v in self.vertices() {
            let used: BTreeSet<usize> = self.adjacency[v]
                .iter()
                .filter(|&&u| colors[u] != usize::MAX)
                .map(|&u| colors[u])
                .collect();
            let mut c = 0;
            while used.contains(&c) {
                c += 1;
            }
            colors[v] = c;
        }
        colors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g
    }

    #[test]
    fn edge_normalization_and_incidence() {
        let e = Edge::new(5, 2);
        assert_eq!((e.u, e.v), (2, 5));
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
        assert!(e.is_incident_to(&Edge::new(5, 9)));
        assert!(!e.is_incident_to(&Edge::new(3, 9)));
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn basic_construction() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_k_regular(2));
        assert!(g.is_set_regular(&[2, 3]));
        assert!(!g.is_set_regular(&[3]));
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut g = Graph::new(2);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn remove_edge_works() {
        let mut g = triangle();
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn connectivity_and_components() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        assert!(!g.is_connected());
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(g.distance(0, 2), Some(2));
        assert_eq!(g.distance(0, 4), None);
    }

    #[test]
    fn cycles_and_trees() {
        let mut path = Graph::new(4);
        path.add_edge(0, 1);
        path.add_edge(1, 2);
        path.add_edge(2, 3);
        assert!(!path.has_cycle());
        assert!(path.is_tree());
        assert!(triangle().has_cycle());
        assert!(!triangle().is_tree());
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = triangle();
        let (sub, map) = g.induced_subgraph(&[2, 0]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(0, 1));
        assert_eq!(map, vec![2, 0]);
    }

    #[test]
    fn edge_subgraph_keeps_vertices() {
        let g = triangle();
        let sub = g.edge_subgraph(&[Edge::new(0, 1)]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(sub.non_isolated_vertices(), vec![0, 1]);
    }

    #[test]
    fn disjoint_union_shifts() {
        let g = triangle().disjoint_union(&triangle());
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 6);
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn matching_check() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(g.is_matching(&[]));
        assert!(g.is_matching(&[Edge::new(0, 1), Edge::new(2, 3)]));
        assert!(!g.is_matching(&[Edge::new(0, 1), Edge::new(1, 2)]));
    }

    #[test]
    fn greedy_coloring_is_proper() {
        let g = triangle();
        let colors = g.greedy_coloring();
        for e in g.edges() {
            assert_ne!(colors[e.u], colors[e.v]);
        }
    }
}
