//! Tree decompositions and path decompositions (Section 2 of the paper).
//!
//! A tree decomposition of a graph `G` is a tree `T` with a labeling of its
//! nodes ("bags") by sets of vertices of `G` such that (i) every edge of `G`
//! is covered by some bag and (ii) the bags containing any fixed vertex form a
//! connected subtree. Its width is the maximum bag size minus one; the
//! treewidth of `G` is the minimum width over decompositions. A path
//! decomposition additionally requires the tree to be a path.

use crate::graph::{Graph, Vertex};
use std::collections::BTreeSet;

/// Index of a bag in a [`TreeDecomposition`].
pub type BagId = usize;

/// Errors reported by [`TreeDecomposition::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecompositionError {
    /// The decomposition has no bags but the graph has vertices.
    Empty,
    /// The bag graph is not a tree (disconnected or cyclic).
    NotATree,
    /// An edge of the graph is not contained in any bag.
    EdgeNotCovered(Vertex, Vertex),
    /// A vertex of the graph appears in no bag.
    VertexNotCovered(Vertex),
    /// The bags containing a vertex do not form a connected subtree.
    VertexBagsDisconnected(Vertex),
    /// A bag mentions a vertex outside the graph's vertex range.
    VertexOutOfRange(Vertex),
}

impl std::fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompositionError::Empty => write!(f, "decomposition has no bags"),
            DecompositionError::NotATree => write!(f, "bag graph is not a tree"),
            DecompositionError::EdgeNotCovered(u, v) => {
                write!(f, "edge ({u},{v}) not covered by any bag")
            }
            DecompositionError::VertexNotCovered(v) => write!(f, "vertex {v} appears in no bag"),
            DecompositionError::VertexBagsDisconnected(v) => {
                write!(f, "bags containing vertex {v} are not connected")
            }
            DecompositionError::VertexOutOfRange(v) => write!(f, "vertex {v} out of range"),
        }
    }
}

impl std::error::Error for DecompositionError {}

/// A tree decomposition: bags plus the (undirected) tree connecting them.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    bags: Vec<BTreeSet<Vertex>>,
    /// Adjacency lists of the decomposition tree.
    tree: Vec<Vec<BagId>>,
}

impl TreeDecomposition {
    /// Creates an empty decomposition.
    pub fn new() -> Self {
        TreeDecomposition {
            bags: Vec::new(),
            tree: Vec::new(),
        }
    }

    /// The trivial decomposition with a single bag containing every vertex of
    /// `g` (width `n - 1`); mainly useful in tests.
    pub fn trivial(g: &Graph) -> Self {
        let mut td = TreeDecomposition::new();
        td.add_bag(g.vertices().collect());
        td
    }

    /// Adds a bag and returns its id.
    pub fn add_bag(&mut self, bag: BTreeSet<Vertex>) -> BagId {
        self.bags.push(bag);
        self.tree.push(Vec::new());
        self.bags.len() - 1
    }

    /// Connects two bags in the decomposition tree.
    pub fn add_tree_edge(&mut self, a: BagId, b: BagId) {
        assert!(a != b && a < self.bags.len() && b < self.bags.len());
        if !self.tree[a].contains(&b) {
            self.tree[a].push(b);
            self.tree[b].push(a);
        }
    }

    /// Number of bags.
    pub fn bag_count(&self) -> usize {
        self.bags.len()
    }

    /// The contents of bag `id`.
    pub fn bag(&self, id: BagId) -> &BTreeSet<Vertex> {
        &self.bags[id]
    }

    /// All bags.
    pub fn bags(&self) -> &[BTreeSet<Vertex>] {
        &self.bags
    }

    /// Neighbors of a bag in the decomposition tree.
    pub fn tree_neighbors(&self, id: BagId) -> &[BagId] {
        &self.tree[id]
    }

    /// Width: maximum bag size minus one (`usize::MAX` sentinel never occurs;
    /// the empty decomposition has width 0 by convention).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(1)
            .saturating_sub(1)
    }

    /// Returns `true` if the decomposition tree is a path (every bag has at
    /// most two tree neighbors), i.e. this is a path decomposition.
    pub fn is_path(&self) -> bool {
        self.tree.iter().all(|n| n.len() <= 2)
    }

    /// If this is a path decomposition, returns the bag ids in path order.
    pub fn path_order(&self) -> Option<Vec<BagId>> {
        if !self.is_path() || self.bags.is_empty() {
            return if self.bags.is_empty() {
                Some(Vec::new())
            } else {
                None
            };
        }
        // Find an endpoint (degree <= 1) and walk.
        let start = (0..self.bags.len())
            .find(|&b| self.tree[b].len() <= 1)
            .unwrap_or(0);
        let mut order = vec![start];
        let mut prev = usize::MAX;
        let mut cur = start;
        loop {
            let next = self.tree[cur].iter().copied().find(|&n| n != prev);
            match next {
                Some(n) => {
                    order.push(n);
                    prev = cur;
                    cur = n;
                }
                None => break,
            }
        }
        if order.len() == self.bags.len() {
            Some(order)
        } else {
            None
        }
    }

    /// Checks that this is a valid tree decomposition of `g`.
    ///
    /// Every vertex of `g` that occurs in some edge must be covered; isolated
    /// vertices of `g` are not required to appear (matching the paper's
    /// active-domain semantics) but are allowed to.
    ///
    /// Runs in `O(Σ|bag|² + |V| + |E|)` — near-linear for bounded-width
    /// decompositions — so pipelines can afford to validate on every call
    /// (the tree-encoding pipeline validates once per encode, on instances
    /// where a quadratic scan over all bags per vertex/edge would dominate
    /// the whole linear-time construction).
    pub fn validate(&self, g: &Graph) -> Result<(), DecompositionError> {
        if self.bags.is_empty() {
            return if g.edge_count() == 0 {
                Ok(())
            } else {
                Err(DecompositionError::Empty)
            };
        }
        // Range check, vertex coverage, and occurrence counting in one pass.
        let mut occurrence_count = vec![0usize; g.vertex_count()];
        for bag in &self.bags {
            for &v in bag {
                if v >= g.vertex_count() {
                    return Err(DecompositionError::VertexOutOfRange(v));
                }
                occurrence_count[v] += 1;
            }
        }
        // Tree check: connected and acyclic.
        let edge_total: usize = self.tree.iter().map(|n| n.len()).sum::<usize>() / 2;
        if edge_total != self.bags.len() - 1 || !self.bag_graph_connected() {
            return Err(DecompositionError::NotATree);
        }
        // Edge coverage: collect every vertex pair co-occurring in a bag
        // (O(Σ|bag|²)), then check the graph's edges against the set.
        let mut covered: std::collections::HashSet<(Vertex, Vertex)> =
            std::collections::HashSet::new();
        for bag in &self.bags {
            let members: Vec<Vertex> = bag.iter().copied().collect();
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    covered.insert((u, v)); // bags are sorted: u < v
                }
            }
        }
        for e in g.edges() {
            let key = if e.u < e.v { (e.u, e.v) } else { (e.v, e.u) };
            if !covered.contains(&key) {
                return Err(DecompositionError::EdgeNotCovered(e.u, e.v));
            }
        }
        // Connectivity of occurrence sets: within the decomposition tree, a
        // vertex's occurrence bags induce a forest; they are connected
        // exactly when that forest has `occurrences - 1` induced tree edges.
        let mut induced_edges = vec![0usize; g.vertex_count()];
        for (a, neighbors) in self.tree.iter().enumerate() {
            for &b in neighbors {
                if a < b {
                    for &v in self.bags[a].intersection(&self.bags[b]) {
                        induced_edges[v] += 1;
                    }
                }
            }
        }
        for v in g.vertices() {
            if occurrence_count[v] == 0 {
                if g.degree(v) > 0 {
                    return Err(DecompositionError::VertexNotCovered(v));
                }
                continue;
            }
            if induced_edges[v] + 1 != occurrence_count[v] {
                return Err(DecompositionError::VertexBagsDisconnected(v));
            }
        }
        Ok(())
    }

    fn bag_graph_connected(&self) -> bool {
        if self.bags.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.bags.len()];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(b) = stack.pop() {
            for &n in &self.tree[b] {
                if !seen[n] {
                    seen[n] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.bags.len()
    }

    /// Builds a path decomposition directly from a sequence of bags, chained
    /// in order.
    pub fn path_from_bags(bags: Vec<BTreeSet<Vertex>>) -> Self {
        let mut td = TreeDecomposition::new();
        let mut prev: Option<BagId> = None;
        for bag in bags {
            let id = td.add_bag(bag);
            if let Some(p) = prev {
                td.add_tree_edge(p, id);
            }
            prev = Some(id);
        }
        td
    }

    /// Builds the canonical width-1 tree decomposition of a tree/forest graph:
    /// one bag per edge, chained along a DFS. Returns `None` if `g` has a
    /// cycle.
    pub fn of_forest(g: &Graph) -> Option<Self> {
        if g.has_cycle() {
            return None;
        }
        let mut td = TreeDecomposition::new();
        if g.edge_count() == 0 {
            if g.vertex_count() > 0 {
                td.add_bag(std::iter::once(0).collect());
            }
            return Some(td);
        }
        // One bag per edge; connect bag(e) to bag(parent edge) in a rooted DFS.
        let mut visited = vec![false; g.vertex_count()];
        let mut last_component_bag: Option<BagId> = None;
        for root in g.vertices() {
            if visited[root] || g.degree(root) == 0 {
                continue;
            }
            visited[root] = true;
            // Stack of (vertex, bag that introduced it).
            let mut stack: Vec<(Vertex, Option<BagId>)> = vec![(root, None)];
            let mut component_first_bag: Option<BagId> = None;
            while let Some((u, parent_bag)) = stack.pop() {
                for v in g.neighbors(u) {
                    if visited[v] {
                        continue;
                    }
                    visited[v] = true;
                    let bag = td.add_bag([u, v].into_iter().collect());
                    if let Some(p) = parent_bag {
                        td.add_tree_edge(p, bag);
                    } else if let Some(first) = component_first_bag {
                        td.add_tree_edge(first, bag);
                    }
                    if component_first_bag.is_none() {
                        component_first_bag = Some(bag);
                    }
                    stack.push((v, Some(bag)));
                }
            }
            // Connect components into one tree (bags share no vertices, which
            // is fine: the connectivity condition is per-vertex).
            if let (Some(prev), Some(cur)) = (last_component_bag, component_first_bag) {
                td.add_tree_edge(prev, cur);
            }
            if component_first_bag.is_some() {
                last_component_bag = component_first_bag;
            }
        }
        Some(td)
    }
}

impl Default for TreeDecomposition {
    fn default() -> Self {
        TreeDecomposition::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn trivial_decomposition_is_valid() {
        let g = generators::complete_graph(5);
        let td = TreeDecomposition::trivial(&g);
        assert_eq!(td.width(), 4);
        assert!(td.validate(&g).is_ok());
        assert!(td.is_path());
    }

    #[test]
    fn path_graph_width_one() {
        let g = generators::path_graph(6);
        let td = TreeDecomposition::of_forest(&g).unwrap();
        assert_eq!(td.width(), 1);
        assert!(td.validate(&g).is_ok());
    }

    #[test]
    fn forest_decomposition_of_tree() {
        let g = generators::star_graph(5);
        let td = TreeDecomposition::of_forest(&g).unwrap();
        assert_eq!(td.width(), 1);
        assert!(td.validate(&g).is_ok());
    }

    #[test]
    fn forest_decomposition_rejects_cycles() {
        let g = generators::cycle_graph(4);
        assert!(TreeDecomposition::of_forest(&g).is_none());
    }

    #[test]
    fn forest_decomposition_of_disconnected_forest() {
        let g = generators::path_graph(3).disjoint_union(&generators::path_graph(4));
        let td = TreeDecomposition::of_forest(&g).unwrap();
        assert_eq!(td.width(), 1);
        assert!(td.validate(&g).is_ok());
    }

    #[test]
    fn validation_catches_missing_edge() {
        let g = generators::path_graph(3);
        let mut td = TreeDecomposition::new();
        let a = td.add_bag([0, 1].into_iter().collect());
        let b = td.add_bag([2].into_iter().collect());
        td.add_tree_edge(a, b);
        assert_eq!(
            td.validate(&g),
            Err(DecompositionError::EdgeNotCovered(1, 2))
        );
    }

    #[test]
    fn validation_catches_disconnected_occurrences() {
        let g = generators::path_graph(3);
        let mut td = TreeDecomposition::new();
        let a = td.add_bag([0, 1].into_iter().collect());
        let b = td.add_bag([1, 2].into_iter().collect());
        let c = td.add_bag([0].into_iter().collect());
        // 0 occurs in bags a and c, but c hangs off b: a - b - c, so the bags
        // containing 0 are {a, c}, not connected.
        td.add_tree_edge(a, b);
        td.add_tree_edge(b, c);
        assert_eq!(
            td.validate(&g),
            Err(DecompositionError::VertexBagsDisconnected(0))
        );
    }

    #[test]
    fn validation_catches_non_tree() {
        let g = generators::path_graph(2);
        let mut td = TreeDecomposition::new();
        let a = td.add_bag([0, 1].into_iter().collect());
        let b = td.add_bag([0, 1].into_iter().collect());
        let c = td.add_bag([0, 1].into_iter().collect());
        td.add_tree_edge(a, b);
        td.add_tree_edge(b, c);
        td.add_tree_edge(c, a);
        assert_eq!(td.validate(&g), Err(DecompositionError::NotATree));
    }

    #[test]
    fn path_order_of_path_decomposition() {
        let bags: Vec<BTreeSet<Vertex>> = vec![
            [0, 1].into_iter().collect(),
            [1, 2].into_iter().collect(),
            [2, 3].into_iter().collect(),
        ];
        let td = TreeDecomposition::path_from_bags(bags);
        assert!(td.is_path());
        let order = td.path_order().unwrap();
        assert_eq!(order.len(), 3);
        assert!(order == vec![0, 1, 2] || order == vec![2, 1, 0]);
    }

    #[test]
    fn grid_has_small_width_decomposition_by_columns() {
        // Column-sweep path decomposition of a 3 x 4 grid has width 3.
        let (g, coord) = generators::grid_graph_with_coords(3, 4);
        let mut bags = Vec::new();
        for col in 0..3usize {
            // Bag: column col and column col+1.
            let bag: BTreeSet<Vertex> = coord
                .iter()
                .enumerate()
                .filter(|(_, &(r, c))| {
                    let _ = r;
                    c == col || c == col + 1
                })
                .map(|(v, _)| v)
                .collect();
            bags.push(bag);
        }
        let td = TreeDecomposition::path_from_bags(bags);
        assert!(td.validate(&g).is_ok());
        assert_eq!(td.width(), 5);
    }
}
