//! Graphs, treewidth machinery and graph counting problems for the
//! `treelineage` workspace.
//!
//! This crate implements the graph-theoretic substrate of the paper
//! *Tractable Lineages on Treelike Instances* (Amarilli, Bourhis, Senellart,
//! PODS 2016): undirected simple graphs, tree and path decompositions with
//! validation, nice tree decompositions for dynamic programming, treewidth /
//! pathwidth / tree-depth computation (heuristic and exact for small inputs),
//! the instance-family generators used by the experiments (grids, k-trees,
//! 3-regular planar graphs, subdivisions, …), topological-minor embeddings
//! (Definition 4.3), and exact counting of matchings, independent sets and
//! Hamiltonian cycles (the reduction sources of Theorems 4.2 and 5.7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counting;
pub mod decomposition;
pub mod generators;
pub mod graph;
pub mod minor;
pub mod nice;
pub mod treedepth;
pub mod treewidth;

pub use decomposition::{BagId, DecompositionError, TreeDecomposition};
pub use graph::{Edge, Graph, Vertex};
pub use minor::Embedding;
pub use nice::{NiceNode, NiceNodeId, NiceTreeDecomposition};
pub use treedepth::EliminationForest;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_graph() -> impl Strategy<Value = Graph> {
        (2usize..10, any::<u64>(), 0.1f64..0.9)
            .prop_map(|(n, seed, p)| generators::random_graph(n, p, seed))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn heuristic_decompositions_are_always_valid(g in arbitrary_graph()) {
            let (_, td) = treewidth::treewidth_upper_bound(&g);
            prop_assert!(td.validate(&g).is_ok());
            let (_, pd) = treewidth::pathwidth_upper_bound(&g);
            prop_assert!(pd.validate(&g).is_ok());
            prop_assert!(pd.is_path());
        }

        #[test]
        fn nice_decomposition_valid_and_same_width_class(g in arbitrary_graph()) {
            let (w, td) = treewidth::treewidth_upper_bound(&g);
            let nice = NiceTreeDecomposition::from_tree_decomposition(&td);
            prop_assert!(nice.validate(&g).is_ok());
            prop_assert!(nice.width() <= w);
        }

        #[test]
        fn width_invariants(g in arbitrary_graph()) {
            // degeneracy <= exact treewidth <= heuristic <= n-1,
            // exact treewidth <= exact pathwidth <= exact treedepth - 1.
            let n = g.vertex_count();
            let tw = treewidth::treewidth_exact(&g);
            let pw = treewidth::pathwidth_exact(&g);
            let td = treedepth::treedepth_exact(&g);
            let (ub, _) = treewidth::treewidth_upper_bound(&g);
            prop_assert!(treewidth::degeneracy(&g) <= tw);
            prop_assert!(tw <= ub);
            prop_assert!(ub <= n.saturating_sub(1));
            prop_assert!(tw <= pw);
            prop_assert!(pw < td || g.edge_count() == 0);
        }

        #[test]
        fn matching_and_is_counts_agree_with_bruteforce(g in arbitrary_graph()) {
            if g.edge_count() <= 16 {
                prop_assert_eq!(
                    counting::count_matchings(&g).to_u64(),
                    counting::count_matchings_bruteforce(&g).to_u64()
                );
            }
            prop_assert_eq!(
                counting::count_independent_sets(&g).to_u64(),
                counting::count_independent_sets_bruteforce(&g).to_u64()
            );
        }

        #[test]
        fn subdivision_preserves_treewidth_at_most(g in arbitrary_graph(), extra in 0usize..3) {
            // Subdivision never increases treewidth (for graphs with at least
            // one edge), and never drops it below 1.
            prop_assume!(g.edge_count() >= 1);
            let s = generators::subdivide(&g, extra);
            if s.vertex_count() <= 24 && g.vertex_count() <= 24 {
                let exact_g = treewidth::treewidth_exact(&g);
                let exact_s = treewidth::treewidth_exact(&s);
                prop_assert!(exact_s <= exact_g.max(1));
            }
        }
    }
}
