//! The stable, export-oriented view of a registry: [`MetricsSnapshot`] and
//! its serializations.
//!
//! Two wire formats, both built with in-tree formatting (no dependencies):
//!
//! * **JSON-lines** — one self-describing JSON object per sample, with a
//!   `"type"` discriminator (`counter` / `gauge` / `histogram` / `span`).
//!   All values are integers (nanoseconds, counts), so
//!   [`MetricsSnapshot::from_json_lines`] round-trips exactly.
//! * **Prometheus text format** — `# TYPE` headers, `name{label="v"} value`
//!   series, histograms expanded into cumulative `_bucket{le=...}` series
//!   plus `_sum` / `_count`, and span aggregates flattened into
//!   `span_count` / `span_duration_ns_total` counters and min/max gauges
//!   labelled by span name.

use std::fmt::Write as _;

use crate::json::{parse, Json};

/// One counter series: a monotonically non-decreasing `u64`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name, e.g. `requests_total`.
    pub name: String,
    /// Label key/value pairs, in a fixed order.
    pub labels: Vec<(String, String)>,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge series: a signed point-in-time level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GaugeSample {
    /// Metric name, e.g. `lineage_cache_entries`.
    pub name: String,
    /// Label key/value pairs, in a fixed order.
    pub labels: Vec<(String, String)>,
    /// Gauge value at snapshot time.
    pub value: i64,
}

/// One fixed-bucket histogram series.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name, e.g. `request_latency_ns`.
    pub name: String,
    /// Label key/value pairs, in a fixed order.
    pub labels: Vec<(String, String)>,
    /// Bucket upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts; one slot per bound
    /// plus a final overflow slot, so `buckets.len() == bounds.len() + 1`.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSample {
    /// Estimates the `q`-quantile (`0.0 < q <= 1.0`) from the fixed
    /// buckets: the upper bound of the first bucket whose cumulative count
    /// reaches `ceil(q * count)`. Observations in the overflow bucket have
    /// no finite bound, so a quantile landing there reports `u64::MAX`
    /// (rendered as the `+Inf` bucket by the Prometheus exporter).
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(bucket);
            if cumulative >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(u64::MAX));
            }
        }
        Some(u64::MAX)
    }
}

/// Aggregate over all finished spans of one name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanAggregate {
    /// Span (stage) name, e.g. `encode`.
    pub name: String,
    /// Number of finished spans.
    pub count: u64,
    /// Total duration across all spans, nanoseconds.
    pub total_ns: u64,
    /// Shortest span, nanoseconds (`u64::MAX` if `count == 0`).
    pub min_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
}

/// A point-in-time copy of every metric series and span aggregate, merged
/// from whatever sources the producer chose (registry, session counters,
/// per-shard `dd` stats, ...). The struct is plain data: stable to compare,
/// cheap to extend, and serializable via [`to_json_lines`] /
/// [`to_prometheus`].
///
/// [`to_json_lines`]: MetricsSnapshot::to_json_lines
/// [`to_prometheus`]: MetricsSnapshot::to_prometheus
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter series.
    pub counters: Vec<CounterSample>,
    /// Gauge series.
    pub gauges: Vec<GaugeSample>,
    /// Histogram series.
    pub histograms: Vec<HistogramSample>,
    /// Per-name span aggregates.
    pub spans: Vec<SpanAggregate>,
}

/// An error from [`MetricsSnapshot::from_json_lines`]: the 1-based line it
/// occurred on and a description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SnapshotParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SnapshotParseError {}

impl MetricsSnapshot {
    /// Appends a counter sample (convenience for producers merging
    /// non-registry sources into a snapshot).
    pub fn push_counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.counters.push(CounterSample {
            name: name.to_string(),
            labels: owned_labels(labels),
            value,
        });
    }

    /// Appends a gauge sample.
    pub fn push_gauge(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.gauges.push(GaugeSample {
            name: name.to_string(),
            labels: owned_labels(labels),
            value,
        });
    }

    /// The value of the counter with exactly these labels, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && labels_eq(&c.labels, labels))
            .map(|c| c.value)
    }

    /// The sum of every counter series with this name, across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The value of the gauge with exactly these labels, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && labels_eq(&g.labels, labels))
            .map(|g| g.value)
    }

    /// The aggregate for spans named `name`, if any finished.
    pub fn span(&self, name: &str) -> Option<&SpanAggregate> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Serializes the snapshot as JSON-lines: one JSON object per sample,
    /// each with a `"type"` discriminator, in snapshot order. The output
    /// ends with a newline unless the snapshot is empty.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let line = Json::Object(vec![
                ("type".into(), Json::Str("counter".into())),
                ("name".into(), Json::Str(c.name.clone())),
                ("labels".into(), labels_json(&c.labels)),
                ("value".into(), Json::UInt(c.value)),
            ]);
            line.write(&mut out);
            out.push('\n');
        }
        for g in &self.gauges {
            let line = Json::Object(vec![
                ("type".into(), Json::Str("gauge".into())),
                ("name".into(), Json::Str(g.name.clone())),
                ("labels".into(), labels_json(&g.labels)),
                ("value".into(), Json::int(g.value)),
            ]);
            line.write(&mut out);
            out.push('\n');
        }
        for h in &self.histograms {
            let mut fields = vec![
                ("type".into(), Json::Str("histogram".into())),
                ("name".into(), Json::Str(h.name.clone())),
                ("labels".into(), labels_json(&h.labels)),
                (
                    "bounds".into(),
                    Json::Array(h.bounds.iter().map(|&b| Json::UInt(b)).collect()),
                ),
                (
                    "buckets".into(),
                    Json::Array(h.buckets.iter().map(|&b| Json::UInt(b)).collect()),
                ),
                ("count".into(), Json::UInt(h.count)),
                ("sum".into(), Json::UInt(h.sum)),
            ];
            // Derived bucket-estimate quantiles; the parser ignores them
            // (they are reconstructible), so the round trip stays exact.
            for (key, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                if let Some(value) = h.quantile(q) {
                    fields.push((key.into(), Json::UInt(value)));
                }
            }
            let line = Json::Object(fields);
            line.write(&mut out);
            out.push('\n');
        }
        for s in &self.spans {
            let line = Json::Object(vec![
                ("type".into(), Json::Str("span".into())),
                ("name".into(), Json::Str(s.name.clone())),
                ("count".into(), Json::UInt(s.count)),
                ("total_ns".into(), Json::UInt(s.total_ns)),
                ("min_ns".into(), Json::UInt(s.min_ns)),
                ("max_ns".into(), Json::UInt(s.max_ns)),
            ]);
            line.write(&mut out);
            out.push('\n');
        }
        out
    }

    /// Parses the JSON-lines format back into a snapshot. Blank lines are
    /// skipped; unknown `"type"` values and malformed lines are errors.
    /// Inverse of [`MetricsSnapshot::to_json_lines`].
    pub fn from_json_lines(input: &str) -> Result<MetricsSnapshot, SnapshotParseError> {
        let mut snap = MetricsSnapshot::default();
        for (idx, line) in input.lines().enumerate() {
            let line_no = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let err = |message: String| SnapshotParseError {
                line: line_no,
                message,
            };
            let value =
                parse(line).map_err(|e| err(format!("{} (at byte {})", e.message, e.offset)))?;
            let kind = value
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| err("missing \"type\" field".into()))?;
            let name = value
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| err("missing \"name\" field".into()))?
                .to_string();
            let u64_field = |key: &str| -> Result<u64, SnapshotParseError> {
                value
                    .get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| err(format!("missing or non-u64 \"{key}\" field")))
            };
            match kind {
                "counter" => snap.counters.push(CounterSample {
                    name,
                    labels: parse_labels(&value).map_err(&err)?,
                    value: u64_field("value")?,
                }),
                "gauge" => snap.gauges.push(GaugeSample {
                    name,
                    labels: parse_labels(&value).map_err(&err)?,
                    value: value
                        .get("value")
                        .and_then(Json::as_i64)
                        .ok_or_else(|| err("missing or non-i64 \"value\" field".into()))?,
                }),
                "histogram" => {
                    let bounds = parse_u64_array(&value, "bounds").map_err(&err)?;
                    let buckets = parse_u64_array(&value, "buckets").map_err(&err)?;
                    if buckets.len() != bounds.len() + 1 {
                        return Err(err("histogram bucket/bound arity mismatch".into()));
                    }
                    snap.histograms.push(HistogramSample {
                        name,
                        labels: parse_labels(&value).map_err(&err)?,
                        bounds,
                        buckets,
                        count: u64_field("count")?,
                        sum: u64_field("sum")?,
                    });
                }
                "span" => snap.spans.push(SpanAggregate {
                    name,
                    count: u64_field("count")?,
                    total_ns: u64_field("total_ns")?,
                    min_ns: u64_field("min_ns")?,
                    max_ns: u64_field("max_ns")?,
                }),
                other => return Err(err(format!("unknown sample type {other:?}"))),
            }
        }
        Ok(snap)
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms become cumulative `_bucket{le="..."}` series (with the
    /// terminal `le="+Inf"`) plus `_sum` and `_count`; span aggregates
    /// become `span_count` / `span_duration_ns_total` counters and
    /// `span_duration_ns_min` / `_max` gauges labelled `{span="name"}`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_header = String::new();
        let mut header = |out: &mut String, name: &str, kind: &str| {
            if last_header != name {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_header = name.to_string();
            }
        };
        for c in &self.counters {
            header(&mut out, &c.name, "counter");
            write_series(&mut out, &c.name, &c.labels, &[], &c.value.to_string());
        }
        for g in &self.gauges {
            header(&mut out, &g.name, "gauge");
            write_series(&mut out, &g.name, &g.labels, &[], &g.value.to_string());
        }
        for h in &self.histograms {
            header(&mut out, &h.name, "histogram");
            let bucket_name = format!("{}_bucket", h.name);
            let mut cumulative = 0u64;
            for (i, &count) in h.buckets.iter().enumerate() {
                cumulative += count;
                let le = match h.bounds.get(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                write_series(
                    &mut out,
                    &bucket_name,
                    &h.labels,
                    &[("le", &le)],
                    &cumulative.to_string(),
                );
            }
            write_series(
                &mut out,
                &format!("{}_sum", h.name),
                &h.labels,
                &[],
                &h.sum.to_string(),
            );
            write_series(
                &mut out,
                &format!("{}_count", h.name),
                &h.labels,
                &[],
                &h.count.to_string(),
            );
        }
        // Bucket-estimate quantiles as a separate gauge family per
        // histogram name (a Prometheus `histogram` family may only carry
        // _bucket/_sum/_count series, so these get their own suffix); a
        // second pass keeps one TYPE header per family.
        for h in &self.histograms {
            let quantile_name = format!("{}_quantile", h.name);
            for (q_label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
                let Some(value) = h.quantile(q) else { continue };
                header(&mut out, &quantile_name, "gauge");
                let rendered = if value == u64::MAX {
                    "+Inf".to_string()
                } else {
                    value.to_string()
                };
                write_series(
                    &mut out,
                    &quantile_name,
                    &h.labels,
                    &[("quantile", q_label)],
                    &rendered,
                );
            }
        }
        for (name, kind, value_of) in [
            ("span_count", "counter", 0usize),
            ("span_duration_ns_total", "counter", 1),
            ("span_duration_ns_min", "gauge", 2),
            ("span_duration_ns_max", "gauge", 3),
        ] {
            if self.spans.is_empty() {
                break;
            }
            header(&mut out, name, kind);
            for s in &self.spans {
                let v = [s.count, s.total_ns, s.min_ns, s.max_ns][value_of];
                write_series(&mut out, name, &[], &[("span", &s.name)], &v.to_string());
            }
        }
        out
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn labels_eq(owned: &[(String, String)], borrowed: &[(&str, &str)]) -> bool {
    owned.len() == borrowed.len()
        && owned
            .iter()
            .zip(borrowed)
            .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
}

fn labels_json(labels: &[(String, String)]) -> Json {
    Json::Object(
        labels
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect(),
    )
}

fn parse_labels(value: &Json) -> Result<Vec<(String, String)>, String> {
    match value.get("labels") {
        Some(Json::Object(fields)) => fields
            .iter()
            .map(|(k, v)| match v {
                Json::Str(s) => Ok((k.clone(), s.clone())),
                _ => Err(format!("label {k:?} has a non-string value")),
            })
            .collect(),
        Some(_) => Err("\"labels\" must be an object".into()),
        None => Err("missing \"labels\" field".into()),
    }
}

fn parse_u64_array(value: &Json, key: &str) -> Result<Vec<u64>, String> {
    match value.get(key) {
        Some(Json::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| format!("\"{key}\" holds a non-u64 element"))
            })
            .collect(),
        _ => Err(format!("missing or non-array \"{key}\" field")),
    }
}

/// Writes one Prometheus series line; `extra` labels (e.g. `le`) follow the
/// sample's own labels.
fn write_series(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            for c in v.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.push_counter(
            "requests_total",
            &[("kind", "probability"), ("tier", "float")],
            7,
        );
        snap.push_counter(
            "requests_total",
            &[("kind", "probability"), ("tier", "exact")],
            2,
        );
        snap.push_gauge("lineage_cache_entries", &[], 3);
        snap.push_gauge("drift", &[("shard", "1")], -4);
        snap.histograms.push(HistogramSample {
            name: "request_latency_ns".into(),
            labels: vec![("kind".into(), "probability".into())],
            bounds: vec![1_000, 4_000],
            buckets: vec![1, 2, 3],
            count: 6,
            sum: 40_000,
        });
        snap.spans.push(SpanAggregate {
            name: "encode".into(),
            count: 2,
            total_ns: 300,
            min_ns: 100,
            max_ns: 200,
        });
        snap
    }

    #[test]
    fn json_lines_round_trip() {
        let snap = sample_snapshot();
        let encoded = snap.to_json_lines();
        let decoded = MetricsSnapshot::from_json_lines(&encoded).unwrap();
        assert_eq!(decoded, snap);
        // Blank lines are tolerated.
        let spaced = encoded.replace('\n', "\n\n");
        assert_eq!(MetricsSnapshot::from_json_lines(&spaced).unwrap(), snap);
    }

    #[test]
    fn json_lines_rejects_malformed_input() {
        for (input, want_line) in [
            ("{\"type\":\"counter\"}", 1),
            ("{\"type\":\"nope\",\"name\":\"x\"}", 1),
            ("not json", 1),
            (
                "{\"type\":\"span\",\"name\":\"s\",\"count\":1,\"total_ns\":1,\"min_ns\":1,\"max_ns\":1}\n{\"type\":\"gauge\",\"name\":\"g\"}",
                2,
            ),
        ] {
            let e = MetricsSnapshot::from_json_lines(input).unwrap_err();
            assert_eq!(e.line, want_line, "input: {input}");
            assert!(!e.to_string().is_empty());
        }
        // Histogram arity mismatch.
        let bad = "{\"type\":\"histogram\",\"name\":\"h\",\"labels\":{},\"bounds\":[1],\"buckets\":[1],\"count\":1,\"sum\":1}";
        assert!(MetricsSnapshot::from_json_lines(bad).is_err());
    }

    #[test]
    fn accessors_find_series() {
        let snap = sample_snapshot();
        assert_eq!(
            snap.counter(
                "requests_total",
                &[("kind", "probability"), ("tier", "float")]
            ),
            Some(7)
        );
        assert_eq!(snap.counter("requests_total", &[]), None);
        assert_eq!(snap.counter_total("requests_total"), 9);
        assert_eq!(snap.gauge("drift", &[("shard", "1")]), Some(-4));
        assert_eq!(snap.span("encode").unwrap().count, 2);
        assert!(snap.span("decode").is_none());
    }

    #[test]
    fn quantiles_estimate_from_buckets() {
        let h = HistogramSample {
            name: "latency".into(),
            labels: vec![],
            bounds: vec![1_000, 4_000, 16_000],
            // 5 in (0, 1000], 3 in (1000, 4000], 1 in (4000, 16000], 1 overflow.
            buckets: vec![5, 3, 1, 1],
            count: 10,
            sum: 0,
        };
        assert_eq!(h.quantile(0.50), Some(1_000));
        assert_eq!(h.quantile(0.75), Some(4_000));
        assert_eq!(h.quantile(0.90), Some(16_000));
        // The last observation sits in the overflow bucket: no finite bound.
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        let empty = HistogramSample {
            buckets: vec![0, 0, 0, 0],
            count: 0,
            ..h.clone()
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn quantiles_surface_in_both_exporters() {
        let snap = sample_snapshot();
        // sample_snapshot: buckets [1, 2, 3] over bounds [1000, 4000].
        let json = snap.to_json_lines();
        assert!(json.contains("\"p50\":4000"));
        assert!(json.contains("\"p95\":"));
        assert!(json.contains("\"p99\":"));
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE request_latency_ns_quantile gauge"));
        assert!(prom
            .contains("request_latency_ns_quantile{kind=\"probability\",quantile=\"0.5\"} 4000"));
        assert!(prom
            .contains("request_latency_ns_quantile{kind=\"probability\",quantile=\"0.95\"} +Inf"));
        // Derived fields do not perturb the exact round trip.
        assert_eq!(MetricsSnapshot::from_json_lines(&json).unwrap(), snap);
    }

    #[test]
    fn prometheus_format_shape() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE requests_total counter"));
        // One TYPE header even with two series of the same name.
        assert_eq!(text.matches("# TYPE requests_total counter").count(), 1);
        assert!(text.contains("requests_total{kind=\"probability\",tier=\"float\"} 7"));
        assert!(text.contains("lineage_cache_entries 3"));
        assert!(text.contains("drift{shard=\"1\"} -4"));
        // Cumulative buckets: 1, 3, 6 with the +Inf terminal.
        assert!(text.contains("request_latency_ns_bucket{kind=\"probability\",le=\"1000\"} 1"));
        assert!(text.contains("request_latency_ns_bucket{kind=\"probability\",le=\"4000\"} 3"));
        assert!(text.contains("request_latency_ns_bucket{kind=\"probability\",le=\"+Inf\"} 6"));
        assert!(text.contains("request_latency_ns_sum{kind=\"probability\"} 40000"));
        assert!(text.contains("request_latency_ns_count{kind=\"probability\"} 6"));
        assert!(text.contains("span_count{span=\"encode\"} 2"));
        assert!(text.contains("span_duration_ns_total{span=\"encode\"} 300"));
        assert!(text.contains("span_duration_ns_min{span=\"encode\"} 100"));
        assert!(text.contains("span_duration_ns_max{span=\"encode\"} 200"));
        // Label values with quotes/backslashes are escaped.
        let mut snap = MetricsSnapshot::default();
        snap.push_counter("c", &[("k", "a\"b\\c")], 1);
        assert!(snap.to_prometheus().contains("c{k=\"a\\\"b\\\\c\"} 1"));
    }
}
