//! Chrome-trace / Perfetto export of the span event ring.
//!
//! [`to_chrome_trace`] renders drained [`SpanEvent`]s in the Trace Event
//! Format (the `{"traceEvents": [...]}` JSON object of `ph:"X"` complete
//! events) that <https://ui.perfetto.dev> and `chrome://tracing` open
//! directly. Like every exporter in this crate it is std-only and built on
//! the in-tree JSON writer, so escaping is exact and the output stays
//! within the integer-only subset the in-tree parser accepts.
//!
//! Mapping:
//!
//! * `pid` — the span's trace id, so each request renders as its own
//!   "process" track group and cross-thread children stay visually grouped
//!   with their root.
//! * `tid` — the dense process-wide thread index stamped on the event
//!   ([`SpanEvent::thread`]); RAII spans nest properly in time per thread,
//!   which is exactly the invariant the `X`-event renderer assumes.
//! * `ts`/`dur` — microseconds (the format's unit), derived from the
//!   nanosecond span clock by flooring the start and ceiling the duration
//!   (so sub-microsecond spans stay visible). Events are sorted by start
//!   time, which the format requires of writers that emit `X` events.
//! * `args` — the span id, parent id, trace id, and every label, so
//!   nothing recorded is lost in the export.

use crate::json::Json;
use crate::registry::SpanEvent;

/// Renders finished spans as a Chrome-trace / Perfetto `trace_events` JSON
/// document. Pass the result of [`Telemetry::drain_events`] (or a
/// [`Registry::events_for_trace`] slice for a single request).
///
/// [`Telemetry::drain_events`]: crate::Telemetry::drain_events
/// [`Registry::events_for_trace`]: crate::Registry::events_for_trace
///
/// ```
/// use treelineage_telemetry::{to_chrome_trace, Telemetry};
///
/// let telemetry = Telemetry::enabled();
/// {
///     let _root = telemetry.span("request");
///     let _child = telemetry.span("encode");
/// }
/// let trace = to_chrome_trace(&telemetry.drain_events());
/// assert!(trace.starts_with("{\"traceEvents\":["));
/// ```
pub fn to_chrome_trace(events: &[SpanEvent]) -> String {
    let mut ordered: Vec<&SpanEvent> = events.iter().collect();
    ordered.sort_by_key(|e| (e.start_ns, e.id));
    let trace_events: Vec<Json> = ordered.into_iter().map(event_json).collect();
    let doc = Json::Object(vec![
        ("traceEvents".to_string(), Json::Array(trace_events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ]);
    let mut out = String::new();
    doc.write(&mut out);
    out
}

fn event_json(event: &SpanEvent) -> Json {
    let mut args = vec![
        ("id".to_string(), Json::UInt(event.id)),
        ("trace".to_string(), Json::UInt(event.trace)),
    ];
    if let Some(parent) = event.parent {
        args.push(("parent".to_string(), Json::UInt(parent)));
    }
    for (key, value) in &event.labels {
        args.push((key.clone(), Json::Str(value.clone())));
    }
    Json::Object(vec![
        ("name".to_string(), Json::Str(event.name.to_string())),
        ("cat".to_string(), Json::Str("span".to_string())),
        ("ph".to_string(), Json::Str("X".to_string())),
        ("ts".to_string(), Json::UInt(event.start_ns / 1_000)),
        (
            "dur".to_string(),
            Json::UInt(event.duration_ns.div_ceil(1_000).max(1)),
        ),
        ("pid".to_string(), Json::UInt(event.trace)),
        ("tid".to_string(), Json::UInt(event.thread)),
        ("args".to_string(), Json::Object(args)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::Telemetry;
    use proptest::prelude::*;

    fn parse_trace(rendered: &str) -> Vec<json::Json> {
        let doc = json::parse(rendered).expect("export parses as JSON");
        let events = doc.get("traceEvents").expect("traceEvents key");
        match events {
            json::Json::Array(items) => items.clone(),
            _ => panic!("traceEvents must be an array"),
        }
    }

    #[test]
    fn empty_ring_exports_empty_document() {
        let rendered = to_chrome_trace(&[]);
        assert!(parse_trace(&rendered).is_empty());
    }

    #[test]
    fn live_spans_export_with_structure() {
        let t = Telemetry::enabled();
        {
            let mut root = t.span("request");
            root.label("kind", "probability");
            let _child = t.span("encode");
        }
        let events = t.drain_events();
        let rendered = to_chrome_trace(&events);
        let items = parse_trace(&rendered);
        assert_eq!(items.len(), 2);
        for item in &items {
            assert_eq!(item.get("ph").unwrap().as_str(), Some("X"));
            assert!(item.get("dur").unwrap().as_u64().unwrap() >= 1);
        }
        let root = items
            .iter()
            .find(|i| i.get("name").unwrap().as_str() == Some("request"))
            .unwrap();
        assert_eq!(
            root.get("args").unwrap().get("kind").unwrap().as_str(),
            Some("probability")
        );
        let child = items
            .iter()
            .find(|i| i.get("name").unwrap().as_str() == Some("encode"))
            .unwrap();
        assert_eq!(
            child.get("args").unwrap().get("parent").unwrap().as_u64(),
            root.get("args").unwrap().get("id").unwrap().as_u64()
        );
        // Both spans belong to the same trace, hence the same pid track.
        assert_eq!(
            child.get("pid").unwrap().as_u64(),
            root.get("pid").unwrap().as_u64()
        );
    }

    /// Palette of adversarial characters for names and labels: quotes,
    /// backslashes, control characters, non-ASCII.
    const NASTY: [char; 9] = ['"', '\\', '\n', '\t', '\u{0}', '\u{7f}', 'é', '漢', 'x'];

    /// Strategy for adversarial label/name text drawn from [`NASTY`].
    fn nasty_text() -> impl Strategy<Value = String> {
        proptest::collection::vec(0usize..NASTY.len(), 0..12)
            .prop_map(|indices| indices.into_iter().map(|i| NASTY[i]).collect())
    }

    /// Builds a well-formed span forest: each event may parent to an
    /// earlier event (same trace), timestamps are monotone in index.
    fn span_forest() -> impl Strategy<Value = Vec<SpanEvent>> {
        proptest::collection::vec(
            (
                nasty_text(),
                // 0 encodes "root"; p > 0 encodes "parent is event p-1".
                0usize..9,
                0u64..1_000_000,
                proptest::collection::vec((nasty_text(), nasty_text()), 0..3),
            ),
            0..16,
        )
        .prop_map(|rows| {
            let mut events: Vec<SpanEvent> = Vec::with_capacity(rows.len());
            for (i, (name, parent_raw, dur, labels)) in rows.into_iter().enumerate() {
                let parent = parent_raw
                    .checked_sub(1)
                    .filter(|&p| p < i)
                    .map(|p| events[p].id);
                let trace = match parent {
                    Some(pid) => events.iter().find(|e| e.id == pid).unwrap().trace,
                    None => 1_000 + i as u64,
                };
                events.push(SpanEvent {
                    id: i as u64 + 1,
                    parent,
                    trace,
                    thread: (i % 3) as u64,
                    // Span names are static in the live API; leaking here
                    // is confined to the proptest cases.
                    name: Box::leak(name.into_boxed_str()),
                    start_ns: 10_000 * i as u64,
                    duration_ns: dur,
                    labels,
                });
            }
            events
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The satellite-task contract: the export parses as trace_events
        /// JSON under escaper-adversarial names, timestamps are monotone,
        /// and every `parent` arg refers to an exported span id.
        #[test]
        fn export_is_valid_trace_events_json(events in span_forest()) {
            let rendered = to_chrome_trace(&events);
            let items = parse_trace(&rendered);
            prop_assert_eq!(items.len(), events.len());
            let mut ids = std::collections::BTreeSet::new();
            let mut last_ts = 0u64;
            for item in &items {
                prop_assert_eq!(item.get("ph").unwrap().as_str(), Some("X"));
                let ts = item.get("ts").unwrap().as_u64().unwrap();
                prop_assert!(ts >= last_ts, "timestamps must be monotone");
                last_ts = ts;
                prop_assert!(item.get("dur").unwrap().as_u64().unwrap() >= 1);
                ids.insert(item.get("args").unwrap().get("id").unwrap().as_u64().unwrap());
            }
            for (item, event) in items.iter().zip(events.iter()) {
                // Sort is stable on (start_ns, id) and ids ascend with
                // start order in this strategy, so ordering matches.
                prop_assert_eq!(item.get("name").unwrap().as_str(), Some(event.name));
                if let Some(parent) = item.get("args").unwrap().get("parent") {
                    prop_assert!(ids.contains(&parent.as_u64().unwrap()),
                        "every parent id must be present in the export");
                }
                prop_assert_eq!(
                    item.get("pid").unwrap().as_u64(),
                    Some(event.trace)
                );
            }
        }
    }
}
