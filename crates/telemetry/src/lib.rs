//! Std-only telemetry substrate for the treelineage workspace: atomic
//! counters/gauges/histograms, hierarchical monotonic-clock spans, and
//! structured export — with a handle that is strictly zero-cost when
//! disabled.
//!
//! The paper's tractability results (linear-time lineage, Theorem 6.11 of
//! Amarilli–Bourhis–Senellart 2016) are constant-factor claims; this crate
//! is how the system *shows* those constants instead of asserting them.
//! Every pipeline stage (encode → automaton compile → d-SDNNF
//! compile/merge → eval), every pool worker, and every serving-tier
//! decision records into one [`Registry`], and the whole state exports as a
//! stable [`MetricsSnapshot`] in JSON-lines or Prometheus text format —
//! all with in-tree formatting, no dependencies.
//!
//! # Design
//!
//! * [`Telemetry`] is the handle threaded through configs. It wraps
//!   `Option<Arc<Registry>>`; the disabled handle (the default) makes every
//!   recording call a branch on `None` — no clock read, no allocation, no
//!   lock. The compiled artifacts are byte-identical with telemetry on or
//!   off (pinned by a differential test in the umbrella crate), because
//!   instrumentation only ever *observes*.
//! * [`Span`] is an RAII guard: created via [`Telemetry::span`], it times
//!   its scope on the monotonic clock and links to the innermost span open
//!   on the same thread — or, across threads, to the [`SpanContext`]
//!   (trace id + parent span id) captured at task-spawn time and installed
//!   on the worker via [`Telemetry::install_context`]. Finished spans land
//!   in a bounded event ring (drained via [`Telemetry::drain_events`],
//!   queried per trace via [`Telemetry::events_for_trace`]) and in
//!   per-name aggregates; [`to_chrome_trace`] renders drained events as
//!   Chrome-trace/Perfetto `trace_events` JSON.
//! * [`MetricsSnapshot`] is plain data with integer-only values, so the
//!   JSON round trip ([`MetricsSnapshot::to_json_lines`] /
//!   [`MetricsSnapshot::from_json_lines`]) is exact.
//!
//! ```
//! use treelineage_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::enabled();
//! {
//!     let mut span = telemetry.span("encode");
//!     span.label("nodes", 42);
//!     // ... the work being timed ...
//! }
//! telemetry.counter_add("requests_total", &[("tier", "float")], 1);
//! let snapshot = telemetry.snapshot();
//! assert_eq!(snapshot.span("encode").unwrap().count, 1);
//! let json = snapshot.to_json_lines();
//! let parsed = treelineage_telemetry::MetricsSnapshot::from_json_lines(&json).unwrap();
//! assert_eq!(parsed, snapshot);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod perfetto;
mod registry;
mod snapshot;

pub use perfetto::to_chrome_trace;
pub use registry::{
    ContextGuard, Histogram, Registry, Span, SpanContext, SpanEvent, Telemetry,
    DEFAULT_LATENCY_BOUNDS_NS,
};
pub use snapshot::{
    CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, SnapshotParseError, SpanAggregate,
};
