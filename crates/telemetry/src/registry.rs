//! The metric registry and the zero-cost-when-disabled [`Telemetry`] handle.
//!
//! A [`Registry`] interns counters, gauges, and fixed-bucket histograms by
//! `(name, labels)` key and records hierarchical [`Span`]s. The [`Telemetry`]
//! handle wraps `Option<Arc<Registry>>`: every recording method first checks
//! the option, so the disabled handle performs no clock reads, no allocation,
//! and no synchronization on the hot path — the overhead-guard test in
//! `tests/overhead.rs` pins this to literally zero allocations.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Display;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use crate::snapshot::{
    CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, SpanAggregate,
};

/// Default histogram bucket upper bounds for latencies, in nanoseconds:
/// powers of four from 1 µs to ~4.2 s. Twelve bounds plus the implicit
/// overflow bucket cover everything from a cache hit to a Karp–Luby run.
pub const DEFAULT_LATENCY_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

/// How many span events the bounded ring keeps before dropping the oldest.
const EVENT_CAPACITY: usize = 4096;

/// Locks a mutex, recovering from poison: telemetry state is a monotonic
/// bag of counters, valid after any partial update, so a panic elsewhere
/// must not wedge the registry.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Owned `(name, labels)` identity of a metric series.
type MetricKey = (String, Vec<(String, String)>);

fn key_of(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    (
        name.to_string(),
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    )
}

/// A fixed-bucket histogram over `u64` observations (typically nanoseconds).
///
/// Buckets are cumulative only at export time; internally each slot counts
/// the observations that landed in `(prev_bound, bound]`, with one final
/// overflow slot above the last bound. All updates are relaxed atomics —
/// the histogram is a statistic, not a synchronization point.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn sample(&self, name: &str, labels: &[(String, String)]) -> HistogramSample {
        HistogramSample {
            name: name.to_string(),
            labels: labels.to_vec(),
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Per-name aggregate over finished spans.
#[derive(Debug)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// One finished span, as drained from the bounded event ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique id of the span within its registry.
    pub id: u64,
    /// Id of the enclosing span (same-thread stack, ambient
    /// [`SpanContext`], or explicit parent), if any.
    pub parent: Option<u64>,
    /// Trace id shared by every span descending from the same root span.
    pub trace: u64,
    /// Process-wide index of the thread the span ran on (dense small
    /// integers, suitable as a `tid` in trace viewers).
    pub thread: u64,
    /// Static stage name (e.g. `"encode"`, `"dsdnnf_merge"`).
    pub name: &'static str,
    /// Start time in nanoseconds since the registry was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds (monotonic clock).
    pub duration_ns: u64,
    /// Labels attached via [`Span::label`].
    pub labels: Vec<(String, String)>,
}

/// The position of a span in its trace: the trace id plus the span's own
/// id, exactly what a child opened elsewhere needs to parent correctly.
///
/// Capture one with [`Telemetry::current_context`] (or [`Span::context`])
/// at task-spawn time, move it into the worker, and install it there with
/// [`Telemetry::install_context`]; spans the worker opens then join the
/// originating trace instead of becoming orphan roots. `Copy` so it
/// crosses `std::thread::scope` closures without ceremony.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanContext {
    /// Trace id of the root request/operation this context belongs to.
    pub trace: u64,
    /// Id of the span that is the parent for work opened under this
    /// context.
    pub span: u64,
}

/// A registry of metric series and span records. Usually reached through a
/// [`Telemetry`] handle; create one directly to share a registry between
/// several handles or to export outside an engine session.
#[derive(Debug)]
pub struct Registry {
    epoch: Instant,
    next_span_id: AtomicU64,
    next_trace_id: AtomicU64,
    counters: Mutex<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<Histogram>>>,
    span_aggregates: Mutex<BTreeMap<&'static str, SpanAgg>>,
    events: Mutex<VecDeque<SpanEvent>>,
    dropped_events: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry; its creation instant is the epoch all
    /// span start times are measured from.
    pub fn new() -> Self {
        Registry {
            epoch: Instant::now(),
            next_span_id: AtomicU64::new(1),
            next_trace_id: AtomicU64::new(1),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            span_aggregates: Mutex::new(BTreeMap::new()),
            events: Mutex::new(VecDeque::new()),
            dropped_events: AtomicU64::new(0),
        }
    }

    /// Nanoseconds elapsed since the registry was created.
    pub fn uptime_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Interns (or finds) the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let mut map = lock(&self.counters);
        Arc::clone(
            map.entry(key_of(name, labels))
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Adds `delta` to the counter `name{labels}`.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        self.counter(name, labels)
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Interns (or finds) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<AtomicI64> {
        let mut map = lock(&self.gauges);
        Arc::clone(
            map.entry(key_of(name, labels))
                .or_insert_with(|| Arc::new(AtomicI64::new(0))),
        )
    }

    /// Sets the gauge `name{labels}` to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.gauge(name, labels).store(value, Ordering::Relaxed);
    }

    /// Interns (or finds) the histogram `name{labels}` with the given bucket
    /// bounds. Bounds are fixed at first interning; later calls with
    /// different bounds reuse the existing series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        Arc::clone(
            map.entry(key_of(name, labels))
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Records a nanosecond observation into `name{labels}` using the
    /// default latency bounds.
    pub fn observe_ns(&self, name: &str, labels: &[(&str, &str)], ns: u64) {
        self.histogram(name, labels, &DEFAULT_LATENCY_BOUNDS_NS)
            .observe(ns);
    }

    /// Number of span events dropped because the bounded ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events.load(Ordering::Relaxed)
    }

    fn record_span(&self, event: SpanEvent) {
        {
            let mut aggs = lock(&self.span_aggregates);
            let agg = aggs.entry(event.name).or_insert(SpanAgg {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
            agg.count += 1;
            agg.total_ns += event.duration_ns;
            agg.min_ns = agg.min_ns.min(event.duration_ns);
            agg.max_ns = agg.max_ns.max(event.duration_ns);
        }
        let mut events = lock(&self.events);
        if events.len() >= EVENT_CAPACITY {
            events.pop_front();
            self.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Removes and returns every buffered span event, oldest first.
    pub fn drain_events(&self) -> Vec<SpanEvent> {
        lock(&self.events).drain(..).collect()
    }

    /// Copies (without draining) every buffered span event belonging to
    /// the given trace, oldest first. Spans evicted from the bounded ring
    /// or already drained are gone — callers wanting a complete subtree
    /// must read promptly after the root span closes (the flight recorder
    /// in `treelineage-engine` does exactly that).
    pub fn events_for_trace(&self, trace: u64) -> Vec<SpanEvent> {
        lock(&self.events)
            .iter()
            .filter(|e| e.trace == trace)
            .cloned()
            .collect()
    }

    /// A point-in-time copy of every series and span aggregate, ordered by
    /// `(name, labels)` so repeated snapshots of an idle registry are equal.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for ((name, labels), value) in lock(&self.counters).iter() {
            snap.counters.push(CounterSample {
                name: name.clone(),
                labels: labels.clone(),
                value: value.load(Ordering::Relaxed),
            });
        }
        // Ring overflow is an observability loss; surface it as a counter
        // so both exporters (and anything scraping them) can alarm on it.
        snap.counters.push(CounterSample {
            name: "telemetry_dropped_span_events_total".to_string(),
            labels: Vec::new(),
            value: self.dropped_events(),
        });
        snap.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        for ((name, labels), value) in lock(&self.gauges).iter() {
            snap.gauges.push(GaugeSample {
                name: name.clone(),
                labels: labels.clone(),
                value: value.load(Ordering::Relaxed),
            });
        }
        for ((name, labels), histogram) in lock(&self.histograms).iter() {
            snap.histograms.push(histogram.sample(name, labels));
        }
        for (name, agg) in lock(&self.span_aggregates).iter() {
            snap.spans.push(SpanAggregate {
                name: name.to_string(),
                count: agg.count,
                total_ns: agg.total_ns,
                min_ns: agg.min_ns,
                max_ns: agg.max_ns,
            });
        }
        snap
    }
}

thread_local! {
    /// Per-thread stack of open `(span id, trace id)` pairs; the top is
    /// the parent of the next span opened on this thread.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };

    /// Ambient [`SpanContext`] installed on this thread (typically by a
    /// pool worker via [`Telemetry::install_context`]). Consulted when the
    /// span stack is empty, so cross-thread work parents to the span that
    /// spawned it instead of starting an orphan trace.
    static AMBIENT_CONTEXT: Cell<Option<SpanContext>> = const { Cell::new(None) };

    /// Lazily assigned process-wide index of this thread (see
    /// [`SpanEvent::thread`]).
    static THREAD_INDEX: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Source of the dense per-thread indices stamped on [`SpanEvent`]s.
static NEXT_THREAD_INDEX: AtomicU64 = AtomicU64::new(0);

fn thread_index() -> u64 {
    THREAD_INDEX.with(|slot| match slot.get() {
        Some(index) => index,
        None => {
            let index = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
            slot.set(Some(index));
            index
        }
    })
}

/// RAII guard returned by [`Telemetry::install_context`]; restores the
/// thread's previous ambient [`SpanContext`] when dropped. Must be dropped
/// on the thread it was created on (the ambient slot is thread-local) —
/// in practice the guard lives for the body of a pool worker's closure.
#[derive(Debug)]
#[must_use = "dropping the guard immediately uninstalls the context"]
pub struct ContextGuard {
    previous: Option<SpanContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        AMBIENT_CONTEXT.with(|slot| slot.set(self.previous));
    }
}

/// A handle to an optional [`Registry`].
///
/// Cloning is cheap (an `Arc` clone or a `None` copy). The disabled handle —
/// [`Telemetry::disabled`], also the `Default` — turns every recording call
/// into a branch on `None`: no clock read, no allocation, no locking.
/// Equality is identity: two handles are equal iff they are both disabled or
/// share the same registry allocation (which lets containing configs keep a
/// derived `PartialEq`).
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Telemetry {
    /// The no-op handle: records nothing, costs nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A handle over a fresh private registry.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Registry::new())),
        }
    }

    /// A handle sharing an existing registry.
    pub fn from_registry(registry: Arc<Registry>) -> Self {
        Telemetry {
            inner: Some(registry),
        }
    }

    /// Whether recording calls will actually record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The underlying registry, when enabled.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.inner.as_ref()
    }

    /// Adds `delta` to a counter (no-op when disabled).
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        if let Some(registry) = &self.inner {
            registry.counter_add(name, labels, delta);
        }
    }

    /// Sets a gauge (no-op when disabled).
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: i64) {
        if let Some(registry) = &self.inner {
            registry.gauge_set(name, labels, value);
        }
    }

    /// Records a nanosecond latency observation (no-op when disabled).
    pub fn observe_ns(&self, name: &str, labels: &[(&str, &str)], ns: u64) {
        if let Some(registry) = &self.inner {
            registry.observe_ns(name, labels, ns);
        }
    }

    /// Opens a span named `name`, parented to the innermost span already
    /// open on this thread — or, when none is open, to the ambient
    /// [`SpanContext`] installed via [`Telemetry::install_context`] (so
    /// pool-worker spans join the trace that spawned them). With neither,
    /// the span starts a fresh trace as a root. The span records itself
    /// when dropped. On a disabled handle this returns an inert guard
    /// without reading the clock.
    pub fn span(&self, name: &'static str) -> Span {
        let Some(registry) = &self.inner else {
            return Span(None);
        };
        let context = SPAN_STACK
            .with(|s| s.borrow().last().copied())
            .map(|(span, trace)| SpanContext { trace, span })
            .or_else(|| AMBIENT_CONTEXT.with(|slot| slot.get()));
        match context {
            Some(ctx) => self.open_span(registry, name, Some(ctx.span), ctx.trace),
            None => {
                let trace = registry.next_trace_id.fetch_add(1, Ordering::Relaxed);
                self.open_span(registry, name, None, trace)
            }
        }
    }

    /// Opens a root span in a fresh trace, ignoring both the thread's span
    /// stack and any installed ambient context. This is how a serving loop
    /// starts the one-trace-per-request spans that the flight recorder and
    /// `explain` reports key on.
    pub fn span_root(&self, name: &'static str) -> Span {
        let Some(registry) = &self.inner else {
            return Span(None);
        };
        let trace = registry.next_trace_id.fetch_add(1, Ordering::Relaxed);
        self.open_span(registry, name, None, trace)
    }

    /// Opens a span with an explicit parent id (e.g. to link work handed to
    /// a pool worker back to the span that enqueued it). `None` makes it a
    /// root span regardless of what is open on this thread. The trace id is
    /// adopted from the thread's current context when one exists and is
    /// fresh otherwise; prefer capturing a full [`SpanContext`] and
    /// [`Telemetry::install_context`] when crossing threads, which keeps
    /// parent *and* trace.
    pub fn span_with_parent(&self, name: &'static str, parent: Option<u64>) -> Span {
        let Some(registry) = &self.inner else {
            return Span(None);
        };
        let trace = SPAN_STACK
            .with(|s| s.borrow().last().copied())
            .map(|(_, trace)| trace)
            .or_else(|| AMBIENT_CONTEXT.with(|slot| slot.get()).map(|c| c.trace))
            .unwrap_or_else(|| registry.next_trace_id.fetch_add(1, Ordering::Relaxed));
        self.open_span(registry, name, parent, trace)
    }

    fn open_span(
        &self,
        registry: &Arc<Registry>,
        name: &'static str,
        parent: Option<u64>,
        trace: u64,
    ) -> Span {
        let id = registry.next_span_id.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| s.borrow_mut().push((id, trace)));
        Span(Some(Box::new(ActiveSpan {
            registry: Arc::clone(registry),
            name,
            id,
            parent,
            trace,
            thread: thread_index(),
            start_ns: registry.uptime_ns(),
            start: Instant::now(),
            labels: Vec::new(),
        })))
    }

    /// The [`SpanContext`] a child span opened *right now on this thread*
    /// would adopt: the innermost open span if any, else the installed
    /// ambient context. `None` on a disabled handle (nothing records, so
    /// there is nothing to propagate) or when no span is open. Capture this
    /// immediately before handing work to another thread.
    pub fn current_context(&self) -> Option<SpanContext> {
        self.inner.as_ref()?;
        SPAN_STACK
            .with(|s| s.borrow().last().copied())
            .map(|(span, trace)| SpanContext { trace, span })
            .or_else(|| AMBIENT_CONTEXT.with(|slot| slot.get()))
    }

    /// Installs `context` as this thread's ambient [`SpanContext`] until
    /// the returned guard drops (which restores whatever was installed
    /// before). Installing `None` is a no-op shim so spawn sites can write
    /// `install_context(telemetry.current_context())` unconditionally.
    pub fn install_context(&self, context: Option<SpanContext>) -> ContextGuard {
        let previous = AMBIENT_CONTEXT.with(|slot| {
            let previous = slot.get();
            if context.is_some() {
                slot.set(context);
            }
            previous
        });
        ContextGuard { previous }
    }

    /// Copies (without draining) buffered span events belonging to `trace`;
    /// empty when disabled. See [`Registry::events_for_trace`].
    pub fn events_for_trace(&self, trace: u64) -> Vec<SpanEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(registry) => registry.events_for_trace(trace),
        }
    }

    /// A point-in-time snapshot; empty when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(registry) => registry.snapshot(),
        }
    }

    /// Drains buffered span events; empty when disabled.
    pub fn drain_events(&self) -> Vec<SpanEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(registry) => registry.drain_events(),
        }
    }
}

struct ActiveSpan {
    registry: Arc<Registry>,
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    trace: u64,
    thread: u64,
    start_ns: u64,
    start: Instant,
    labels: Vec<(String, String)>,
}

impl std::fmt::Debug for ActiveSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSpan")
            .field("name", &self.name)
            .field("id", &self.id)
            .field("parent", &self.parent)
            .finish_non_exhaustive()
    }
}

/// An RAII guard for one timed pipeline stage; records a [`SpanEvent`] into
/// its registry on drop. Obtained from [`Telemetry::span`]; inert (a bare
/// `None`) when the handle is disabled.
#[derive(Debug)]
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span(Option<Box<ActiveSpan>>);

impl Span {
    /// The span's registry-unique id, for explicit parent links across
    /// threads. `None` on an inert span.
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|s| s.id)
    }

    /// The span's [`SpanContext`] (its trace id plus its own id) — what a
    /// child opened on another thread should install to parent here.
    /// `None` on an inert span.
    pub fn context(&self) -> Option<SpanContext> {
        self.0.as_ref().map(|s| SpanContext {
            trace: s.trace,
            span: s.id,
        })
    }

    /// Attaches a label. The value is only formatted when the span is live,
    /// so callers may pass `Display` values without allocating on the
    /// disabled path.
    pub fn label(&mut self, key: &'static str, value: impl Display) {
        if let Some(active) = &mut self.0 {
            active.labels.push((key.to_string(), value.to_string()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let duration_ns = active.start.elapsed().as_nanos() as u64;
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Usually the top of the stack; a linear scan keeps the
                // invariant even if guards are dropped out of order.
                if let Some(pos) = stack.iter().rposition(|&(id, _)| id == active.id) {
                    stack.remove(pos);
                }
            });
            active.registry.record_span(SpanEvent {
                id: active.id,
                parent: active.parent,
                trace: active.trace,
                thread: active.thread,
                name: active.name,
                start_ns: active.start_ns,
                duration_ns,
                labels: active.labels,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter_add("c", &[], 1);
        t.gauge_set("g", &[], 5);
        t.observe_ns("h", &[], 100);
        let mut span = t.span("stage");
        span.label("k", 1);
        assert_eq!(span.id(), None);
        drop(span);
        assert_eq!(t.snapshot(), MetricsSnapshot::default());
        assert!(t.drain_events().is_empty());
    }

    #[test]
    fn counters_gauges_histograms_record() {
        let t = Telemetry::enabled();
        t.counter_add("requests_total", &[("kind", "probability")], 2);
        t.counter_add("requests_total", &[("kind", "probability")], 3);
        t.gauge_set("occupancy", &[], -7);
        t.observe_ns("latency_ns", &[], 2_000);
        t.observe_ns("latency_ns", &[], 5_000_000_000);
        let snap = t.snapshot();
        assert_eq!(
            snap.counter("requests_total", &[("kind", "probability")]),
            Some(5)
        );
        assert_eq!(snap.gauge("occupancy", &[]), Some(-7));
        let h = &snap.histograms[0];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 5_000_002_000);
        // 2 µs lands in the (1 µs, 4 µs] bucket; 5 s lands in overflow.
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[h.buckets.len() - 1], 1);
        assert_eq!(h.buckets.len(), h.bounds.len() + 1);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let t = Telemetry::enabled();
        {
            let outer = t.span("outer");
            let outer_id = outer.id();
            {
                let mut inner = t.span("inner");
                inner.label("shard", 3);
                assert_ne!(inner.id(), outer_id);
            }
            let sibling = t.span("inner");
            drop(sibling);
        }
        let events = t.drain_events();
        assert_eq!(events.len(), 3);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        for inner in events.iter().filter(|e| e.name == "inner") {
            assert_eq!(inner.parent, Some(outer.id));
        }
        assert_eq!(
            events.iter().find(|e| !e.labels.is_empty()).unwrap().labels,
            vec![("shard".to_string(), "3".to_string())]
        );
        let snap = t.snapshot();
        let agg = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(agg.count, 2);
        assert!(agg.min_ns <= agg.max_ns);
        assert!(agg.total_ns >= agg.max_ns);
        // Drained events do not clear aggregates.
        assert!(t.drain_events().is_empty());
        assert_eq!(t.snapshot().spans.len(), 2);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let t = Telemetry::enabled();
        let root = t.span("root");
        let root_id = root.id();
        let t2 = t.clone();
        std::thread::spawn(move || {
            let child = t2.span_with_parent("worker", root_id);
            assert_eq!(child.0.as_ref().unwrap().parent, root_id);
        })
        .join()
        .unwrap();
        drop(root);
        let events = t.drain_events();
        assert_eq!(
            events.iter().find(|e| e.name == "worker").unwrap().parent,
            root_id
        );
    }

    #[test]
    fn shared_registry_and_identity_equality() {
        let registry = Arc::new(Registry::new());
        let a = Telemetry::from_registry(Arc::clone(&registry));
        let b = Telemetry::from_registry(Arc::clone(&registry));
        a.counter_add("c", &[], 1);
        b.counter_add("c", &[], 1);
        assert_eq!(registry.snapshot().counter("c", &[]), Some(2));
        assert_eq!(a, b);
        assert_eq!(a, a.clone());
        assert_eq!(Telemetry::disabled(), Telemetry::default());
        assert_ne!(a, Telemetry::enabled());
        assert_ne!(a, Telemetry::disabled());
    }

    #[test]
    fn ambient_context_parents_across_threads() {
        let t = Telemetry::enabled();
        let root = t.span("root");
        let ctx = t.current_context();
        assert_eq!(ctx, root.context());
        let t2 = t.clone();
        std::thread::spawn(move || {
            assert_eq!(t2.current_context(), None);
            let _guard = t2.install_context(ctx);
            assert_eq!(t2.current_context(), ctx);
            let child = t2.span("worker");
            let child_ctx = child.context().unwrap();
            assert_eq!(Some(child_ctx.trace), ctx.map(|c| c.trace));
            drop(child);
        })
        .join()
        .unwrap();
        let root_ctx = root.context().unwrap();
        drop(root);
        let events = t.drain_events();
        let worker = events.iter().find(|e| e.name == "worker").unwrap();
        assert_eq!(worker.parent, Some(root_ctx.span));
        assert_eq!(worker.trace, root_ctx.trace);
        let root_event = events.iter().find(|e| e.name == "root").unwrap();
        assert_eq!(root_event.parent, None);
        assert_ne!(worker.thread, root_event.thread);
    }

    #[test]
    fn install_context_nests_and_restores() {
        let t = Telemetry::enabled();
        let a = t.span("a");
        let b = t.span("b");
        let ctx_a = a.context();
        let ctx_b = b.context();
        drop(b);
        drop(a);
        assert_eq!(t.current_context(), None);
        {
            let _outer = t.install_context(ctx_a);
            assert_eq!(t.current_context(), ctx_a);
            {
                let _inner = t.install_context(ctx_b);
                assert_eq!(t.current_context(), ctx_b);
                // Installing `None` keeps the current context.
                let _noop = t.install_context(None);
                assert_eq!(t.current_context(), ctx_b);
            }
            assert_eq!(t.current_context(), ctx_a);
        }
        assert_eq!(t.current_context(), None);
        // An open span shadows the ambient context.
        let _guard = t.install_context(ctx_a);
        let c = t.span("c");
        assert_eq!(t.current_context(), c.context());
        drop(c);
        t.drain_events();
    }

    #[test]
    fn span_root_starts_fresh_traces() {
        let t = Telemetry::enabled();
        let outer = t.span("outer");
        let outer_trace = outer.context().unwrap().trace;
        let root = t.span_root("request");
        let root_trace = root.context().unwrap().trace;
        assert_ne!(root_trace, outer_trace);
        let child = t.span("stage");
        // The stack makes the detached root the parent of the next span.
        assert_eq!(child.context().unwrap().trace, root_trace);
        drop(child);
        drop(root);
        drop(outer);
        let by_trace = t.events_for_trace(root_trace);
        assert_eq!(by_trace.len(), 2);
        assert!(by_trace.iter().any(|e| e.name == "request"));
        assert!(by_trace.iter().any(|e| e.name == "stage"));
        assert_eq!(t.events_for_trace(outer_trace).len(), 1);
        // events_for_trace does not drain.
        assert_eq!(t.drain_events().len(), 3);
        assert!(t.events_for_trace(root_trace).is_empty());
    }

    #[test]
    fn dropped_events_surface_in_snapshot() {
        let t = Telemetry::enabled();
        drop(t.span("s"));
        assert_eq!(
            t.snapshot()
                .counter("telemetry_dropped_span_events_total", &[]),
            Some(0)
        );
        for _ in 0..EVENT_CAPACITY {
            drop(t.span("s"));
        }
        assert_eq!(
            t.snapshot()
                .counter("telemetry_dropped_span_events_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn disabled_handle_has_no_context() {
        let t = Telemetry::disabled();
        assert_eq!(t.current_context(), None);
        let _guard = t.install_context(None);
        assert_eq!(t.current_context(), None);
        assert!(t.span_root("request").context().is_none());
        assert!(t.events_for_trace(1).is_empty());
    }

    #[test]
    fn event_ring_is_bounded() {
        let t = Telemetry::enabled();
        for _ in 0..(EVENT_CAPACITY + 10) {
            drop(t.span("s"));
        }
        let registry = t.registry().unwrap();
        assert_eq!(registry.dropped_events(), 10);
        assert_eq!(t.drain_events().len(), EVENT_CAPACITY);
        let agg = &t.snapshot().spans[0];
        assert_eq!(agg.count, (EVENT_CAPACITY + 10) as u64);
    }
}
