//! Minimal in-tree JSON support: just enough to serialize and parse the
//! [`MetricsSnapshot`](crate::MetricsSnapshot) JSON-lines format without
//! external dependencies.
//!
//! Numbers are restricted to integers (optionally signed). Snapshot values
//! are all integral (nanoseconds, counts, capacities), so the round trip is
//! exact — no float formatting or parsing ambiguity can creep in. Object key
//! order is preserved (keys are stored as a vector of pairs, not a map), so
//! a parse/serialize cycle reproduces the original byte stream for the
//! subset this module emits.

use std::fmt::Write as _;

/// A JSON value over the integer-only subset this crate emits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Json {
    /// An object; key order is preserved.
    Object(Vec<(String, Json)>),
    /// An array.
    Array(Vec<Json>),
    /// A string.
    Str(String),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer (always < 0; non-negative values use `UInt`).
    Int(i64),
}

impl Json {
    /// Builds a number from a signed value, normalizing non-negatives into
    /// the `UInt` arm so equal values compare equal regardless of origin.
    pub(crate) fn int(value: i64) -> Json {
        if value >= 0 {
            Json::UInt(value as u64)
        } else {
            Json::Int(value)
        }
    }

    /// The value as an `u64`, if it is a non-negative integer.
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer that fits.
    pub(crate) fn as_i64(&self) -> Option<i64> {
        match self {
            Json::UInt(v) => i64::try_from(*v).ok(),
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes the value into `out` (compact form, no whitespace).
    pub(crate) fn write(&self, out: &mut String) {
        match self {
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Str(s) => write_string(s, out),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
}

/// Writes a JSON string literal: quotes, backslashes, and control characters
/// are escaped; all other characters (including non-ASCII) pass through as
/// UTF-8.
fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct JsonError {
    /// Byte offset at which parsing failed.
    pub(crate) offset: usize,
    /// Human-readable description of the failure.
    pub(crate) message: &'static str,
}

/// Parses a complete JSON document (one value, surrounding whitespace
/// allowed, trailing garbage rejected).
pub(crate) fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(message))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (unescaped, non-terminator) bytes at
            // once; the input is valid UTF-8 so the run is too.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = &self.bytes[start..self.pos];
                out.push_str(std::str::from_utf8(run).expect("input slices stay UTF-8"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // The writer only emits \u escapes for control
                            // characters; surrogate pairs are rejected to
                            // keep the parser honest about its subset.
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.error("unsupported \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.error("unsupported escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("expected four hex digits after \\u")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let negative = if self.peek() == Some(b'-') {
            self.pos += 1;
            true
        } else {
            false
        };
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected digits"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.error("non-integer numbers are not supported"));
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if negative {
            let value: i64 = format!("-{digits}")
                .parse()
                .map_err(|_| self.error("integer out of range"))?;
            Ok(Json::Int(value))
        } else {
            let value: u64 = digits
                .parse()
                .map_err(|_| self.error("integer out of range"))?;
            Ok(Json::UInt(value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Json) -> Json {
        let mut s = String::new();
        value.write(&mut s);
        parse(&s).expect("serialized value parses back")
    }

    #[test]
    fn scalar_round_trips() {
        for v in [
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Int(-1),
            Json::Int(i64::MIN),
            Json::Str(String::new()),
            Json::Str("plain".into()),
            Json::Str("quote \" backslash \\ newline \n tab \t nul \u{0} é".into()),
        ] {
            assert_eq!(round_trip(&v), v);
        }
    }

    #[test]
    fn structures_round_trip() {
        let v = Json::Object(vec![
            ("type".into(), Json::Str("counter".into())),
            (
                "labels".into(),
                Json::Object(vec![("worker".into(), Json::Str("0".into()))]),
            ),
            (
                "buckets".into(),
                Json::Array(vec![Json::UInt(1), Json::UInt(2), Json::UInt(3)]),
            ),
            ("value".into(), Json::int(-5)),
        ]);
        assert_eq!(round_trip(&v), v);
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("{\"a\":1} junk").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn preserves_key_order() {
        let parsed = parse("{\"b\":1,\"a\":2}").unwrap();
        match parsed {
            Json::Object(fields) => {
                assert_eq!(fields[0].0, "b");
                assert_eq!(fields[1].0, "a");
            }
            _ => panic!("expected object"),
        }
    }
}
