//! The zero-cost-when-disabled guarantee, pinned with a counting allocator:
//! a disabled [`Telemetry`] handle must perform **zero heap allocations** on
//! the hot recording path — counters, gauges, histograms, spans, labels.
//! (The engine threads a handle through every pipeline stage; this test is
//! what lets it do so unconditionally instead of branching at every call
//! site.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use treelineage_telemetry::Telemetry;

/// A pass-through allocator that counts allocation calls.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disabled_handle_allocates_nothing() {
    let telemetry = Telemetry::disabled();
    // Warm up: the first thread-local / lazy-static touches of the process
    // are not what this test is about.
    drop(telemetry.span("warmup"));
    telemetry.counter_add("warmup", &[], 1);

    let before = allocations();
    for i in 0..10_000u64 {
        telemetry.counter_add("requests_total", &[("kind", "probability")], 1);
        telemetry.gauge_set("occupancy", &[], i as i64);
        telemetry.observe_ns("latency_ns", &[], i);
        let mut span = telemetry.span("stage");
        span.label("iteration", i);
        drop(span);
        drop(telemetry.clone());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled telemetry allocated on the hot path"
    );
}

#[test]
fn enabled_handle_does_allocate() {
    // Sanity check that the counter actually observes telemetry work, so
    // the zero above is meaningful.
    let telemetry = Telemetry::enabled();
    let before = allocations();
    telemetry.counter_add("requests_total", &[("kind", "probability")], 1);
    drop(telemetry.span("stage"));
    assert!(allocations() > before, "counting allocator saw no activity");
}
