//! Property test: the JSON-lines serialization of a [`MetricsSnapshot`] is
//! lossless. All sample values are integers (counts, nanoseconds), so the
//! decode of an encode must be `==` to the original — no float rounding, no
//! label reordering, no escaping loss.

use proptest::prelude::*;
use treelineage_telemetry::{
    CounterSample, GaugeSample, HistogramSample, MetricsSnapshot, SpanAggregate,
};

/// Names exercising the JSON escaper: plain metric names plus strings with
/// quotes, backslashes, control characters, and non-ASCII.
const NAMES: [&str; 6] = [
    "requests_total",
    "request_latency_ns",
    "weird \"quoted\" name",
    "back\\slash",
    "ctrl\n\t\u{1}",
    "unicode µs",
];

fn name(rng_pick: usize) -> String {
    NAMES[rng_pick % NAMES.len()].to_string()
}

fn labels(seed: u64) -> Vec<(String, String)> {
    (0..(seed % 3))
        .map(|i| {
            (
                format!("k{i}"),
                name((seed >> (8 * i)) as usize % NAMES.len()),
            )
        })
        .collect()
}

fn snapshot(seed: u64) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for i in 0..(seed % 4) {
        snap.counters.push(CounterSample {
            name: name((seed + i) as usize),
            labels: labels(seed.rotate_left(i as u32)),
            value: seed.wrapping_mul(i + 1),
        });
    }
    for i in 0..(seed % 3) {
        snap.gauges.push(GaugeSample {
            name: name((seed + 7 * i) as usize),
            labels: labels(seed.rotate_right(i as u32)),
            value: (seed.wrapping_mul(i + 3)) as i64,
        });
    }
    if seed.is_multiple_of(2) {
        let bounds: Vec<u64> = (1..=(seed % 5 + 1)).map(|i| i * 1000).collect();
        let buckets: Vec<u64> = (0..bounds.len() + 1)
            .map(|i| (seed >> (i % 17)) % 1_000_003)
            .collect();
        let count = buckets.iter().sum();
        snap.histograms.push(HistogramSample {
            name: name(seed as usize / 3),
            labels: labels(seed / 5),
            sum: count * 10,
            bounds,
            buckets,
            count,
        });
    }
    if seed.is_multiple_of(3) {
        snap.spans.push(SpanAggregate {
            name: name(seed as usize / 7),
            count: seed % 100,
            total_ns: seed,
            min_ns: seed % 1000,
            max_ns: seed % 1000 + seed / 2,
        });
    }
    snap
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_lines_round_trip_is_lossless(seed in any::<u64>()) {
        let snap = snapshot(seed);
        let encoded = snap.to_json_lines();
        let decoded = MetricsSnapshot::from_json_lines(&encoded).unwrap();
        prop_assert_eq!(decoded, snap);
    }

    #[test]
    fn registry_snapshots_round_trip(seed in any::<u64>()) {
        // The same property through a live registry: record, snapshot,
        // encode, decode.
        let t = treelineage_telemetry::Telemetry::enabled();
        t.counter_add("requests_total", &[("tier", "float")], seed % 17);
        t.gauge_set("occupancy", &[], (seed % 31) as i64 - 15);
        t.observe_ns("latency_ns", &[], seed % 5_000_000_000);
        drop(t.span("stage"));
        let snap = t.snapshot();
        let decoded = MetricsSnapshot::from_json_lines(&snap.to_json_lines()).unwrap();
        prop_assert_eq!(decoded, snap);
    }
}
