//! The tree-encoding alphabet ΣI (Section 6 / \[2\]).
//!
//! A treelike instance is encoded as a full binary tree whose node labels are
//! drawn from a finite alphabet that depends only on the *signature* and the
//! decomposition *width* — never on the instance itself. This is the crucial
//! property behind the paper's linear-time upper bounds: the query is
//! compiled into a tree automaton over this fixed alphabet once, and the
//! (arbitrarily large) instance only contributes the tree the automaton runs
//! on.
//!
//! Labels describe bag-local structure through *slots*: a bag of a width-`k`
//! decomposition holds at most `k + 1` elements, and every element occupies
//! one slot in `{0, ..., k}` for the whole connected subtree of bags it
//! appears in. The label kinds are
//!
//! * `Empty` — a leaf (or padding) node carrying no information,
//! * `Introduce(s)` — a fresh element enters the bag at slot `s`,
//! * `Forget(s)` — the element at slot `s` leaves the bag (top-down reading:
//!   the element at slot `s` is *born* below this node),
//! * `Join` — two subtrees over the same bag are merged,
//! * `Fact { relation, slots, present }` — the fact
//!   `relation(slots...)` over the current bag's elements is asserted
//!   (`present = true`) or explicitly absent (`present = false`). The
//!   present/absent pair of labels is what an uncertain tree's Boolean event
//!   switches between — one event per fact occurrence.

use std::collections::BTreeMap;
use treelineage_automata::Label;
use treelineage_instance::{RelationId, Signature};

/// Hard cap on the number of labels of an [`EncodingAlphabet`]; alphabets
/// larger than this (high arity × high width) are rejected with a typed
/// error instead of exhausting memory during automaton compilation.
pub const MAX_ALPHABET_SIZE: usize = 1 << 20;

/// Errors reported when constructing an [`EncodingAlphabet`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlphabetError {
    /// The alphabet would exceed [`MAX_ALPHABET_SIZE`] labels (the per-slot
    /// tuples of some relation are too numerous at this width).
    TooLarge {
        /// The number of labels the alphabet would need.
        required: usize,
    },
}

impl std::fmt::Display for AlphabetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlphabetError::TooLarge { required } => write!(
                f,
                "encoding alphabet needs {required} labels (limit {MAX_ALPHABET_SIZE})"
            ),
        }
    }
}

impl std::error::Error for AlphabetError {}

/// The decoded meaning of a label (see the module docs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LabelKind {
    /// Leaf / padding node.
    Empty,
    /// Merge of two subtrees over the same bag.
    Join,
    /// A fresh element enters the bag at the given slot.
    Introduce(usize),
    /// The element at the given slot leaves the bag.
    Forget(usize),
    /// A fact over the current bag, present or absent.
    Fact {
        /// The fact's relation.
        relation: RelationId,
        /// The slot of each argument position (repetitions allowed).
        slots: Vec<usize>,
        /// Whether the fact is asserted present.
        present: bool,
    },
}

/// The tree-encoding alphabet for a signature at a given decomposition
/// width. Determined by `(signature, width)` alone; two alphabets built from
/// equal parameters assign identical label ids.
#[derive(Clone, Debug)]
pub struct EncodingAlphabet {
    signature: Signature,
    width: usize,
    /// First label id of each relation's fact-label block.
    fact_base: Vec<usize>,
    size: usize,
}

impl EncodingAlphabet {
    /// Builds the alphabet for `signature` at decomposition width `width`
    /// (bags hold at most `width + 1` elements).
    pub fn new(signature: &Signature, width: usize) -> Result<Self, AlphabetError> {
        let slots = width + 1;
        // Layout: 0 = Empty, 1 = Join, then introduces, then forgets, then
        // one block of 2 · slots^arity labels per relation.
        let mut next = 2 + 2 * slots;
        let mut fact_base = Vec::with_capacity(signature.relation_count());
        for (id, relation) in signature.relations() {
            debug_assert_eq!(fact_base.len(), id.0);
            fact_base.push(next);
            let tuples = slots
                .checked_pow(relation.arity() as u32)
                .and_then(|t| t.checked_mul(2))
                .filter(|&t| t <= MAX_ALPHABET_SIZE);
            match tuples.and_then(|t| next.checked_add(t).filter(|&n| n <= MAX_ALPHABET_SIZE)) {
                Some(n) => next = n,
                None => {
                    return Err(AlphabetError::TooLarge {
                        required: MAX_ALPHABET_SIZE + 1,
                    })
                }
            }
        }
        Ok(EncodingAlphabet {
            signature: signature.clone(),
            width,
            fact_base,
            size: next,
        })
    }

    /// The signature the alphabet encodes facts of.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The decomposition width the alphabet was built for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of slots per bag (`width + 1`).
    pub fn slot_count(&self) -> usize {
        self.width + 1
    }

    /// Total number of labels.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The `Empty` (leaf / padding) label.
    pub fn empty(&self) -> Label {
        0
    }

    /// The `Join` label.
    pub fn join(&self) -> Label {
        1
    }

    /// The `Introduce(slot)` label.
    pub fn introduce(&self, slot: usize) -> Label {
        assert!(slot <= self.width, "slot {slot} out of range");
        2 + slot
    }

    /// The `Forget(slot)` label.
    pub fn forget(&self, slot: usize) -> Label {
        assert!(slot <= self.width, "slot {slot} out of range");
        2 + self.slot_count() + slot
    }

    /// The label of the fact `relation(slots...)`, present or absent.
    pub fn fact(&self, relation: RelationId, slots: &[usize], present: bool) -> Label {
        assert_eq!(
            slots.len(),
            self.signature.arity(relation),
            "arity mismatch for fact label"
        );
        let base = self.fact_base[relation.0];
        let mut tuple = 0usize;
        for &s in slots {
            assert!(s <= self.width, "slot {s} out of range");
            tuple = tuple * self.slot_count() + s;
        }
        base + 2 * tuple + usize::from(present)
    }

    /// Decodes a label back into its [`LabelKind`]. Panics on labels outside
    /// the alphabet.
    pub fn kind(&self, label: Label) -> LabelKind {
        assert!(label < self.size, "label {label} outside alphabet");
        if label == 0 {
            return LabelKind::Empty;
        }
        if label == 1 {
            return LabelKind::Join;
        }
        let slots = self.slot_count();
        if label < 2 + slots {
            return LabelKind::Introduce(label - 2);
        }
        if label < 2 + 2 * slots {
            return LabelKind::Forget(label - 2 - slots);
        }
        // Find the relation block containing the label.
        let relation = match self.fact_base.binary_search_by(|&b| b.cmp(&label)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let relation = RelationId(relation);
        let offset = label - self.fact_base[relation.0];
        let present = offset % 2 == 1;
        let mut tuple = offset / 2;
        let arity = self.signature.arity(relation);
        let mut slot_vec = vec![0usize; arity];
        for i in (0..arity).rev() {
            slot_vec[i] = tuple % slots;
            tuple /= slots;
        }
        LabelKind::Fact {
            relation,
            slots: slot_vec,
            present,
        }
    }

    /// All `(label, kind)` pairs of the alphabet, in label order. Used by the
    /// automaton compiler to enumerate transitions; the iteration cost is the
    /// alphabet size.
    pub fn labels(&self) -> impl Iterator<Item = (Label, LabelKind)> + '_ {
        (0..self.size).map(|l| (l, self.kind(l)))
    }

    /// Lookup table from relation id to the relation's fact-label block
    /// start; exposed for diagnostics.
    pub fn fact_label_blocks(&self) -> BTreeMap<RelationId, usize> {
        self.fact_base
            .iter()
            .enumerate()
            .map(|(i, &b)| (RelationId(i), b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    #[test]
    fn layout_roundtrip() {
        let alphabet = EncodingAlphabet::new(&rst(), 2).unwrap();
        // 2 + 2·3 structural labels, then 2·3 + 2·9 + 2·3 fact labels.
        assert_eq!(alphabet.size(), 8 + 6 + 18 + 6);
        assert_eq!(alphabet.kind(alphabet.empty()), LabelKind::Empty);
        assert_eq!(alphabet.kind(alphabet.join()), LabelKind::Join);
        for s in 0..=2 {
            assert_eq!(
                alphabet.kind(alphabet.introduce(s)),
                LabelKind::Introduce(s)
            );
            assert_eq!(alphabet.kind(alphabet.forget(s)), LabelKind::Forget(s));
        }
        let sig = rst();
        let s_rel = sig.relation_by_name("S").unwrap();
        for (a, b) in [(0usize, 0usize), (0, 2), (2, 1)] {
            for present in [false, true] {
                let label = alphabet.fact(s_rel, &[a, b], present);
                assert_eq!(
                    alphabet.kind(label),
                    LabelKind::Fact {
                        relation: s_rel,
                        slots: vec![a, b],
                        present,
                    }
                );
            }
        }
        // All labels decode without panicking and re-encode to themselves.
        for (label, kind) in alphabet.labels() {
            let reencoded = match &kind {
                LabelKind::Empty => alphabet.empty(),
                LabelKind::Join => alphabet.join(),
                LabelKind::Introduce(s) => alphabet.introduce(*s),
                LabelKind::Forget(s) => alphabet.forget(*s),
                LabelKind::Fact {
                    relation,
                    slots,
                    present,
                } => alphabet.fact(*relation, slots, *present),
            };
            assert_eq!(label, reencoded);
        }
    }

    #[test]
    fn deterministic_across_constructions() {
        let a = EncodingAlphabet::new(&rst(), 1).unwrap();
        let b = EncodingAlphabet::new(&rst(), 1).unwrap();
        assert_eq!(a.size(), b.size());
        let sig = rst();
        let t = sig.relation_by_name("T").unwrap();
        assert_eq!(a.fact(t, &[1], true), b.fact(t, &[1], true));
    }

    #[test]
    fn oversized_alphabet_is_rejected() {
        let sig = Signature::builder().relation("Wide", 8).build();
        // 64^8 tuples at width 63 overflows the cap.
        assert!(matches!(
            EncodingAlphabet::new(&sig, 63),
            Err(AlphabetError::TooLarge { .. })
        ));
    }
}
