//! Tree encodings of treelike instances (Section 6 via \[2\]).
//!
//! [`encode`] turns an [`Instance`] together with a [`TreeDecomposition`] of
//! its Gaifman graph into an [`UncertainTree`] over the
//! [`EncodingAlphabet`]: the decomposition is first made *nice*
//! ([`treelineage_graph::NiceTreeDecomposition`]), its nodes become
//! structural tree labels (introduce / forget / join over bag *slots*), and
//! every fact of the instance is asserted exactly once — at the topmost node
//! whose bag covers all of its elements — through a node whose Boolean event
//! (the fact's id) switches between the `present` and `absent` labels.
//!
//! Invariants of the encoding (checked by the round-trip test suite):
//!
//! * **Slot consistency.** An element occupies one fixed slot for its whole
//!   (connected) subtree of bags, assigned top-down at the unique forget
//!   node above that subtree; two distinct slots of a bag always hold two
//!   distinct elements.
//! * **One event per fact.** Every fact of the instance labels exactly one
//!   node, controlled by the event with the fact's id; the tree's event set
//!   is exactly the instance's fact-id set.
//! * **Decodability.** The instance can be reconstructed from the tree alone
//!   up to renaming of elements ([`TreeEncoding::decode_fresh`]), and
//!   exactly when the encoder's element table is kept
//!   ([`TreeEncoding::decode`]): instantiating the events with a world
//!   (fact subset) decodes to precisely that subinstance.
//!
//! Elements appearing in no bag of the decomposition (isolated vertices of
//! the Gaifman graph, which [`TreeDecomposition::validate`] permits to be
//! uncovered) are wrapped around the root as introduce / facts / forget
//! chains, so every fact is always encoded.
//!
//! ```
//! use treelineage_encoding::encode;
//! use treelineage_graph::treewidth::treewidth_upper_bound;
//! use treelineage_instance::{FactId, Instance, Signature};
//!
//! let sig = Signature::builder().relation("E", 2).build();
//! let mut inst = Instance::new(sig);
//! inst.add_fact_by_name("E", &[0, 1]);
//! inst.add_fact_by_name("E", &[1, 2]);
//! let (graph, _) = inst.gaifman_graph();
//! let encoding = encode(&inst, &treewidth_upper_bound(&graph).1).unwrap();
//! // One Boolean event per fact (the fact's id)...
//! assert_eq!(encoding.tree().events(), vec![0, 1]);
//! // ...and instantiating a world decodes to exactly that subinstance.
//! assert_eq!(encoding.decode(&|f| f == FactId(0)).fact_count(), 1);
//! ```

use crate::alphabet::{AlphabetError, EncodingAlphabet, LabelKind};
use std::collections::BTreeMap;
use treelineage_automata::{BinaryTree, NodeId, UncertainTree};
use treelineage_graph::{NiceNode, NiceTreeDecomposition, TreeDecomposition, Vertex};
use treelineage_instance::{Element, FactId, Instance, Signature};

/// Errors reported by [`encode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EncodingError {
    /// The decomposition is not a valid tree decomposition of the instance's
    /// Gaifman graph.
    InvalidDecomposition(String),
    /// The encoding alphabet for this signature / width is too large.
    Alphabet(AlphabetError),
}

impl std::fmt::Display for EncodingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodingError::InvalidDecomposition(e) => write!(f, "invalid decomposition: {e}"),
            EncodingError::Alphabet(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EncodingError {}

impl From<AlphabetError> for EncodingError {
    fn from(e: AlphabetError) -> Self {
        EncodingError::Alphabet(e)
    }
}

/// A tree encoding of a treelike instance: the uncertain tree, its alphabet,
/// and the bookkeeping needed for exact decoding.
#[derive(Clone, Debug)]
pub struct TreeEncoding {
    alphabet: EncodingAlphabet,
    tree: UncertainTree,
    signature: Signature,
    fact_count: usize,
    /// For every `Forget` node (top-down: the node below which the element is
    /// alive), the element it binds — the encoder's element table, used by
    /// [`TreeEncoding::decode`] for exact reconstruction.
    forget_elements: BTreeMap<usize, Element>,
    /// The tree node asserting each fact.
    fact_nodes: BTreeMap<FactId, NodeId>,
}

impl TreeEncoding {
    /// The uncertain tree (events are fact ids).
    pub fn tree(&self) -> &UncertainTree {
        &self.tree
    }

    /// The alphabet the tree is labelled over.
    pub fn alphabet(&self) -> &EncodingAlphabet {
        &self.alphabet
    }

    /// Number of facts encoded (= number of events).
    pub fn fact_count(&self) -> usize {
        self.fact_count
    }

    /// Number of nodes of the encoding tree (linear in the instance size for
    /// a fixed width).
    pub fn node_count(&self) -> usize {
        self.tree.tree().node_count()
    }

    /// The node asserting the given fact.
    pub fn fact_node(&self, fact: FactId) -> Option<NodeId> {
        self.fact_nodes.get(&fact).copied()
    }

    /// Decodes the tree under a world (set of present facts) back into the
    /// exact subinstance of the original: the decoded instance contains
    /// precisely the facts of the world, over the original elements.
    pub fn decode(&self, present: &dyn Fn(FactId) -> bool) -> Instance {
        self.decode_with(present, Some(&self.forget_elements))
    }

    /// Decodes the tree using only the information in the tree itself:
    /// elements are freshly numbered in top-down binding order, so the result
    /// is isomorphic to (rather than equal to) the corresponding
    /// subinstance. This is the paper's "decode" direction — the encoding is
    /// self-contained.
    pub fn decode_fresh(&self, present: &dyn Fn(FactId) -> bool) -> Instance {
        self.decode_with(present, None)
    }

    fn decode_with(
        &self,
        present: &dyn Fn(FactId) -> bool,
        elements: Option<&BTreeMap<usize, Element>>,
    ) -> Instance {
        let mut instance = Instance::new(self.signature.clone());
        let tree = self.tree.tree();
        let mut fresh = 0u64;
        // Top-down walk carrying the slot -> element binding of the current
        // bag.
        let mut stack: Vec<(NodeId, BTreeMap<usize, Element>)> =
            vec![(tree.root(), BTreeMap::new())];
        while let Some((node, bag)) = stack.pop() {
            let label = self.tree.label_under(node, &|event| present(FactId(event)));
            match self.alphabet.kind(label) {
                LabelKind::Empty => {}
                LabelKind::Join => {
                    if let Some((l, r)) = tree.children(node) {
                        stack.push((l, bag.clone()));
                        stack.push((r, bag));
                    }
                }
                LabelKind::Introduce(slot) => {
                    // Going down, the introduced element leaves the bag.
                    if let Some((l, r)) = tree.children(node) {
                        let mut below = bag.clone();
                        below.remove(&slot);
                        stack.push((l, below));
                        stack.push((r, bag));
                    }
                }
                LabelKind::Forget(slot) => {
                    // Going down, the forgotten element is born at `slot`.
                    let element = match elements {
                        Some(table) => table[&node.0],
                        None => {
                            let e = Element(fresh);
                            fresh += 1;
                            e
                        }
                    };
                    if let Some((l, r)) = tree.children(node) {
                        let mut below = bag.clone();
                        below.insert(slot, element);
                        stack.push((l, below));
                        stack.push((r, bag));
                    }
                }
                LabelKind::Fact {
                    relation,
                    slots,
                    present,
                } => {
                    if present {
                        let args: Vec<Element> = slots.iter().map(|s| bag[s]).collect();
                        instance.add_fact(relation, args);
                    }
                    if let Some((l, r)) = tree.children(node) {
                        stack.push((l, bag.clone()));
                        stack.push((r, bag));
                    }
                }
            }
        }
        instance
    }
}

/// Encodes `instance` as an uncertain tree over the alphabet derived from
/// its signature and the width of `decomposition` (a tree decomposition of
/// the instance's Gaifman graph; validated). See the module docs for the
/// construction and its invariants.
pub fn encode(
    instance: &Instance,
    decomposition: &TreeDecomposition,
) -> Result<TreeEncoding, EncodingError> {
    let (graph, _) = instance.gaifman_graph();
    decomposition
        .validate(&graph)
        .map_err(|e| EncodingError::InvalidDecomposition(e.to_string()))?;
    encode_trusted(instance, decomposition)
}

/// [`encode_trusted`] with an `encode` telemetry span around the
/// construction: the instrumented pipelines (engine sessions, the core
/// lineage builder) route through this so the encode stage shows up in
/// span aggregates; the span records nothing when `telemetry` is disabled.
pub fn encode_traced(
    instance: &Instance,
    decomposition: &TreeDecomposition,
    telemetry: &treelineage_telemetry::Telemetry,
) -> Result<TreeEncoding, EncodingError> {
    let _span = telemetry.span("encode");
    encode_trusted(instance, decomposition)
}

/// [`encode`] without the validation pass (and without building the Gaifman
/// graph at all): for callers that attest `decomposition` is a valid tree
/// decomposition of the instance's Gaifman graph — already validated (e.g.
/// `LineageBuilder::with_decomposition`) or valid by construction (the
/// heuristic upper bounds). On an invalid decomposition the encoding's
/// invariants (and the automaton pipeline's answers) are silently wrong.
pub fn encode_trusted(
    instance: &Instance,
    decomposition: &TreeDecomposition,
) -> Result<TreeEncoding, EncodingError> {
    EncodingPlan::new_trusted(instance, decomposition)?.encode(instance)
}

/// The instance-independent skeleton of a tree encoding: the nice
/// decomposition, alphabet, per-node slot assignment and bag occurrence
/// index — everything [`encode_trusted`] computes *before* it looks at the
/// fact set. A plan is a pure function of `(signature, active domain,
/// decomposition)`, so it can be built once and replayed against any
/// instance with the same signature and domain: [`EncodingPlan::encode`] is
/// then byte-identical to a fresh [`encode_trusted`] of that instance
/// (node ids, labels, and — since events are fact ids — the event of every
/// untouched fact). This is what makes localized re-encoding under updates
/// sound: insert/retract of a fact that keeps the domain fixed reuses the
/// plan, and only the fact chains change.
#[derive(Clone, Debug)]
pub struct EncodingPlan {
    signature: Signature,
    domain: Vec<Element>,
    vertex_of: BTreeMap<Element, Vertex>,
    nice: NiceTreeDecomposition,
    alphabet: EncodingAlphabet,
    depth: Vec<usize>,
    slots: Vec<BTreeMap<Vertex, usize>>,
    occurrences: BTreeMap<Vertex, Vec<usize>>,
}

impl EncodingPlan {
    /// Builds the plan for `instance`'s signature and active domain over the
    /// given (trusted, unvalidated) decomposition. Shares [`encode_trusted`]'s
    /// contract: on an invalid decomposition the downstream invariants are
    /// silently wrong.
    pub fn new_trusted(
        instance: &Instance,
        decomposition: &TreeDecomposition,
    ) -> Result<Self, EncodingError> {
        let domain: Vec<Element> = instance.domain().into_iter().collect();
        let vertex_of: BTreeMap<Element, Vertex> =
            domain.iter().enumerate().map(|(i, &e)| (e, i)).collect();

        let nice = NiceTreeDecomposition::from_tree_decomposition(decomposition);
        let alphabet = EncodingAlphabet::new(instance.signature(), nice.width())?;

        // Top-down pass over the nice decomposition: per-node depth and slot
        // assignment (element slots are fixed for a vertex's whole occurrence
        // subtree, chosen smallest-free at the unique node below its forget).
        let n = nice.node_count();
        let mut depth = vec![0usize; n];
        let mut slots: Vec<BTreeMap<Vertex, usize>> = vec![BTreeMap::new(); n];
        let mut down = vec![nice.root()];
        while let Some(id) = down.pop() {
            let sigma = slots[id].clone();
            let d = depth[id];
            match *nice.node(id) {
                NiceNode::Leaf => {}
                NiceNode::Introduce { vertex, child } => {
                    let mut below = sigma;
                    below.remove(&vertex);
                    slots[child] = below;
                    depth[child] = d + 1;
                    down.push(child);
                }
                NiceNode::Forget { vertex, child } => {
                    let mut below = sigma;
                    let free = (0..alphabet.slot_count())
                        .find(|s| !below.values().any(|&t| t == *s))
                        .expect("a width-k bag leaves a free slot");
                    below.insert(vertex, free);
                    slots[child] = below;
                    depth[child] = d + 1;
                    down.push(child);
                }
                NiceNode::Join { left, right } => {
                    slots[left] = sigma.clone();
                    slots[right] = sigma;
                    depth[left] = d + 1;
                    depth[right] = d + 1;
                    down.push(left);
                    down.push(right);
                }
            }
        }

        let mut occurrences: BTreeMap<Vertex, Vec<usize>> = BTreeMap::new();
        for id in 0..n {
            for &v in nice.bag(id) {
                occurrences.entry(v).or_default().push(id);
            }
        }

        Ok(EncodingPlan {
            signature: instance.signature().clone(),
            domain,
            vertex_of,
            nice,
            alphabet,
            depth,
            slots,
            occurrences,
        })
    }

    /// The alphabet encodings built from this plan are labelled over.
    pub fn alphabet(&self) -> &EncodingAlphabet {
        &self.alphabet
    }

    /// The active domain the plan was built for, sorted.
    pub fn domain(&self) -> &[Element] {
        &self.domain
    }

    /// Whether `element` is part of the plan's pinned domain. A fact over an
    /// element outside the domain cannot be encoded by this plan (the vertex
    /// numbering the decomposition's bags refer to would shift).
    pub fn contains_element(&self, element: Element) -> bool {
        self.vertex_of.contains_key(&element)
    }

    /// Whether a fact over the given element set can be encoded by this plan:
    /// all elements must be in the pinned domain, and a fact touching two or
    /// more distinct elements additionally needs one bag of the decomposition
    /// containing all of them (which also keeps the decomposition a valid one
    /// for the grown Gaifman graph). Nullary and single-element facts are
    /// always placeable — the root chain and the wrapped introduce/forget
    /// chains catch them.
    pub fn covers(&self, elements: &std::collections::BTreeSet<Element>) -> bool {
        if !elements.iter().all(|e| self.contains_element(*e)) {
            return false;
        }
        if elements.len() < 2 {
            return true;
        }
        let vertices: Vec<Vertex> = elements.iter().map(|e| self.vertex_of[e]).collect();
        let rarest = vertices
            .iter()
            .min_by_key(|v| self.occurrences.get(v).map_or(0, |o| o.len()))
            .copied()
            .expect("nonempty vertex list");
        match self.occurrences.get(&rarest) {
            None => false,
            Some(candidates) => candidates.iter().any(|&id| {
                let bag = self.nice.bag(id);
                vertices.iter().all(|v| bag.contains(v))
            }),
        }
    }

    /// Replays the plan against an instance, producing the same
    /// [`TreeEncoding`] a fresh [`encode_trusted`] of that instance would.
    /// The instance must have the plan's signature and exactly the plan's
    /// active domain, and every fact must be placeable ([`Self::covers`]);
    /// domain drift is reported as an [`EncodingError::InvalidDecomposition`]
    /// (the decomposition no longer matches the instance's vertex set).
    pub fn encode(&self, instance: &Instance) -> Result<TreeEncoding, EncodingError> {
        let current: Vec<Element> = instance.domain().into_iter().collect();
        if current != self.domain {
            return Err(EncodingError::InvalidDecomposition(format!(
                "encoding plan pinned to a {}-element domain, instance has {}: \
                 updates must preserve the active domain",
                self.domain.len(),
                current.len()
            )));
        }
        let element_of = &self.domain;
        let vertex_of = &self.vertex_of;
        let nice = &self.nice;
        let alphabet = &self.alphabet;
        let n = nice.node_count();

        // Attach every fact to the topmost nice node whose bag covers all of
        // its elements. Facts over elements outside every bag (isolated
        // Gaifman vertices) are collected per element and wrapped around the
        // root below.
        let mut facts_at: Vec<Vec<FactId>> = vec![Vec::new(); n];
        let mut root_facts: Vec<FactId> = Vec::new();
        let mut wrapped: BTreeMap<Element, Vec<FactId>> = BTreeMap::new();
        for (fact_id, fact) in instance.facts() {
            let vertices: Vec<Vertex> = fact.elements().iter().map(|e| vertex_of[e]).collect();
            if vertices.is_empty() {
                root_facts.push(fact_id);
                continue;
            }
            let rarest = vertices
                .iter()
                .min_by_key(|v| self.occurrences.get(v).map_or(0, |o| o.len()))
                .copied()
                .expect("nonempty vertex list");
            match self.occurrences.get(&rarest) {
                None => {
                    // Uncovered: only possible when the fact touches one
                    // isolated element (multi-element facts induce covered
                    // Gaifman edges).
                    debug_assert_eq!(vertices.len(), 1);
                    wrapped
                        .entry(element_of[vertices[0]])
                        .or_default()
                        .push(fact_id);
                }
                Some(candidates) => {
                    let node = candidates
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let bag = nice.bag(id);
                            vertices.iter().all(|v| bag.contains(v))
                        })
                        .min_by_key(|&id| self.depth[id])
                        .expect("a clique of the Gaifman graph fits in some bag");
                    facts_at[node].push(fact_id);
                }
            }
        }
        for list in facts_at.iter_mut() {
            list.sort_unstable();
        }
        root_facts.sort_unstable();

        // Bottom-up construction of the binary encoding tree.
        let mut tree = BinaryTree::new();
        let mut forget_elements: BTreeMap<usize, Element> = BTreeMap::new();
        let mut fact_events: Vec<(NodeId, FactId, usize, usize)> = Vec::new();
        let mut fact_nodes: BTreeMap<FactId, NodeId> = BTreeMap::new();
        let mut encoded: Vec<Option<NodeId>> = vec![None; n];
        let empty = alphabet.empty();

        let push_fact_chain = |tree: &mut BinaryTree,
                               fact_events: &mut Vec<(NodeId, FactId, usize, usize)>,
                               fact_nodes: &mut BTreeMap<FactId, NodeId>,
                               mut acc: NodeId,
                               facts: &[FactId],
                               sigma: &BTreeMap<Vertex, usize>| {
            for &fact_id in facts {
                let fact = instance.fact(fact_id);
                let slot_tuple: Vec<usize> = fact
                    .arguments()
                    .iter()
                    .map(|e| sigma[&vertex_of[e]])
                    .collect();
                let present = alphabet.fact(fact.relation(), &slot_tuple, true);
                let absent = alphabet.fact(fact.relation(), &slot_tuple, false);
                let pad = tree.leaf(empty);
                let node = tree.internal(present, acc, pad);
                fact_events.push((node, fact_id, present, absent));
                fact_nodes.insert(fact_id, node);
                acc = node;
            }
            acc
        };

        for id in nice.post_order() {
            let base = match *nice.node(id) {
                NiceNode::Leaf => tree.leaf(empty),
                NiceNode::Introduce { vertex, child } => {
                    let pad = tree.leaf(empty);
                    let below = encoded[child].expect("post-order");
                    tree.internal(alphabet.introduce(self.slots[id][&vertex]), below, pad)
                }
                NiceNode::Forget { vertex, child } => {
                    let pad = tree.leaf(empty);
                    let below = encoded[child].expect("post-order");
                    let node =
                        tree.internal(alphabet.forget(self.slots[child][&vertex]), below, pad);
                    forget_elements.insert(node.0, element_of[vertex]);
                    node
                }
                NiceNode::Join { left, right } => {
                    let l = encoded[left].expect("post-order");
                    let r = encoded[right].expect("post-order");
                    tree.internal(alphabet.join(), l, r)
                }
            };
            encoded[id] = Some(push_fact_chain(
                &mut tree,
                &mut fact_events,
                &mut fact_nodes,
                base,
                &facts_at[id],
                &self.slots[id],
            ));
        }

        let mut root = encoded[nice.root()].expect("root encoded");
        // Nullary facts (no elements) sit directly above the nice root.
        root = push_fact_chain(
            &mut tree,
            &mut fact_events,
            &mut fact_nodes,
            root,
            &root_facts,
            &BTreeMap::new(),
        );
        // Wrap uncovered elements: introduce at slot 0, assert their facts,
        // forget again. The fact slots all reference slot 0.
        for (&element, facts) in &wrapped {
            let pad = tree.leaf(empty);
            let intro = tree.internal(alphabet.introduce(0), root, pad);
            let sigma: BTreeMap<Vertex, usize> =
                std::iter::once((vertex_of[&element], 0usize)).collect();
            let mut facts = facts.clone();
            facts.sort_unstable();
            let chain = push_fact_chain(
                &mut tree,
                &mut fact_events,
                &mut fact_nodes,
                intro,
                &facts,
                &sigma,
            );
            let pad = tree.leaf(empty);
            let forget = tree.internal(alphabet.forget(0), chain, pad);
            forget_elements.insert(forget.0, element);
            root = forget;
        }
        tree.set_root(root);

        let mut uncertain = UncertainTree::certain(tree);
        for &(node, fact_id, present, absent) in &fact_events {
            uncertain.set_event(node, fact_id.0, present, absent);
        }
        debug_assert_eq!(fact_events.len(), instance.fact_count());

        Ok(TreeEncoding {
            alphabet: alphabet.clone(),
            tree: uncertain,
            signature: self.signature.clone(),
            fact_count: instance.fact_count(),
            forget_elements,
            fact_nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use treelineage_instance::Signature;

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    fn chain(n: usize) -> Instance {
        let mut inst = Instance::new(rst());
        for i in 0..n as u64 {
            inst.add_fact_by_name("R", &[i]);
            inst.add_fact_by_name("S", &[i, i + 1]);
            inst.add_fact_by_name("T", &[i + 1]);
        }
        inst
    }

    fn heuristic_td(inst: &Instance) -> TreeDecomposition {
        let (graph, _) = inst.gaifman_graph();
        treelineage_graph::treewidth::treewidth_upper_bound(&graph).1
    }

    fn same_facts(a: &Instance, b: &Instance) -> bool {
        a.fact_count() == b.fact_count() && a.includes(b)
    }

    #[test]
    fn encode_chain_and_decode_full_world() {
        let inst = chain(4);
        let encoding = encode(&inst, &heuristic_td(&inst)).unwrap();
        assert_eq!(encoding.fact_count(), inst.fact_count());
        assert_eq!(
            encoding.tree().events(),
            (0..inst.fact_count()).collect::<Vec<_>>()
        );
        let decoded = encoding.decode(&|_| true);
        assert!(same_facts(&decoded, &inst));
    }

    #[test]
    fn decode_of_worlds_matches_subinstances() {
        let inst = chain(2);
        let encoding = encode(&inst, &heuristic_td(&inst)).unwrap();
        for mask in 0u32..(1 << inst.fact_count()) {
            let world: BTreeSet<FactId> = (0..inst.fact_count())
                .filter(|i| mask >> i & 1 == 1)
                .map(FactId)
                .collect();
            let decoded = encoding.decode(&|f| world.contains(&f));
            let expected = inst.subinstance(&world);
            assert!(same_facts(&decoded, &expected), "mask {mask}");
        }
    }

    #[test]
    fn decode_fresh_is_isomorphic() {
        let inst = chain(3);
        let encoding = encode(&inst, &heuristic_td(&inst)).unwrap();
        let decoded = encoding.decode_fresh(&|_| true);
        assert!(decoded.isomorphic_to(&inst));
    }

    #[test]
    fn uncovered_elements_are_wrapped() {
        // Unary facts over isolated elements plus an S-loop: neither element
        // has a Gaifman edge, so an empty decomposition is valid — the
        // encoder must wrap both.
        let mut inst = Instance::new(rst());
        inst.add_fact_by_name("R", &[7]);
        inst.add_fact_by_name("T", &[7]);
        inst.add_fact_by_name("S", &[9, 9]);
        let encoding = encode(&inst, &TreeDecomposition::new()).unwrap();
        assert_eq!(encoding.fact_count(), 3);
        let decoded = encoding.decode(&|_| true);
        assert!(same_facts(&decoded, &inst));
        let partial = encoding.decode(&|f| f.0 != 1);
        assert_eq!(partial.fact_count(), 2);
    }

    #[test]
    fn invalid_decomposition_is_rejected() {
        let inst = chain(2);
        let result = encode(&inst, &TreeDecomposition::new());
        assert!(matches!(
            result,
            Err(EncodingError::InvalidDecomposition(_))
        ));
    }

    fn same_trees(a: &TreeEncoding, b: &TreeEncoding) -> bool {
        let (ta, tb) = (a.tree(), b.tree());
        if ta.tree().node_count() != tb.tree().node_count() || ta.events() != tb.events() {
            return false;
        }
        if ta.tree().root() != tb.tree().root() {
            return false;
        }
        (0..ta.tree().node_count()).all(|i| {
            let node = NodeId(i);
            ta.tree().label(node) == tb.tree().label(node)
                && ta.tree().children(node) == tb.tree().children(node)
                && ta.annotation(node) == tb.annotation(node)
        })
    }

    #[test]
    fn plan_replay_matches_fresh_encode_after_updates() {
        // Build the plan on the original instance, mutate the fact set
        // (domain-preserving retract + insert), and check the plan replay is
        // node-for-node identical to a fresh encode of the mutated instance.
        let mut inst = chain(4);
        let td = heuristic_td(&inst);
        let plan = EncodingPlan::new_trusted(&inst, &td).unwrap();
        assert!(same_trees(
            &plan.encode(&inst).unwrap(),
            &encode_trusted(&inst, &td).unwrap()
        ));

        let s = inst.signature().relation_by_name("S").unwrap();
        let retract = inst.fact_id(s, &[Element(1), Element(2)]).unwrap();
        inst.remove_fact(retract);
        assert!(same_trees(
            &plan.encode(&inst).unwrap(),
            &encode_trusted(&inst, &td).unwrap()
        ));

        inst.add_fact(s, vec![Element(1), Element(2)]);
        assert!(same_trees(
            &plan.encode(&inst).unwrap(),
            &encode_trusted(&inst, &td).unwrap()
        ));
    }

    #[test]
    fn plan_coverage_pins_domain_and_bags() {
        let inst = chain(2);
        let td = heuristic_td(&inst);
        let plan = EncodingPlan::new_trusted(&inst, &td).unwrap();

        // In-domain elements are covered; single-element facts always are.
        assert!(plan.contains_element(Element(0)));
        assert!(!plan.contains_element(Element(99)));
        assert!(plan.covers(&BTreeSet::from([Element(2)])));
        // An adjacent pair shares a bag; a non-adjacent pair does not.
        assert!(plan.covers(&BTreeSet::from([Element(0), Element(1)])));
        assert!(!plan.covers(&BTreeSet::from([Element(0), Element(2)])));
        // Out-of-domain elements are never covered.
        assert!(!plan.covers(&BTreeSet::from([Element(0), Element(99)])));

        // Replaying against a domain-drifted instance is a typed error.
        let mut drifted = chain(2);
        drifted.add_fact_by_name("R", &[99]);
        assert!(matches!(
            plan.encode(&drifted),
            Err(EncodingError::InvalidDecomposition(_))
        ));
    }

    #[test]
    fn encoding_is_linear_in_the_instance() {
        let sizes: Vec<usize> = [8usize, 16, 32, 64]
            .iter()
            .map(|&n| {
                let inst = chain(n);
                encode(&inst, &heuristic_td(&inst)).unwrap().node_count()
            })
            .collect();
        for w in sizes.windows(2) {
            assert!(w[1] <= 3 * w[0], "sizes {sizes:?}");
        }
    }
}
