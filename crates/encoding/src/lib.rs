//! Tree encodings + query→tree-automaton compilation: the paper's Section 6
//! pipeline made end-to-end constructive.
//!
//! The headline upper bounds of the paper (Theorems 6.3 and 6.11) compute
//! lineages in time *linear in the instance*: tree-encode the
//! bounded-treewidth instance, compile the query into a tree automaton over
//! the encoding alphabet, and read the lineage off the automaton's
//! provenance on the uncertain encoding (one Boolean event per fact). This
//! crate provides the two instance-independent ingredients:
//!
//! * [`EncodingAlphabet`] / [`encode`] — the ΣI alphabet for a signature at
//!   a decomposition width, and the tree encoder turning an
//!   [`Instance`](treelineage_instance::Instance) plus a
//!   [`TreeDecomposition`](treelineage_graph::TreeDecomposition) (made nice
//!   via [`treelineage_graph::NiceTreeDecomposition`]) into a binary
//!   [`UncertainTree`](treelineage_automata::UncertainTree), with a decode
//!   direction and round-trip validation;
//! * [`compile_ucq`] / [`compile_mso`] — compilation of UCQ≠ queries (and
//!   the existential-positive fragment of [`MsoFormula`]) into
//!   *deterministic* bottom-up tree automata on that alphabet by a
//!   bottom-up subset construction over partial-match configurations, with
//!   a state budget and typed [`CompileError`]s.
//!
//! Downstream, `treelineage_core`'s `LineageBackend::Automaton` chains
//! these with [`treelineage_automata::compile_structured_dnnf`] into the
//! full pipeline: probability / model counting / weighted model counting
//! without ever materializing query matches (and `treelineage-engine`
//! compiles the same d-SDNNF over disjoint subtrees on worker threads,
//! bit-identically). The whole route, end to end — encode the instance,
//! compile the query, read the lineage off the provenance:
//!
//! ```
//! use treelineage_automata::compile_structured_dnnf;
//! use treelineage_encoding::{compile_ucq, encode, CompileOptions};
//! use treelineage_graph::treewidth::treewidth_upper_bound;
//! use treelineage_instance::{Instance, Signature};
//! use treelineage_num::Rational;
//! use treelineage_query::parse_query;
//!
//! // The chain instance R(0), S(0, 1), T(1), tree-encoded along a
//! // heuristic decomposition of its Gaifman graph.
//! let sig = Signature::builder()
//!     .relation("R", 1).relation("S", 2).relation("T", 1).build();
//! let mut inst = Instance::new(sig.clone());
//! inst.add_fact_by_name("R", &[0]);
//! inst.add_fact_by_name("S", &[0, 1]);
//! inst.add_fact_by_name("T", &[1]);
//! let (graph, _) = inst.gaifman_graph();
//! let encoding = encode(&inst, &treewidth_upper_bound(&graph).1).unwrap();
//!
//! // Compile the query over the alphabet, materialize the automaton for
//! // this tree, and read the lineage off its provenance d-SDNNF.
//! let query = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
//! let mut compiled = compile_ucq(&query, encoding.alphabet(), CompileOptions::default()).unwrap();
//! let automaton = compiled.automaton_for(encoding.tree()).unwrap();
//! let lineage = compile_structured_dnnf(&automaton, encoding.tree()).unwrap();
//!
//! // All three facts must be present: probability 1/8 under all-1/2.
//! assert_eq!(
//!     lineage.probability(&|_| Rational::one_half()),
//!     Rational::from_ratio_u64(1, 8),
//! );
//! ```
//!
//! [`MsoFormula`]: treelineage_query::MsoFormula

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod compile;
mod encode;

pub use alphabet::{AlphabetError, EncodingAlphabet, LabelKind, MAX_ALPHABET_SIZE};
pub use compile::{
    compile_mso, compile_ucq, mso_to_ucq, CompileError, CompileOptions, CompiledQuery,
    DEFAULT_STATE_BUDGET,
};
pub use encode::{
    encode, encode_traced, encode_trusted, EncodingError, EncodingPlan, TreeEncoding,
};
