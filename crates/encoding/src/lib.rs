//! Tree encodings + query→tree-automaton compilation: the paper's Section 6
//! pipeline made end-to-end constructive.
//!
//! The headline upper bounds of the paper (Theorems 6.3 and 6.11) compute
//! lineages in time *linear in the instance*: tree-encode the
//! bounded-treewidth instance, compile the query into a tree automaton over
//! the encoding alphabet, and read the lineage off the automaton's
//! provenance on the uncertain encoding (one Boolean event per fact). This
//! crate provides the two instance-independent ingredients:
//!
//! * [`EncodingAlphabet`] / [`encode`] — the ΣI alphabet for a signature at
//!   a decomposition width, and the tree encoder turning an
//!   [`Instance`](treelineage_instance::Instance) plus a
//!   [`TreeDecomposition`](treelineage_graph::TreeDecomposition) (made nice
//!   via [`treelineage_graph::NiceTreeDecomposition`]) into a binary
//!   [`UncertainTree`](treelineage_automata::UncertainTree), with a decode
//!   direction and round-trip validation;
//! * [`compile_ucq`] / [`compile_mso`] — compilation of UCQ≠ queries (and
//!   the existential-positive fragment of [`MsoFormula`]) into
//!   *deterministic* bottom-up tree automata on that alphabet by a
//!   bottom-up subset construction over partial-match configurations, with
//!   a state budget and typed [`CompileError`]s.
//!
//! Downstream, `treelineage_core`'s `LineageBackend::Automaton` chains
//! these with [`treelineage_automata::compile_structured_dnnf`] into the
//! full pipeline: probability / model counting / weighted model counting
//! without ever materializing query matches.
//!
//! [`MsoFormula`]: treelineage_query::MsoFormula

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod compile;
mod encode;

pub use alphabet::{AlphabetError, EncodingAlphabet, LabelKind, MAX_ALPHABET_SIZE};
pub use compile::{
    compile_mso, compile_ucq, mso_to_ucq, CompileError, CompileOptions, CompiledQuery,
    DEFAULT_STATE_BUDGET,
};
pub use encode::{encode, encode_trusted, EncodingError, TreeEncoding};
