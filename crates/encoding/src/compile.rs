//! Query → tree-automaton compilation (the constructive side of
//! Theorems 6.3 / 6.11, in the style of Courcelle's theorem \[13\]).
//!
//! [`compile_ucq`] compiles a UCQ≠ into a *deterministic* bottom-up tree
//! automaton over an [`EncodingAlphabet`] such that the automaton accepts an
//! instantiated tree encoding exactly when the decoded subinstance satisfies
//! the query. The construction is a bottom-up subset construction: the
//! nondeterministic "guess a partial match" automaton has one state per
//! *configuration* — a disjunct, a partial map from its variables to bag
//! slots (or `★` for elements already forgotten), and the set of atoms
//! matched so far — and the deterministic automaton's states are *sets* of
//! configurations, determinized exactly as in
//! [`TreeAutomaton::determinize`]'s subset construction.
//!
//! The deterministic state space is enumerated *lazily*: eagerly saturating
//! every subset state over the whole alphabet is doubly exponential in the
//! query (the union semilattice of configuration sets — the nonelementary
//! constant behind Courcelle's theorem), so [`compile_ucq`] returns a
//! [`CompiledQuery`] — the transition machine with a persistent state /
//! transition memo — and [`CompiledQuery::automaton_for`] materializes the
//! fragment of the subset automaton reachable on a concrete uncertain tree
//! (under every event valuation at once), in one bottom-up pass that is
//! linear in the tree for bounded-width families. The memo survives across
//! trees, so related materializations share their work, mirroring the
//! shared `dd` engine's persistent caches.
//!
//! Key facts the construction leans on (see `encode`'s invariants):
//!
//! * two distinct slots of a bag always hold distinct elements, so a
//!   disequality fails exactly when both variables sit on one slot (checked
//!   at assignment time);
//! * a forgotten element never reappears, so a `★` variable is distinct
//!   from every current and future element (a join merging two `★`s, or a
//!   `★` with a slot, is inconsistent), and an unmatched atom with a `★`
//!   variable can never be completed (such configurations are pruned);
//! * configurations are kept *antichain-reduced*: a configuration whose
//!   assignment extends another's while matching fewer atoms can be
//!   simulated by it and is dropped. This is what keeps the state count
//!   bounded by a function of the query and the width only.
//!
//! The state count is still exponential in the query size in the worst case
//! (as the paper's nonelementary lower bounds for MSO demand), so the
//! compiler takes a state *budget* and fails with a typed
//! [`CompileError::StateBudget`] instead of diverging.

use crate::alphabet::{EncodingAlphabet, LabelKind};
use std::collections::{BTreeMap, BTreeSet};
use treelineage_automata::{Label, TreeAutomaton};
use treelineage_instance::{RelationId, Signature};
use treelineage_query::{ConjunctiveQuery, MsoFormula, UnionOfConjunctiveQueries};
use treelineage_telemetry::Telemetry;

/// Variable is unassigned.
const UNASSIGNED: u8 = u8::MAX;
/// Variable is assigned to an element that has been forgotten.
const STAR: u8 = u8::MAX - 1;

/// Default state budget of [`CompileOptions`].
pub const DEFAULT_STATE_BUDGET: usize = 4096;

/// Options for the query compiler. (No `Copy` since the telemetry handle
/// holds an `Arc`; construct with `..Default::default()` and clone where
/// reused.)
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Maximum number of deterministic states to enumerate before giving up
    /// with [`CompileError::StateBudget`].
    pub state_budget: usize,
    /// Telemetry sink: [`compile_ucq`] / [`compile_mso`] record a
    /// `query_compile` span, and [`CompiledQuery::automaton_for`] records an
    /// `automaton_materialize` span plus the `query_states` gauge. Defaults
    /// to the no-op handle.
    pub telemetry: Telemetry,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            state_budget: DEFAULT_STATE_BUDGET,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Errors reported by the query compiler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The query's signature differs from the alphabet's.
    SignatureMismatch,
    /// A disjunct exceeds the compiler's representation limits (at most 63
    /// atoms and 250 variables per disjunct, width below 250).
    QueryTooLarge(String),
    /// The reachable deterministic state set exceeded the budget.
    StateBudget {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// The MSO formula lies outside the compilable fragment
    /// (existential-positive first-order logic with disequalities).
    UnsupportedMso(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::SignatureMismatch => {
                write!(f, "query and alphabet signatures differ")
            }
            CompileError::QueryTooLarge(what) => write!(f, "query too large: {what}"),
            CompileError::StateBudget { budget } => {
                write!(f, "automaton state budget of {budget} states exceeded")
            }
            CompileError::UnsupportedMso(what) => {
                write!(f, "MSO formula outside the compilable fragment: {what}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A configuration: one disjunct's partial-match knowledge. `assignment` is
/// indexed by the disjunct's variables; values are a slot, [`STAR`] or
/// [`UNASSIGNED`]. `matched` is a bitmask over the disjunct's atoms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Config {
    disjunct: u16,
    matched: u64,
    assignment: Vec<u8>,
}

/// Per-disjunct static data derived from the query.
#[derive(Debug)]
struct DisjunctInfo {
    /// `(relation, argument variables)` per atom.
    atoms: Vec<(RelationId, Vec<usize>)>,
    /// Disequality pairs (variable indices).
    diseq: Vec<(usize, usize)>,
    var_count: usize,
    /// Bitmask with one bit per atom.
    full: u64,
    /// Atom indices grouped by relation.
    atoms_by_relation: BTreeMap<RelationId, Vec<usize>>,
    /// For each variable, the bitmask of atoms containing it.
    atoms_of_var: Vec<u64>,
}

impl DisjunctInfo {
    fn new(index: usize, cq: &ConjunctiveQuery) -> Result<Self, CompileError> {
        if cq.atom_count() > 63 {
            return Err(CompileError::QueryTooLarge(format!(
                "disjunct {index} has {} atoms (limit 63)",
                cq.atom_count()
            )));
        }
        if cq.variable_count() >= STAR as usize {
            return Err(CompileError::QueryTooLarge(format!(
                "disjunct {index} has {} variables (limit {})",
                cq.variable_count(),
                STAR
            )));
        }
        let atoms: Vec<(RelationId, Vec<usize>)> = cq
            .atoms()
            .iter()
            .map(|a| (a.relation, a.arguments.iter().map(|v| v.0).collect()))
            .collect();
        let mut atoms_by_relation: BTreeMap<RelationId, Vec<usize>> = BTreeMap::new();
        let mut atoms_of_var = vec![0u64; cq.variable_count()];
        for (i, (relation, args)) in atoms.iter().enumerate() {
            atoms_by_relation.entry(*relation).or_default().push(i);
            for &v in args {
                atoms_of_var[v] |= 1 << i;
            }
        }
        Ok(DisjunctInfo {
            full: (1u64 << atoms.len()).wrapping_sub(1),
            diseq: cq
                .disequalities()
                .iter()
                .map(|&(x, y)| (x.0, y.0))
                .collect(),
            var_count: cq.variable_count(),
            atoms,
            atoms_by_relation,
            atoms_of_var,
        })
    }

    /// Extends `assignment` by unifying atom `atom_idx` with a fact at the
    /// given slots; `None` if inconsistent (slot clash, `★`, or a violated
    /// disequality).
    fn unify(&self, assignment: &[u8], atom_idx: usize, slots: &[usize]) -> Option<Vec<u8>> {
        let mut asg = assignment.to_vec();
        let (_, args) = &self.atoms[atom_idx];
        debug_assert_eq!(args.len(), slots.len());
        for (&var, &slot) in args.iter().zip(slots) {
            let slot = slot as u8;
            match asg[var] {
                UNASSIGNED => {
                    // Assigning `var` to this slot identifies it with the
                    // slot's element: any disequality partner already on the
                    // same slot makes the configuration inconsistent.
                    for &(x, y) in &self.diseq {
                        let partner = if x == var {
                            y
                        } else if y == var {
                            x
                        } else {
                            continue;
                        };
                        if asg[partner] == slot {
                            return None;
                        }
                    }
                    asg[var] = slot;
                }
                current if current == slot => {}
                _ => return None, // different slot, or a forgotten element
            }
        }
        Some(asg)
    }
}

/// The compiled-query machine: disjunct data plus state transition logic.
#[derive(Debug)]
struct Compiler {
    disjuncts: Vec<DisjunctInfo>,
    budget: usize,
    /// Interned states: each is a sorted, antichain-reduced configuration
    /// set.
    states: Vec<Vec<Config>>,
    index: BTreeMap<Vec<Config>, usize>,
}

impl Compiler {
    fn new(
        disjuncts: &[ConjunctiveQuery],
        alphabet: &EncodingAlphabet,
        options: CompileOptions,
    ) -> Result<Self, CompileError> {
        if alphabet.slot_count() >= STAR as usize {
            return Err(CompileError::QueryTooLarge(format!(
                "width {} too large (limit {})",
                alphabet.width(),
                STAR
            )));
        }
        let infos = disjuncts
            .iter()
            .enumerate()
            .map(|(i, cq)| DisjunctInfo::new(i, cq))
            .collect::<Result<Vec<_>, _>>()?;
        let mut compiler = Compiler {
            disjuncts: infos,
            budget: options.state_budget,
            states: Vec::new(),
            index: BTreeMap::new(),
        };
        // State 0: the unit state (empty configuration per disjunct), the
        // value of every `Empty` leaf and padding node.
        let unit: Vec<Config> = compiler
            .disjuncts
            .iter()
            .enumerate()
            .map(|(d, info)| Config {
                disjunct: d as u16,
                matched: 0,
                assignment: vec![UNASSIGNED; info.var_count],
            })
            .collect();
        compiler.intern(unit)?;
        Ok(compiler)
    }

    fn intern(&mut self, state: Vec<Config>) -> Result<usize, CompileError> {
        if let Some(&i) = self.index.get(&state) {
            return Ok(i);
        }
        if self.states.len() >= self.budget {
            return Err(CompileError::StateBudget {
                budget: self.budget,
            });
        }
        let i = self.states.len();
        self.index.insert(state.clone(), i);
        self.states.push(state);
        Ok(i)
    }

    /// Antichain reduction: sorted, deduplicated, and with every
    /// configuration dominated by another (smaller-or-equal assignment,
    /// larger-or-equal matched set) removed.
    fn reduce(&self, set: BTreeSet<Config>) -> Vec<Config> {
        let configs: Vec<Config> = set.into_iter().collect();
        let mut keep = vec![true; configs.len()];
        for (i, a) in configs.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            for (j, b) in configs.iter().enumerate() {
                if i == j || !keep[j] || a.disjunct != b.disjunct {
                    continue;
                }
                // `a` dominates `b`: a's assignment is a restriction of b's
                // and a has matched at least b's atoms.
                let dominated = a.matched & b.matched == b.matched
                    && a.assignment
                        .iter()
                        .zip(&b.assignment)
                        .all(|(&x, &y)| x == UNASSIGNED || x == y);
                if dominated {
                    keep[j] = false;
                }
            }
        }
        configs
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| k.then_some(c))
            .collect()
    }

    fn apply_forget(&self, state: usize, slot: usize) -> Vec<Config> {
        let slot = slot as u8;
        let mut out = BTreeSet::new();
        'configs: for cfg in &self.states[state] {
            let info = &self.disjuncts[cfg.disjunct as usize];
            let mut asg = cfg.assignment.clone();
            for value in asg.iter_mut() {
                if *value == slot {
                    *value = STAR;
                }
            }
            // Prune doomed configurations: an unmatched atom over a
            // forgotten element can never be completed.
            for (var, &value) in asg.iter().enumerate() {
                if value == STAR && info.atoms_of_var[var] & !cfg.matched != 0 {
                    continue 'configs;
                }
            }
            out.insert(Config {
                disjunct: cfg.disjunct,
                matched: cfg.matched,
                assignment: asg,
            });
        }
        self.reduce(out)
    }

    fn apply_fact(&self, state: usize, relation: RelationId, slots: &[usize]) -> Vec<Config> {
        let mut out: BTreeSet<Config> = self.states[state].iter().cloned().collect();
        let mut queue: Vec<Config> = self.states[state].clone();
        while let Some(cfg) = queue.pop() {
            let info = &self.disjuncts[cfg.disjunct as usize];
            let Some(atom_indices) = info.atoms_by_relation.get(&relation) else {
                continue;
            };
            for &atom_idx in atom_indices {
                if cfg.matched >> atom_idx & 1 == 1 {
                    continue;
                }
                if let Some(asg) = info.unify(&cfg.assignment, atom_idx, slots) {
                    let next = Config {
                        disjunct: cfg.disjunct,
                        matched: cfg.matched | 1 << atom_idx,
                        assignment: asg,
                    };
                    if out.insert(next.clone()) {
                        queue.push(next);
                    }
                }
            }
        }
        self.reduce(out)
    }

    fn apply_join(&self, left: usize, right: usize) -> Vec<Config> {
        let mut out = BTreeSet::new();
        for a in &self.states[left] {
            'merge: for b in &self.states[right] {
                if a.disjunct != b.disjunct {
                    continue;
                }
                let info = &self.disjuncts[a.disjunct as usize];
                let mut asg = a.assignment.clone();
                for (value, &other) in asg.iter_mut().zip(&b.assignment) {
                    match (*value, other) {
                        (_, UNASSIGNED) => {}
                        (UNASSIGNED, y) => *value = y,
                        // Same slot in both subtrees: same bag element.
                        (x, y) if x == y && x != STAR => {}
                        // Slot clash, or a forgotten element of one subtree
                        // against anything of the other: distinct elements.
                        _ => continue 'merge,
                    }
                }
                // Cross-subtree disequality check: a pair may land on one
                // slot only through the merge.
                for &(x, y) in &info.diseq {
                    if asg[x] != UNASSIGNED && asg[x] != STAR && asg[x] == asg[y] {
                        continue 'merge;
                    }
                }
                out.insert(Config {
                    disjunct: a.disjunct,
                    matched: a.matched | b.matched,
                    assignment: asg,
                });
            }
        }
        self.reduce(out)
    }

    fn is_accepting(&self, state: usize) -> bool {
        self.states[state]
            .iter()
            .any(|c| c.matched == self.disjuncts[c.disjunct as usize].full)
    }
}

/// A query compiled into the deterministic subset-transition machine over
/// an [`EncodingAlphabet`], with a persistent state / transition memo.
///
/// [`CompiledQuery::automaton_for`] materializes, for a concrete uncertain
/// tree, the fragment of the (abstract, doubly-exponential) subset
/// automaton that the tree can reach under *any* valuation of its events —
/// a deterministic [`TreeAutomaton`] on the alphabet that is complete for
/// that tree. States and transitions are interned once and shared across
/// materializations, so compiling one query against many encodings (or the
/// same encoding repeatedly) amortizes like the shared `dd` engine's
/// persistent caches.
#[derive(Debug)]
pub struct CompiledQuery {
    alphabet: EncodingAlphabet,
    compiler: Compiler,
    /// Memoized transitions of non-join labels applied to a state (the
    /// right child is always the padding state 0).
    unary: BTreeMap<(Label, usize), usize>,
    /// Memoized join transitions.
    join: BTreeMap<(usize, usize), usize>,
    /// Carried over from [`CompileOptions`]; observes materializations.
    telemetry: Telemetry,
}

impl CompiledQuery {
    /// Number of deterministic states enumerated so far (grows as trees are
    /// materialized, bounded by the state budget).
    pub fn state_count(&self) -> usize {
        self.compiler.states.len()
    }

    /// The alphabet the query was compiled over.
    pub fn alphabet(&self) -> &EncodingAlphabet {
        &self.alphabet
    }

    /// The transition for `label` on child states `(left, right)`, computed
    /// and memoized on demand. `None` when the combination cannot occur on a
    /// well-formed encoding (e.g. a structural label over a non-padding
    /// right child): the materialized automaton simply has no transition
    /// there.
    fn delta(
        &mut self,
        label: Label,
        left: usize,
        right: usize,
    ) -> Result<Option<usize>, CompileError> {
        match self.alphabet.kind(label) {
            LabelKind::Empty => Ok(None),
            LabelKind::Join => {
                if let Some(&t) = self.join.get(&(left, right)) {
                    return Ok(Some(t));
                }
                let target = self.compiler.apply_join(left, right);
                let target = self.compiler.intern(target)?;
                self.join.insert((left, right), target);
                Ok(Some(target))
            }
            kind => {
                // Structural / fact nodes carry their real subtree on the
                // left and an `Empty` padding leaf (state 0) on the right.
                if right != 0 {
                    return Ok(None);
                }
                if let Some(&t) = self.unary.get(&(label, left)) {
                    return Ok(Some(t));
                }
                let target = match kind {
                    // Introducing a fresh element changes no configuration.
                    LabelKind::Introduce(_) => left,
                    LabelKind::Forget(slot) => {
                        let target = self.compiler.apply_forget(left, slot);
                        self.compiler.intern(target)?
                    }
                    LabelKind::Fact {
                        relation,
                        slots,
                        present,
                    } => {
                        if present {
                            let target = self.compiler.apply_fact(left, relation, &slots);
                            self.compiler.intern(target)?
                        } else {
                            left // an absent fact asserts nothing
                        }
                    }
                    LabelKind::Empty | LabelKind::Join => unreachable!(),
                };
                self.unary.insert((label, left), target);
                Ok(Some(target))
            }
        }
    }

    /// Materializes the deterministic automaton for `tree` (an uncertain
    /// tree over this query's alphabet, e.g. a
    /// [`TreeEncoding`](crate::TreeEncoding)'s tree): one bottom-up pass
    /// enumerating, per node, the states reachable under any valuation of
    /// the events, then a [`TreeAutomaton`] over every state and transition
    /// interned so far. The result accepts an instantiation of `tree` iff
    /// the decoded subinstance satisfies the query.
    pub fn automaton_for(
        &mut self,
        tree: &treelineage_automata::UncertainTree,
    ) -> Result<TreeAutomaton, CompileError> {
        use treelineage_automata::NodeAnnotation;
        let _span = self.telemetry.span("automaton_materialize");
        let structure = tree.tree();
        let mut reach: Vec<Vec<usize>> = vec![Vec::new(); structure.node_count()];
        for node in structure.post_order() {
            let alternatives: Vec<Label> = match tree.annotation(node) {
                NodeAnnotation::Fixed => vec![structure.label(node)],
                NodeAnnotation::Event {
                    if_true, if_false, ..
                } => {
                    if if_true == if_false {
                        vec![if_true]
                    } else {
                        vec![if_true, if_false]
                    }
                }
            };
            let mut states = BTreeSet::new();
            match structure.children(node) {
                None => {
                    // Leaves of well-formed encodings are `Empty` padding,
                    // evaluating to the unit state 0.
                    for label in alternatives {
                        if matches!(self.alphabet.kind(label), LabelKind::Empty) {
                            states.insert(0);
                        }
                    }
                }
                Some((l, r)) => {
                    let lefts = std::mem::take(&mut reach[l.0]);
                    let rights = std::mem::take(&mut reach[r.0]);
                    for &label in &alternatives {
                        for &a in &lefts {
                            for &b in &rights {
                                if let Some(t) = self.delta(label, a, b)? {
                                    states.insert(t);
                                }
                            }
                        }
                    }
                }
            }
            reach[node.0] = states.into_iter().collect();
        }

        let mut automaton = TreeAutomaton::new(self.compiler.states.len(), self.alphabet.size());
        automaton.add_leaf_transition(self.alphabet.empty(), 0);
        for (&(label, a), &target) in &self.unary {
            automaton.add_internal_transition(label, a, 0, target);
        }
        let join_label = self.alphabet.join();
        for (&(a, b), &target) in &self.join {
            automaton.add_internal_transition(join_label, a, b, target);
        }
        for state in 0..self.compiler.states.len() {
            if self.compiler.is_accepting(state) {
                automaton.add_accepting(state);
            }
        }
        debug_assert!(automaton.is_deterministic());
        self.telemetry
            .gauge_set("query_states", &[], self.compiler.states.len() as i64);
        Ok(automaton)
    }
}

/// Compiles a UCQ≠ into the deterministic subset-transition machine over
/// the alphabet (see the module docs and [`CompiledQuery`]). The machine
/// depends only on the query and the alphabet (signature + width);
/// materialize concrete automata with [`CompiledQuery::automaton_for`].
pub fn compile_ucq(
    query: &UnionOfConjunctiveQueries,
    alphabet: &EncodingAlphabet,
    options: CompileOptions,
) -> Result<CompiledQuery, CompileError> {
    if query.signature() != alphabet.signature() {
        return Err(CompileError::SignatureMismatch);
    }
    compile_disjuncts(query.disjuncts().to_vec(), alphabet, options)
}

/// Compiles the existential-positive first-order fragment of MSO (atoms,
/// conjunction, disjunction, first-order existentials, equalities and
/// negated equalities) by translation to a UCQ≠; every other construct is
/// rejected with a typed [`CompileError::UnsupportedMso`]. A formula that
/// normalizes to *false* compiles to the machine rejecting every tree.
pub fn compile_mso(
    formula: &MsoFormula,
    alphabet: &EncodingAlphabet,
    options: CompileOptions,
) -> Result<CompiledQuery, CompileError> {
    let disjuncts = mso_to_disjuncts(formula, alphabet.signature())?;
    compile_disjuncts(disjuncts, alphabet, options)
}

/// Shared by the UCQ and MSO entry points. An empty disjunct list compiles
/// to the machine rejecting everything.
fn compile_disjuncts(
    disjuncts: Vec<ConjunctiveQuery>,
    alphabet: &EncodingAlphabet,
    options: CompileOptions,
) -> Result<CompiledQuery, CompileError> {
    let telemetry = options.telemetry.clone();
    let _span = telemetry.span("query_compile");
    let compiler = Compiler::new(&disjuncts, alphabet, options)?;
    Ok(CompiledQuery {
        alphabet: alphabet.clone(),
        compiler,
        unary: BTreeMap::new(),
        join: BTreeMap::new(),
        telemetry,
    })
}

/// A conjunction collected during MSO normalization.
#[derive(Clone, Default)]
struct MsoConj {
    atoms: Vec<(RelationId, Vec<usize>)>,
    equalities: Vec<(usize, usize)>,
    disequalities: Vec<(usize, usize)>,
}

/// Translates the existential-positive fragment into CQ≠ disjuncts
/// (returns an empty list for a formula normalizing to false). Public
/// entry point for reuse: [`mso_to_ucq`].
fn mso_to_disjuncts(
    formula: &MsoFormula,
    signature: &Signature,
) -> Result<Vec<ConjunctiveQuery>, CompileError> {
    let dnf = normalize_mso(formula, signature, &mut MsoScope::default())?;
    let mut disjuncts = Vec::new();
    'conjs: for conj in dnf {
        // Close equalities: union-find over the variables mentioned.
        let mut vars: BTreeSet<usize> = BTreeSet::new();
        for (_, args) in &conj.atoms {
            vars.extend(args.iter().copied());
        }
        for &(x, y) in conj.equalities.iter().chain(&conj.disequalities) {
            vars.insert(x);
            vars.insert(y);
        }
        let ids: Vec<usize> = vars.iter().copied().collect();
        let mut parent: BTreeMap<usize, usize> = ids.iter().map(|&v| (v, v)).collect();
        fn find(parent: &mut BTreeMap<usize, usize>, v: usize) -> usize {
            let p = parent[&v];
            if p == v {
                return v;
            }
            let root = find(parent, p);
            parent.insert(v, root);
            root
        }
        for &(x, y) in &conj.equalities {
            let (rx, ry) = (find(&mut parent, x), find(&mut parent, y));
            if rx != ry {
                parent.insert(rx, ry);
            }
        }
        let mut builder = ConjunctiveQuery::builder(signature);
        let name = |v: usize| format!("x{v}");
        let mut constrained: BTreeSet<usize> = BTreeSet::new();
        for (relation, args) in &conj.atoms {
            let arg_names: Vec<String> = args.iter().map(|&v| name(find(&mut parent, v))).collect();
            let arg_refs: Vec<&str> = arg_names.iter().map(|s| s.as_str()).collect();
            builder = builder.atom(signature.relation(*relation).name(), &arg_refs);
            constrained.extend(args.iter().map(|&v| find(&mut parent, v)));
        }
        for &(x, y) in &conj.disequalities {
            let (rx, ry) = (find(&mut parent, x), find(&mut parent, y));
            if rx == ry {
                continue 'conjs; // x != x: this disjunct is unsatisfiable
            }
            if !constrained.contains(&rx) || !constrained.contains(&ry) {
                return Err(CompileError::UnsupportedMso(
                    "disequality over a variable not occurring in any atom".into(),
                ));
            }
            builder = builder.disequality(&name(rx), &name(ry));
        }
        disjuncts.push(builder.build());
    }
    Ok(disjuncts)
}

/// Translates the existential-positive fragment of MSO into a UCQ≠, or
/// `None` when the formula normalizes to *false* (a UCQ needs at least one
/// disjunct). Constructs outside the fragment yield
/// [`CompileError::UnsupportedMso`].
pub fn mso_to_ucq(
    formula: &MsoFormula,
    signature: &Signature,
) -> Result<Option<UnionOfConjunctiveQueries>, CompileError> {
    let disjuncts = mso_to_disjuncts(formula, signature)?;
    Ok(if disjuncts.is_empty() {
        None
    } else {
        Some(UnionOfConjunctiveQueries::new(disjuncts))
    })
}

const MAX_MSO_DISJUNCTS: usize = 4096;

/// Alpha-renaming environment for [`normalize_mso`]: the same [`FoVar`](
/// treelineage_query::FoVar) id reused in disjoint (or shadowing)
/// existential scopes denotes *different* variables, so every binder
/// allocates a fresh canonical id and atoms are rewritten through the
/// innermost binding. Free variables (in non-sentence formulas) get one
/// stable canonical id each.
#[derive(Default)]
struct MsoScope {
    /// Innermost binding per source variable id.
    bound: BTreeMap<usize, usize>,
    /// Canonical ids of free (unbound) source variables.
    free: BTreeMap<usize, usize>,
    next: usize,
}

impl MsoScope {
    fn fresh(&mut self) -> usize {
        let c = self.next;
        self.next += 1;
        c
    }

    fn canonical(&mut self, v: usize) -> usize {
        if let Some(&c) = self.bound.get(&v) {
            return c;
        }
        if let Some(&c) = self.free.get(&v) {
            return c;
        }
        let c = self.fresh();
        self.free.insert(v, c);
        c
    }
}

fn normalize_mso(
    formula: &MsoFormula,
    signature: &Signature,
    scope: &mut MsoScope,
) -> Result<Vec<MsoConj>, CompileError> {
    match formula {
        MsoFormula::Atom {
            relation,
            arguments,
        } => {
            if relation.0 >= signature.relation_count() {
                return Err(CompileError::UnsupportedMso(format!(
                    "unknown relation R{}",
                    relation.0
                )));
            }
            if signature.arity(*relation) != arguments.len() {
                return Err(CompileError::UnsupportedMso(format!(
                    "arity mismatch for {}",
                    signature.relation(*relation).name()
                )));
            }
            Ok(vec![MsoConj {
                atoms: vec![(
                    *relation,
                    arguments.iter().map(|v| scope.canonical(v.0)).collect(),
                )],
                ..MsoConj::default()
            }])
        }
        MsoFormula::Equal(x, y) => Ok(vec![MsoConj {
            equalities: vec![(scope.canonical(x.0), scope.canonical(y.0))],
            ..MsoConj::default()
        }]),
        MsoFormula::Not(inner) => match &**inner {
            MsoFormula::Equal(x, y) => Ok(vec![MsoConj {
                disequalities: vec![(scope.canonical(x.0), scope.canonical(y.0))],
                ..MsoConj::default()
            }]),
            _ => Err(CompileError::UnsupportedMso(
                "negation (other than of an equality)".into(),
            )),
        },
        MsoFormula::And(parts) => {
            let mut acc = vec![MsoConj::default()];
            for part in parts {
                let options = normalize_mso(part, signature, scope)?;
                let mut next = Vec::new();
                for conj in &acc {
                    for option in &options {
                        let mut merged = conj.clone();
                        merged.atoms.extend(option.atoms.iter().cloned());
                        merged.equalities.extend(option.equalities.iter().copied());
                        merged
                            .disequalities
                            .extend(option.disequalities.iter().copied());
                        next.push(merged);
                    }
                }
                if next.len() > MAX_MSO_DISJUNCTS {
                    return Err(CompileError::QueryTooLarge(format!(
                        "MSO normalization exceeds {MAX_MSO_DISJUNCTS} disjuncts"
                    )));
                }
                acc = next;
            }
            Ok(acc)
        }
        MsoFormula::Or(parts) => {
            let mut acc = Vec::new();
            for part in parts {
                acc.extend(normalize_mso(part, signature, scope)?);
                if acc.len() > MAX_MSO_DISJUNCTS {
                    return Err(CompileError::QueryTooLarge(format!(
                        "MSO normalization exceeds {MAX_MSO_DISJUNCTS} disjuncts"
                    )));
                }
            }
            Ok(acc)
        }
        MsoFormula::ExistsFo(v, inner) => {
            // Alpha-rename: this binder's occurrences are a fresh variable,
            // shadowing any outer binding of the same source id.
            let fresh = scope.fresh();
            let saved = scope.bound.insert(v.0, fresh);
            let result = normalize_mso(inner, signature, scope);
            match saved {
                Some(previous) => scope.bound.insert(v.0, previous),
                None => scope.bound.remove(&v.0),
            };
            result
        }
        MsoFormula::Member(_, _) => Err(CompileError::UnsupportedMso("set membership".into())),
        MsoFormula::Implies(_, _) => Err(CompileError::UnsupportedMso("implication".into())),
        MsoFormula::ForallFo(_, _) => Err(CompileError::UnsupportedMso(
            "universal first-order quantification".into(),
        )),
        MsoFormula::ExistsSet(_, _) | MsoFormula::ForallSet(_, _) => Err(
            CompileError::UnsupportedMso("second-order quantification".into()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use std::collections::BTreeSet;
    use treelineage_instance::{encodings, FactId, Instance};
    use treelineage_query::{matching, parse_query, FoVar};

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    fn chain(n: usize) -> Instance {
        let mut inst = Instance::new(rst());
        for i in 0..n as u64 {
            inst.add_fact_by_name("R", &[i]);
            inst.add_fact_by_name("S", &[i, i + 1]);
            inst.add_fact_by_name("T", &[i + 1]);
        }
        inst
    }

    fn heuristic_td(inst: &Instance) -> treelineage_graph::TreeDecomposition {
        let (graph, _) = inst.gaifman_graph();
        treelineage_graph::treewidth::treewidth_upper_bound(&graph).1
    }

    /// Checks the compiled automaton against brute-force query evaluation on
    /// every world of the instance.
    fn check_automaton_on(query: &UnionOfConjunctiveQueries, inst: &Instance) {
        let encoding = encode(inst, &heuristic_td(inst)).unwrap();
        let mut compiled =
            compile_ucq(query, encoding.alphabet(), CompileOptions::default()).unwrap();
        let automaton = compiled.automaton_for(encoding.tree()).unwrap();
        assert!(automaton.is_deterministic());
        let n = inst.fact_count();
        assert!(n <= 12, "brute-force check limited to 12 facts");
        for mask in 0u32..(1 << n) {
            let world: BTreeSet<FactId> =
                (0..n).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
            let concrete = encoding.tree().instantiate(&|e| world.contains(&FactId(e)));
            assert_eq!(
                automaton.accepts(&concrete),
                matching::satisfied_in_world(query, inst, &world),
                "query {query}, mask {mask}"
            );
        }
    }

    #[test]
    fn unsafe_query_on_chains() {
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        for n in 1..=3 {
            check_automaton_on(&q, &chain(n));
        }
    }

    #[test]
    fn ucq_with_disequality_on_chains() {
        let q = parse_query(&rst(), "S(x, y), S(y, z), x != z | R(x), T(x)").unwrap();
        check_automaton_on(&q, &chain(3));
    }

    #[test]
    fn self_join_with_disequality_on_treelike() {
        let sig = Signature::builder()
            .relation("R", 2)
            .relation("S", 2)
            .relation("L", 1)
            .build();
        let queries = [
            "S(x, y), S(y, z), x != z",
            "L(x), R(x, y) | L(y), S(x, y)",
            "R(x, y), R(y, x)",
        ];
        for seed in [1u64, 5, 11] {
            let inst = encodings::random_treelike_instance(&sig, 5, 2, seed);
            if inst.fact_count() == 0 || inst.fact_count() > 10 {
                continue;
            }
            for q in &queries {
                check_automaton_on(&parse_query(&sig, q).unwrap(), &inst);
            }
        }
    }

    #[test]
    fn repeated_variable_atoms() {
        let sig = Signature::builder().relation("S", 2).build();
        let mut inst = Instance::new(sig.clone());
        inst.add_fact_by_name("S", &[1, 1]);
        inst.add_fact_by_name("S", &[1, 2]);
        let q = parse_query(&sig, "S(x, x)").unwrap();
        check_automaton_on(&q, &inst);
    }

    #[test]
    fn state_budget_is_enforced() {
        let q = parse_query(&rst(), "S(x, y), S(y, z), S(z, w), x != w").unwrap();
        let inst = chain(4);
        let encoding = encode(&inst, &heuristic_td(&inst)).unwrap();
        let mut compiled = compile_ucq(
            &q,
            encoding.alphabet(),
            CompileOptions {
                state_budget: 2,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            compiled.automaton_for(encoding.tree()).unwrap_err(),
            CompileError::StateBudget { budget: 2 }
        );
    }

    #[test]
    fn compiled_query_states_saturate_per_family() {
        // The reachable deterministic state count is bounded per instance
        // family (the Theorem 6.7 phenomenon): materializing ever longer
        // chains stops discovering new states, and the memo is shared
        // across materializations.
        let q = parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap();
        let mut compiled = {
            let inst = chain(2);
            let enc = encode(&inst, &heuristic_td(&inst)).unwrap();
            compile_ucq(&q, enc.alphabet(), CompileOptions::default()).unwrap()
        };
        let mut counts = Vec::new();
        for n in [2usize, 8, 16, 32] {
            let inst = chain(n);
            let enc = encode(&inst, &heuristic_td(&inst)).unwrap();
            compiled.automaton_for(enc.tree()).unwrap();
            counts.push(compiled.state_count());
        }
        assert_eq!(counts[1], counts[2], "counts {counts:?}");
        assert_eq!(counts[2], counts[3], "counts {counts:?}");
    }

    #[test]
    fn signature_mismatch_is_rejected() {
        let q = parse_query(&rst(), "R(x)").unwrap();
        let other = Signature::builder().relation("R", 1).build();
        let alphabet = EncodingAlphabet::new(&other, 1).unwrap();
        assert_eq!(
            compile_ucq(&q, &alphabet, CompileOptions::default()).unwrap_err(),
            CompileError::SignatureMismatch
        );
    }

    #[test]
    fn mso_existential_positive_fragment_compiles() {
        // ∃x ∃y R(x) ∧ R(y) ∧ ¬(x = y): Proposition 7.1's CQ≠ in FO form.
        let sig = Signature::builder().relation("R", 1).build();
        let r = sig.relation_by_name("R").unwrap();
        let formula = treelineage_query::two_distinct_unary(r);
        let ucq = mso_to_ucq(&formula, &sig).unwrap().unwrap();
        let mut inst = Instance::new(sig.clone());
        inst.add_fact_by_name("R", &[1]);
        inst.add_fact_by_name("R", &[2]);
        inst.add_fact_by_name("R", &[3]);
        let encoding = encode(&inst, &heuristic_td(&inst)).unwrap();
        let mut compiled =
            compile_mso(&formula, encoding.alphabet(), CompileOptions::default()).unwrap();
        let automaton = compiled.automaton_for(encoding.tree()).unwrap();
        for mask in 0u32..8 {
            let world: BTreeSet<FactId> =
                (0..3).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
            let concrete = encoding.tree().instantiate(&|e| world.contains(&FactId(e)));
            let expected = matching::satisfied_in_world(&ucq, &inst, &world);
            assert_eq!(automaton.accepts(&concrete), expected, "mask {mask}");
            assert_eq!(expected, world.len() >= 2, "mask {mask}");
        }
    }

    #[test]
    fn mso_equality_substitution() {
        // ∃x ∃y R(x) ∧ x = y ∧ T(y)  ≡  R(x), T(x).
        let sig = rst();
        let r = sig.relation_by_name("R").unwrap();
        let t = sig.relation_by_name("T").unwrap();
        let formula = MsoFormula::ExistsFo(
            FoVar(0),
            Box::new(MsoFormula::ExistsFo(
                FoVar(1),
                Box::new(MsoFormula::And(vec![
                    MsoFormula::Atom {
                        relation: r,
                        arguments: vec![FoVar(0)],
                    },
                    MsoFormula::Equal(FoVar(0), FoVar(1)),
                    MsoFormula::Atom {
                        relation: t,
                        arguments: vec![FoVar(1)],
                    },
                ])),
            )),
        );
        let ucq = mso_to_ucq(&formula, &sig).unwrap().unwrap();
        // One variable class: both atoms range over the same (merged)
        // variable, whichever representative the union-find picked.
        assert_eq!(ucq.disjuncts().len(), 1);
        let cq = &ucq.disjuncts()[0];
        assert_eq!(cq.atom_count(), 2);
        assert_eq!(cq.variable_count(), 1);
    }

    #[test]
    fn mso_reused_binder_in_disjoint_scopes_is_alpha_renamed() {
        // (∃x R(x)) ∧ (∃x T(x)) written with the SAME FoVar in both scopes:
        // the two binders are different variables, so on {R(1), T(2)} the
        // formula holds even though no single element has both facts.
        let sig = rst();
        let r = sig.relation_by_name("R").unwrap();
        let t = sig.relation_by_name("T").unwrap();
        let x = FoVar(0);
        let formula = MsoFormula::And(vec![
            MsoFormula::ExistsFo(
                x,
                Box::new(MsoFormula::Atom {
                    relation: r,
                    arguments: vec![x],
                }),
            ),
            MsoFormula::ExistsFo(
                x,
                Box::new(MsoFormula::Atom {
                    relation: t,
                    arguments: vec![x],
                }),
            ),
        ]);
        let ucq = mso_to_ucq(&formula, &sig).unwrap().unwrap();
        assert_eq!(ucq.disjuncts().len(), 1);
        // Two distinct variables after alpha-renaming, not one conflated.
        assert_eq!(ucq.disjuncts()[0].variable_count(), 2);

        let mut inst = Instance::new(sig.clone());
        inst.add_fact_by_name("R", &[1]);
        inst.add_fact_by_name("T", &[2]);
        assert!(formula.holds_on(&inst));
        let encoding = encode(&inst, &heuristic_td(&inst)).unwrap();
        let mut compiled =
            compile_mso(&formula, encoding.alphabet(), CompileOptions::default()).unwrap();
        let automaton = compiled.automaton_for(encoding.tree()).unwrap();
        assert!(automaton.accepts(&encoding.tree().instantiate(&|_| true)));
        // Shadowing: ∃x (R(x) ∧ ∃x T(x)) — inner x is its own variable too.
        let shadowed = MsoFormula::ExistsFo(
            x,
            Box::new(MsoFormula::And(vec![
                MsoFormula::Atom {
                    relation: r,
                    arguments: vec![x],
                },
                MsoFormula::ExistsFo(
                    x,
                    Box::new(MsoFormula::Atom {
                        relation: t,
                        arguments: vec![x],
                    }),
                ),
            ])),
        );
        let ucq = mso_to_ucq(&shadowed, &sig).unwrap().unwrap();
        assert_eq!(ucq.disjuncts()[0].variable_count(), 2);
    }

    #[test]
    fn mso_outside_fragment_is_rejected() {
        let sig = Signature::builder()
            .relation("L", 1)
            .relation("E", 2)
            .build();
        let mso = treelineage_query::odd_number_of_labels(
            sig.relation_by_name("L").unwrap(),
            sig.relation_by_name("E").unwrap(),
        );
        assert!(matches!(
            mso_to_ucq(&mso, &sig),
            Err(CompileError::UnsupportedMso(_))
        ));
        // A contradiction normalizes to the empty disjunct list -> the
        // rejecting automaton.
        let x = FoVar(0);
        let contradiction = MsoFormula::And(vec![
            MsoFormula::Atom {
                relation: sig.relation_by_name("L").unwrap(),
                arguments: vec![x],
            },
            MsoFormula::Not(Box::new(MsoFormula::Equal(x, x))),
        ]);
        assert!(mso_to_ucq(&contradiction, &sig).unwrap().is_none());
        let mut inst = Instance::new(sig.clone());
        inst.add_fact_by_name("L", &[1]);
        let encoding = encode(&inst, &heuristic_td(&inst)).unwrap();
        let mut compiled = compile_mso(
            &contradiction,
            encoding.alphabet(),
            CompileOptions::default(),
        )
        .unwrap();
        let automaton = compiled.automaton_for(encoding.tree()).unwrap();
        assert!(automaton.accepting_states().is_empty());
    }
}
