//! Round-trip property suite for the tree encoding: on random treelike
//! instances with a known decomposition, the encoding must decode back to
//! exactly the encoded subinstance in *every* world (event valuation), the
//! self-contained decode must reconstruct the instance up to isomorphism,
//! and the full pipeline (query→automaton + provenance on the encoding)
//! must produce a certified smooth d-SDNNF agreeing with brute-force query
//! evaluation on every world.

use proptest::prelude::*;
use std::collections::BTreeSet;
use treelineage_automata::compile_structured_dnnf;
use treelineage_circuit::Dnnf;
use treelineage_encoding::{compile_ucq, encode, CompileOptions};
use treelineage_instance::{strategies, FactId, Instance, Signature};
use treelineage_query::{matching, parse_query, UnionOfConjunctiveQueries};

fn sig() -> Signature {
    Signature::builder()
        .relation("R", 2)
        .relation("S", 2)
        .relation("L", 1)
        .build()
}

fn queries() -> Vec<UnionOfConjunctiveQueries> {
    [
        "R(x, y), S(y, z)",
        "S(x, y), S(y, z), x != z",
        "L(x), R(x, y) | L(y), S(x, y)",
    ]
    .iter()
    .map(|t| parse_query(&sig(), t).unwrap())
    .collect()
}

fn same_facts(a: &Instance, b: &Instance) -> bool {
    a.fact_count() == b.fact_count() && a.includes(b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact decode: every world instantiates to precisely that
    /// subinstance, and the event universe is the fact-id set.
    #[test]
    fn decode_inverts_encode_on_every_world(
        (inst, td) in strategies::treelike_instance_with_decomposition(sig(), 6, 2),
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let encoding = encode(&inst, &td).unwrap();
        prop_assert_eq!(encoding.fact_count(), inst.fact_count());
        prop_assert_eq!(
            encoding.tree().events(),
            (0..inst.fact_count()).collect::<Vec<_>>()
        );
        for mask in 0u32..(1 << inst.fact_count()) {
            let world: BTreeSet<FactId> = (0..inst.fact_count())
                .filter(|i| mask >> i & 1 == 1)
                .map(FactId)
                .collect();
            let decoded = encoding.decode(&|f| world.contains(&f));
            let expected = inst.subinstance(&world);
            prop_assert!(same_facts(&decoded, &expected), "mask {}", mask);
        }
    }

    /// Self-contained decode (fresh elements): isomorphic reconstruction
    /// from the tree alone — the paper's decode direction.
    #[test]
    fn fresh_decode_is_isomorphic(
        (inst, td) in strategies::treelike_instance_with_decomposition(sig(), 5, 2),
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 8);
        prop_assume!(inst.domain_size() <= 6);
        let encoding = encode(&inst, &td).unwrap();
        prop_assert!(encoding.decode_fresh(&|_| true).isomorphic_to(&inst));
    }

    /// The full Section 6 pipeline on the encoding: the automaton is
    /// deterministic, accepts exactly the satisfying worlds, and its
    /// provenance d-SDNNF is certified (verified d-DNNF, smooth, vtree
    /// respected) and function-equal to brute-force evaluation.
    #[test]
    fn pipeline_on_encoding_matches_bruteforce(
        (inst, td) in strategies::treelike_instance_with_decomposition(sig(), 5, 2),
        qi in 0usize..3,
    ) {
        prop_assume!(inst.fact_count() > 0 && inst.fact_count() <= 10);
        let q = &queries()[qi];
        let encoding = encode(&inst, &td).unwrap();
        let mut compiled =
            compile_ucq(q, encoding.alphabet(), CompileOptions::default()).unwrap();
        let automaton = compiled.automaton_for(encoding.tree()).unwrap();
        prop_assert!(automaton.is_deterministic());
        let structured = compile_structured_dnnf(&automaton, encoding.tree()).unwrap();
        prop_assert!(Dnnf::verify(structured.dnnf().circuit().clone()).is_ok());
        prop_assert!(structured.dnnf().is_smooth());
        prop_assert!(structured.vtree().respects(structured.dnnf().circuit()).is_ok());
        for mask in 0u32..(1 << inst.fact_count()) {
            let world: BTreeSet<FactId> = (0..inst.fact_count())
                .filter(|i| mask >> i & 1 == 1)
                .map(FactId)
                .collect();
            let expected = matching::satisfied_in_world(q, &inst, &world);
            let concrete = encoding.tree().instantiate(&|e| world.contains(&FactId(e)));
            prop_assert_eq!(automaton.accepts(&concrete), expected, "query {}, mask {}", q, mask);
            let events: BTreeSet<usize> = world.iter().map(|f| f.0).collect();
            prop_assert_eq!(
                structured.dnnf().circuit().evaluate_set(&events),
                expected,
                "provenance, query {}, mask {}", q, mask
            );
        }
    }
}
