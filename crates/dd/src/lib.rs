//! Shared decision-diagram engine for the `treelineage` workspace.
//!
//! The paper's upper bounds (Section 6, Lemma 6.6) compile lineage circuits
//! into OBDDs; `treelineage-circuit`'s [`treelineage_circuit::Obdd`] stays
//! the small, literal-to-the-paper construction (and the differential-testing
//! oracle), while this crate provides the *engine* the rest of the workspace
//! runs on:
//!
//! * [`Manager`] — a shared, hash-consed node store hosting many functions at
//!   once, with **complement edges** ([`NodeId`] carries a negation bit, so
//!   `not` is O(1) and `f`/`¬f` share all nodes), a **persistent
//!   if-then-else cache** that keeps accelerating across calls, generic
//!   n-ary [`Manager::and_all`] / [`Manager::or_all`],
//!   [`Manager::restrict`] / [`Manager::compose`] and existential /
//!   universal quantification, plus memoized [`Manager::count_models`] and
//!   [`Manager::probability`] (weighted model counting) computed directly on
//!   the shared nodes with a single cache per query;
//! * [`order`] — variable orders derived from `treelineage-graph`'s tree /
//!   path decompositions (the \[35\]-style layout behind Theorems 6.5 / 6.7,
//!   nice-decomposition traversal orders, and a min-fill fallback);
//! * [`Stats`] — store / cache statistics for the experiment harness.
//!
//! Width and size of a function ([`Manager::width`], [`Manager::size`])
//! report the measures of the *equivalent plain reduced OBDD* (Definition
//! 6.4 of the paper), so the Section 8 experiments read the same numbers off
//! this engine as off the legacy per-diagram construction, just faster.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod manager;
mod node;
pub mod order;
mod stats;

pub use manager::Manager;
pub use node::NodeId;
pub use stats::Stats;
