//! Variable orders derived from tree and path decompositions.
//!
//! The OBDD upper bounds of the paper (Theorems 6.5 / 6.7) rely on variable
//! orders that follow a decomposition of the instance: facts covered by
//! nearby bags are tested together, so the diagram's cross-sections only
//! ever see a bounded window of the instance. This module centralizes those
//! orders so callers (the lineage pipeline, the benches, user code) never
//! hand-roll them:
//!
//! * [`bag_layout`] — the depth-first layout ΠR of \[35\]: bags laid out by a
//!   pre-order traversal with children visited in increasing subtree size;
//! * [`order_by_first_covering_bag`] — place arbitrary items (facts, edges,
//!   …) at the first bag of the layout covering their vertex set;
//! * [`vertex_order_from_decomposition`] / [`vertex_order_from_nice`] — the
//!   induced vertex orders (for nice decompositions this is the traversal /
//!   introduce order);
//! * [`min_fill_vertex_order`] — the min-fill fallback when no decomposition
//!   is supplied: build one heuristically, then lay it out the same way.

use std::collections::BTreeSet;
use treelineage_graph::{
    treewidth, BagId, Graph, NiceNode, NiceTreeDecomposition, TreeDecomposition, Vertex,
};

/// Depth-first layout of the decomposition's bags rooted at bag 0, visiting
/// children in increasing subtree size (the in-order traversal ΠR of \[35\]).
/// Empty for a decomposition without bags.
pub fn bag_layout(td: &TreeDecomposition) -> Vec<BagId> {
    if td.bag_count() == 0 {
        return Vec::new();
    }
    // Subtree sizes via an iterative post-order from bag 0.
    let mut subtree_size = vec![1usize; td.bag_count()];
    let mut parent = vec![usize::MAX; td.bag_count()];
    let mut post = Vec::new();
    let mut stack = vec![(0usize, usize::MAX, false)];
    while let Some((bag, from, expanded)) = stack.pop() {
        if expanded {
            post.push(bag);
            continue;
        }
        parent[bag] = from;
        stack.push((bag, from, true));
        for &next in td.tree_neighbors(bag) {
            if next != from {
                stack.push((next, bag, false));
            }
        }
    }
    for &bag in &post {
        for &next in td.tree_neighbors(bag) {
            if next != parent[bag] {
                subtree_size[bag] += subtree_size[next];
            }
        }
    }
    // Pre-order traversal with children sorted by subtree size.
    let mut layout = Vec::with_capacity(td.bag_count());
    let mut stack = vec![(0usize, usize::MAX)];
    while let Some((bag, from)) = stack.pop() {
        layout.push(bag);
        let mut children: Vec<usize> = td
            .tree_neighbors(bag)
            .iter()
            .copied()
            .filter(|&n| n != from)
            .collect();
        // Larger subtrees are pushed first so that smaller ones are visited
        // first (stack order).
        children.sort_by_key(|&c| std::cmp::Reverse(subtree_size[c]));
        for c in children {
            stack.push((c, bag));
        }
    }
    layout
}

/// Orders items (each given by its set of decomposition vertices) by the
/// first bag of [`bag_layout`] containing all of the item's vertices; items
/// covered by no bag go last, ties are broken by item index. Returns the
/// permutation of item indices — for the lineage pipeline the items are
/// facts and the result is directly the OBDD variable order.
pub fn order_by_first_covering_bag(
    td: &TreeDecomposition,
    items: &[BTreeSet<Vertex>],
) -> Vec<usize> {
    let layout = bag_layout(td);
    let mut keyed: Vec<(usize, usize)> = Vec::with_capacity(items.len());
    for (index, vertices) in items.iter().enumerate() {
        let position = layout
            .iter()
            .position(|&bag| vertices.iter().all(|v| td.bag(bag).contains(v)))
            .unwrap_or(usize::MAX);
        keyed.push((position, index));
    }
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, index)| index).collect()
}

/// The vertex order induced by [`bag_layout`]: each vertex appears at the
/// first bag containing it, vertices within one bag in ascending order.
pub fn vertex_order_from_decomposition(td: &TreeDecomposition) -> Vec<Vertex> {
    let mut seen: BTreeSet<Vertex> = BTreeSet::new();
    let mut order = Vec::new();
    for bag in bag_layout(td) {
        for &v in td.bag(bag) {
            if seen.insert(v) {
                order.push(v);
            }
        }
    }
    order
}

/// The traversal order of a *nice* decomposition: a pre-order walk from the
/// root appending each vertex when its bag is first entered (equivalently,
/// by outermost introduce node). This is the order the dynamic programs of
/// Section 6 process vertices in.
pub fn vertex_order_from_nice(nice: &NiceTreeDecomposition) -> Vec<Vertex> {
    let mut seen: BTreeSet<Vertex> = BTreeSet::new();
    let mut order = Vec::new();
    let mut stack = vec![nice.root()];
    while let Some(id) = stack.pop() {
        for &v in nice.bag(id) {
            if seen.insert(v) {
                order.push(v);
            }
        }
        match *nice.node(id) {
            NiceNode::Leaf => {}
            NiceNode::Introduce { child, .. } | NiceNode::Forget { child, .. } => {
                stack.push(child);
            }
            NiceNode::Join { left, right } => {
                stack.push(right);
                stack.push(left);
            }
        }
    }
    order
}

/// Fallback vertex order when no decomposition is supplied: run the min-fill
/// elimination heuristic, turn it into a tree decomposition and lay that out
/// with [`vertex_order_from_decomposition`]. Returns the order together with
/// the width of the heuristic decomposition.
pub fn min_fill_vertex_order(g: &Graph) -> (Vec<Vertex>, usize) {
    let elimination = treewidth::min_fill_order(g);
    let td = treewidth::decomposition_from_elimination_order(g, &elimination);
    (vertex_order_from_decomposition(&td), td.width())
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_graph::generators;

    #[test]
    fn layout_visits_every_bag_once() {
        let g = generators::path_graph(8);
        let (_, td) = treewidth::treewidth_upper_bound(&g);
        let layout = bag_layout(&td);
        assert_eq!(layout.len(), td.bag_count());
        let mut sorted = layout.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), td.bag_count());
    }

    #[test]
    fn vertex_orders_cover_all_vertices() {
        for g in [
            generators::path_graph(7),
            generators::cycle_graph(6),
            generators::grid_graph(3, 3),
        ] {
            let (_, td) = treewidth::treewidth_upper_bound(&g);
            let order = vertex_order_from_decomposition(&td);
            assert_eq!(order.len(), g.vertex_count());
            let nice = NiceTreeDecomposition::from_tree_decomposition(&td);
            let nice_order = vertex_order_from_nice(&nice);
            assert_eq!(nice_order.len(), g.vertex_count());
            let (fallback, width) = min_fill_vertex_order(&g);
            assert_eq!(fallback.len(), g.vertex_count());
            assert!(width >= 1);
        }
    }

    #[test]
    fn items_follow_the_bag_layout() {
        // On a path, edges must be ordered consistently with the path: the
        // first covering bags of consecutive edges appear in layout order,
        // so no edge far along the path may come before one near the start
        // on the same branch.
        let g = generators::path_graph(10);
        let (_, td) = treewidth::treewidth_upper_bound(&g);
        let items: Vec<BTreeSet<Vertex>> = g
            .edges()
            .iter()
            .map(|e| [e.u, e.v].into_iter().collect())
            .collect();
        let order = order_by_first_covering_bag(&td, &items);
        assert_eq!(order.len(), items.len());
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..items.len()).collect::<Vec<_>>());
    }

    #[test]
    fn uncovered_items_go_last() {
        let g = generators::path_graph(4);
        let (_, td) = treewidth::treewidth_upper_bound(&g);
        // An item spanning the whole path is covered by no bag.
        let items: Vec<BTreeSet<Vertex>> = vec![(0..4).collect(), [0, 1].into_iter().collect()];
        let order = order_by_first_covering_bag(&td, &items);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn empty_decomposition_yields_empty_layout() {
        let td = TreeDecomposition::new();
        assert!(bag_layout(&td).is_empty());
        assert!(vertex_order_from_decomposition(&td).is_empty());
        let items: Vec<BTreeSet<Vertex>> = vec![BTreeSet::new()];
        assert_eq!(order_by_first_covering_bag(&td, &items), vec![0]);
    }
}
