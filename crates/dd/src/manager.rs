//! The shared decision-diagram manager: a hash-consed node store with
//! complement edges and a persistent operation cache.
//!
//! Unlike the per-diagram [`treelineage_circuit::Obdd`] (kept as the
//! literal-to-the-paper construction and differential-testing oracle), a
//! [`Manager`] hosts *many* functions at once over a single variable order:
//! every operation returns a [`NodeId`] into the shared store, structurally
//! identical subgraphs are stored once, and the if-then-else cache survives
//! across calls, so repeated compilations of related functions reuse each
//! other's work. Negation is a complement-edge bit flip — O(1), no
//! allocation — and `f`/`¬f` share all their nodes.

use crate::node::{Node, NodeId};
use crate::stats::Stats;
use std::collections::{BTreeSet, HashMap};
use treelineage_circuit::{Circuit, Gate, VarId};
use treelineage_num::{BigUint, Rational};

/// Level value marking the terminal sentinel node.
const TERMINAL_LEVEL: u32 = u32::MAX;

/// Keys of the persistent operation cache: one variant per memoized
/// operation, always on canonicalized arguments.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum CacheKey {
    /// If-then-else on a normalized `(f, g, h)` triple (the universal binary
    /// connective: and/or/xor are all expressed through it).
    Ite(NodeId, NodeId, NodeId),
    /// Existential quantification of `f` by a cube of variables.
    Exists(NodeId, NodeId),
    /// Composition `f[var at level := g]`.
    Compose(NodeId, u32, NodeId),
}

/// A shared, hash-consed decision-diagram store over a fixed variable order.
///
/// All functions live in one arena; [`NodeId`]s are only meaningful relative
/// to the manager that created them. The operation cache is *persistent*: it
/// is keyed on canonical node ids (which never change), so it is never
/// invalidated and keeps accelerating later calls — see [`Manager::stats`]
/// for its hit counters and [`Manager::clear_op_cache`] to bound memory.
#[derive(Clone, Debug)]
pub struct Manager {
    order: Vec<VarId>,
    var_level: HashMap<VarId, u32>,
    nodes: Vec<Node>,
    unique: HashMap<(u32, NodeId, NodeId), u32>,
    cache: HashMap<CacheKey, NodeId>,
    cache_hits: u64,
    cache_misses: u64,
}

impl Manager {
    /// Creates a manager over the given variable order (duplicates are
    /// rejected). The store initially holds only the terminal.
    pub fn new(order: Vec<VarId>) -> Self {
        let var_level: HashMap<VarId, u32> = order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        assert_eq!(var_level.len(), order.len(), "duplicate variable in order");
        Manager {
            order,
            var_level,
            nodes: vec![Node {
                level: TERMINAL_LEVEL,
                lo: NodeId::TRUE,
                hi: NodeId::TRUE,
            }],
            unique: HashMap::new(),
            cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// The variable order shared by every function in the store.
    pub fn order(&self) -> &[VarId] {
        &self.order
    }

    /// Number of levels (variables in the order).
    pub fn level_count(&self) -> usize {
        self.order.len()
    }

    /// The level of a reference's top variable; terminals sit below every
    /// variable, at level `level_count()`.
    pub fn level_of(&self, r: NodeId) -> usize {
        let level = self.nodes[r.index() as usize].level;
        if level == TERMINAL_LEVEL {
            self.order.len()
        } else {
            level as usize
        }
    }

    /// The variable tested by a decision node (`None` for terminals).
    pub fn var_of(&self, r: NodeId) -> Option<VarId> {
        if r.is_terminal() {
            None
        } else {
            Some(self.order[self.level_of(r)])
        }
    }

    /// For a decision node, its `(variable, lo child, hi child)` Shannon
    /// decomposition with the complement edge resolved; `None` for terminals.
    pub fn decision_parts(&self, r: NodeId) -> Option<(VarId, NodeId, NodeId)> {
        if r.is_terminal() {
            return None;
        }
        let node = self.nodes[r.index() as usize];
        Some((
            self.order[node.level as usize],
            r.apply_parity(node.lo),
            r.apply_parity(node.hi),
        ))
    }

    /// Creates (or reuses) the decision node `(level, lo, hi)`, applying the
    /// reduction rules (equal children elided, structurally identical nodes
    /// shared) and the complement-edge canonicity invariant (the high child
    /// is never complemented; the complement is pushed to the result edge).
    pub fn make_node(&mut self, level: usize, lo: NodeId, hi: NodeId) -> NodeId {
        debug_assert!(level < self.order.len(), "level out of range");
        debug_assert!(self.level_of(lo) > level && self.level_of(hi) > level);
        if lo == hi {
            return lo;
        }
        if hi.is_complement() {
            return self.make_node(level, lo.not(), hi.not()).not();
        }
        let key = (level as u32, lo, hi);
        if let Some(&i) = self.unique.get(&key) {
            return NodeId::new(i, false);
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(Node {
            level: level as u32,
            lo,
            hi,
        });
        self.unique.insert(key, i);
        NodeId::new(i, false)
    }

    /// The terminal for a constant.
    pub fn terminal(&self, value: bool) -> NodeId {
        if value {
            NodeId::TRUE
        } else {
            NodeId::FALSE
        }
    }

    /// The node testing a single variable (positive or negated literal).
    /// Panics if the variable is not in the order.
    pub fn literal(&mut self, var: VarId, positive: bool) -> NodeId {
        let level = *self
            .var_level
            .get(&var)
            .unwrap_or_else(|| panic!("variable {var} not in the order"))
            as usize;
        let positive_node = self.make_node(level, NodeId::FALSE, NodeId::TRUE);
        if positive {
            positive_node
        } else {
            positive_node.not()
        }
    }

    /// The cofactors of `r` at `level` (both equal to `r` when `r` tests a
    /// deeper variable), with complement edges resolved.
    fn cofactors(&self, r: NodeId, level: usize) -> (NodeId, NodeId) {
        let node = self.nodes[r.index() as usize];
        if node.level as usize != level || node.level == TERMINAL_LEVEL {
            (r, r)
        } else {
            (r.apply_parity(node.lo), r.apply_parity(node.hi))
        }
    }

    fn cache_get(&mut self, key: &CacheKey) -> Option<NodeId> {
        match self.cache.get(key) {
            Some(&r) => {
                self.cache_hits += 1;
                Some(r)
            }
            None => {
                self.cache_misses += 1;
                None
            }
        }
    }

    /// If-then-else: the canonical node for `(f ∧ g) ∨ (¬f ∧ h)`. The
    /// universal connective of the engine — all binary operations reduce to
    /// it — memoized in the persistent cache under a normalized triple
    /// (standard-triple and complement canonicalization à la
    /// Brace–Rudell–Bryant, so equivalent calls share one cache entry).
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        let (mut f, mut g, mut h) = (f, g, h);
        // Terminal and absorption cases.
        if f == NodeId::TRUE {
            return g;
        }
        if f == NodeId::FALSE {
            return h;
        }
        if g == f {
            g = NodeId::TRUE;
        } else if g == f.not() {
            g = NodeId::FALSE;
        }
        if h == f {
            h = NodeId::FALSE;
        } else if h == f.not() {
            h = NodeId::TRUE;
        }
        if g == h {
            return g;
        }
        if g == NodeId::TRUE && h == NodeId::FALSE {
            return f;
        }
        if g == NodeId::FALSE && h == NodeId::TRUE {
            return f.not();
        }
        // Standard triples: pick a canonical argument order for the
        // commutative forms so equivalent calls hit the same cache slot.
        if g == NodeId::TRUE {
            // f ∨ h == h ∨ f
            if f.index() > h.index() {
                std::mem::swap(&mut f, &mut h);
            }
        } else if h == NodeId::FALSE {
            // f ∧ g == g ∧ f
            if f.index() > g.index() {
                std::mem::swap(&mut f, &mut g);
            }
        } else if h == NodeId::TRUE {
            // ite(f, g, 1) == ite(¬g, ¬f, 1)
            if f.index() > g.index() {
                let (nf, ng) = (f.not(), g.not());
                f = ng;
                g = nf;
            }
        } else if g == NodeId::FALSE {
            // ite(f, 0, h) == ite(¬h, 0, ¬f)
            if f.index() > h.index() {
                let (nf, nh) = (f.not(), h.not());
                f = nh;
                h = nf;
            }
        } else if h == g.not() {
            // xor: ite(f, g, ¬g) == ite(g, f, ¬f)
            if f.index() > g.index() {
                std::mem::swap(&mut f, &mut g);
                h = g.not();
            }
        }
        // Complement canonicalization: the first argument and the "then"
        // branch are kept uncomplemented.
        if f.is_complement() {
            f = f.not();
            std::mem::swap(&mut g, &mut h);
        }
        let negate = g.is_complement();
        if negate {
            g = g.not();
            h = h.not();
        }
        let key = CacheKey::Ite(f, g, h);
        if let Some(r) = self.cache_get(&key) {
            return if negate { r.not() } else { r };
        }
        let level = self.level_of(f).min(self.level_of(g)).min(self.level_of(h));
        let (f0, f1) = self.cofactors(f, level);
        let (g0, g1) = self.cofactors(g, level);
        let (h0, h1) = self.cofactors(h, level);
        let hi = self.ite(f1, g1, h1);
        let lo = self.ite(f0, g0, h0);
        let r = self.make_node(level, lo, hi);
        self.cache.insert(key, r);
        if negate {
            r.not()
        } else {
            r
        }
    }

    /// Conjunction.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.ite(a, b, NodeId::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.ite(a, NodeId::TRUE, b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.ite(a, b.not(), b)
    }

    /// Negation: a complement-edge flip, O(1) and canonical.
    #[allow(clippy::should_implement_trait)]
    pub fn not(&self, a: NodeId) -> NodeId {
        a.not()
    }

    /// N-ary conjunction by balanced pairwise reduction (keeps intermediate
    /// results small compared with a left fold).
    pub fn and_all(&mut self, operands: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.reduce_balanced(operands.into_iter().collect(), NodeId::TRUE, Self::and)
    }

    /// N-ary disjunction by balanced pairwise reduction.
    pub fn or_all(&mut self, operands: impl IntoIterator<Item = NodeId>) -> NodeId {
        self.reduce_balanced(operands.into_iter().collect(), NodeId::FALSE, Self::or)
    }

    fn reduce_balanced(
        &mut self,
        mut operands: Vec<NodeId>,
        unit: NodeId,
        op: fn(&mut Self, NodeId, NodeId) -> NodeId,
    ) -> NodeId {
        if operands.is_empty() {
            return unit;
        }
        while operands.len() > 1 {
            let mut next = Vec::with_capacity(operands.len().div_ceil(2));
            for pair in operands.chunks(2) {
                next.push(if pair.len() == 2 {
                    op(self, pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            operands = next;
        }
        operands[0]
    }

    /// The conjunction of the positive literals of `vars` (a *cube*), the
    /// canonical set representation used by the quantifiers.
    pub fn cube(&mut self, vars: &[VarId]) -> NodeId {
        let literals: Vec<NodeId> = vars.iter().map(|&v| self.literal(v, true)).collect();
        self.and_all(literals)
    }

    /// Existential quantification: `∃ vars . f`.
    pub fn exists(&mut self, f: NodeId, vars: &[VarId]) -> NodeId {
        let cube = self.cube(vars);
        self.exists_cube(f, cube)
    }

    /// Universal quantification: `∀ vars . f`, via `¬∃ vars . ¬f`.
    pub fn forall(&mut self, f: NodeId, vars: &[VarId]) -> NodeId {
        let cube = self.cube(vars);
        self.exists_cube(f.not(), cube).not()
    }

    fn exists_cube(&mut self, f: NodeId, cube: NodeId) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        // Skip quantified variables above f's top: they do not constrain f.
        let f_level = self.level_of(f);
        let mut cube = cube;
        while !cube.is_terminal() && self.level_of(cube) < f_level {
            let (_, hi) = self.cofactors(cube, self.level_of(cube));
            cube = hi;
        }
        if cube == NodeId::TRUE {
            return f;
        }
        debug_assert!(cube != NodeId::FALSE, "cubes are conjunctions of literals");
        let key = CacheKey::Exists(f, cube);
        if let Some(r) = self.cache_get(&key) {
            return r;
        }
        let cube_level = self.level_of(cube);
        let (f0, f1) = self.cofactors(f, f_level);
        let r = if f_level == cube_level {
            let (_, next) = self.cofactors(cube, cube_level);
            let lo = self.exists_cube(f0, next);
            let hi = self.exists_cube(f1, next);
            self.or(lo, hi)
        } else {
            let lo = self.exists_cube(f0, cube);
            let hi = self.exists_cube(f1, cube);
            self.make_node(f_level, lo, hi)
        };
        self.cache.insert(key, r);
        r
    }

    /// Composition `f[var := g]`: substitutes the function `g` for the
    /// variable `var` in `f`.
    pub fn compose(&mut self, f: NodeId, var: VarId, g: NodeId) -> NodeId {
        let level = *self
            .var_level
            .get(&var)
            .unwrap_or_else(|| panic!("variable {var} not in the order"));
        self.compose_rec(f, level, g)
    }

    /// Restriction (cofactoring): `f[var := value]`, i.e. composition with a
    /// constant.
    pub fn restrict(&mut self, f: NodeId, var: VarId, value: bool) -> NodeId {
        let constant = self.terminal(value);
        self.compose(f, var, constant)
    }

    /// Restriction by a partial assignment, applied variable by variable.
    pub fn restrict_all(&mut self, f: NodeId, assignment: &[(VarId, bool)]) -> NodeId {
        assignment
            .iter()
            .fold(f, |acc, &(var, value)| self.restrict(acc, var, value))
    }

    fn compose_rec(&mut self, f: NodeId, var_level: u32, g: NodeId) -> NodeId {
        let f_level = self.level_of(f);
        if f_level > var_level as usize {
            // var does not occur in f.
            return f;
        }
        let key = CacheKey::Compose(f, var_level, g);
        if let Some(r) = self.cache_get(&key) {
            return r;
        }
        let (f0, f1) = self.cofactors(f, f_level);
        let r = if f_level == var_level as usize {
            self.ite(g, f1, f0)
        } else {
            let lo = self.compose_rec(f0, var_level, g);
            let hi = self.compose_rec(f1, var_level, g);
            // Rebuild on f's top variable; ite handles the case where g
            // itself tests a variable above f_level.
            let top = self.make_node(f_level, NodeId::FALSE, NodeId::TRUE);
            self.ite(top, hi, lo)
        };
        self.cache.insert(key, r);
        r
    }

    /// Compiles a circuit bottom-up into the shared store; every variable of
    /// the circuit must be in the order. Repeated compilations of related
    /// circuits reuse the persistent cache.
    pub fn compile_circuit(&mut self, circuit: &Circuit) -> NodeId {
        let mut refs: Vec<NodeId> = Vec::with_capacity(circuit.size());
        for id in circuit.gate_ids() {
            let r = match circuit.gate(id) {
                Gate::Var(v) => self.literal(*v, true),
                Gate::Const(b) => self.terminal(*b),
                Gate::Not(i) => refs[i.0].not(),
                Gate::And(inputs) => {
                    let operands: Vec<NodeId> = inputs.iter().map(|i| refs[i.0]).collect();
                    self.and_all(operands)
                }
                Gate::Or(inputs) => {
                    let operands: Vec<NodeId> = inputs.iter().map(|i| refs[i.0]).collect();
                    self.or_all(operands)
                }
            };
            refs.push(r);
        }
        refs[circuit.output().0]
    }

    /// Evaluates `f` on the world where exactly the variables of `true_vars`
    /// hold.
    pub fn evaluate(&self, f: NodeId, true_vars: &BTreeSet<VarId>) -> bool {
        let mut current = f;
        loop {
            if current.is_terminal() {
                return current == NodeId::TRUE;
            }
            let node = self.nodes[current.index() as usize];
            let child = if true_vars.contains(&self.order[node.level as usize]) {
                node.hi
            } else {
                node.lo
            };
            current = current.apply_parity(child);
        }
    }

    /// Number of satisfying assignments of `f` over all variables of the
    /// order, memoized on shared nodes with a single cache for the query
    /// (complemented references are resolved as `2^k − count`, so `f` and
    /// `¬f` share the same cache entries).
    pub fn count_models(&self, f: NodeId) -> BigUint {
        let mut memo: HashMap<u32, BigUint> = HashMap::new();
        let below = self.count_rec(f, &mut memo);
        // Variables above the root's level are free.
        &below * &BigUint::pow2(self.level_of(f))
    }

    /// Satisfying assignments of the variables at levels `>= level_of(r)`.
    fn count_rec(&self, r: NodeId, memo: &mut HashMap<u32, BigUint>) -> BigUint {
        if r == NodeId::TRUE {
            return BigUint::one();
        }
        if r == NodeId::FALSE {
            return BigUint::zero();
        }
        let index = r.index();
        let positive = match memo.get(&index) {
            Some(c) => c.clone(),
            None => {
                let node = self.nodes[index as usize];
                let hi = self.count_rec(node.hi, memo);
                let lo = self.count_rec(node.lo, memo);
                // Children may skip levels; skipped variables are free.
                let level = node.level as usize;
                let hi_scaled = &hi * &BigUint::pow2(self.level_of(node.hi) - level - 1);
                let lo_scaled = &lo * &BigUint::pow2(self.level_of(node.lo) - level - 1);
                let c = &hi_scaled + &lo_scaled;
                memo.insert(index, c.clone());
                c
            }
        };
        if r.is_complement() {
            let total = BigUint::pow2(self.level_count() - self.level_of(r));
            &total - &positive
        } else {
            positive
        }
    }

    /// Probability that `f` holds when each variable `v` is independently
    /// true with probability `prob(v)` (weighted model counting), computed in
    /// one pass over the shared nodes with a single memo table per query;
    /// complemented references cost one subtraction (`1 − p`).
    pub fn probability(&self, f: NodeId, prob: &dyn Fn(VarId) -> Rational) -> Rational {
        let mut memo: HashMap<u32, Rational> = HashMap::new();
        self.prob_rec(f, prob, &mut memo)
    }

    fn prob_rec(
        &self,
        r: NodeId,
        prob: &dyn Fn(VarId) -> Rational,
        memo: &mut HashMap<u32, Rational>,
    ) -> Rational {
        if r == NodeId::TRUE {
            return Rational::one();
        }
        if r == NodeId::FALSE {
            return Rational::zero();
        }
        let index = r.index();
        let positive = match memo.get(&index) {
            Some(p) => p.clone(),
            None => {
                let node = self.nodes[index as usize];
                let p_var = prob(self.order[node.level as usize]);
                let p_hi = self.prob_rec(node.hi, prob, memo);
                let p_lo = self.prob_rec(node.lo, prob, memo);
                let p = &(&p_var * &p_hi) + &(&p_var.complement() * &p_lo);
                memo.insert(index, p.clone());
                p
            }
        };
        if r.is_complement() {
            positive.complement()
        } else {
            positive
        }
    }

    /// Number of *signed* references (distinct subfunctions) reachable from
    /// `f` per level. A node reached both plainly and through a complement
    /// edge counts twice, so this reproduces exactly the per-level node
    /// counts of the equivalent plain reduced OBDD — the quantity that
    /// Definition 6.4 of the paper measures — even though the shared store
    /// keeps only one copy.
    pub fn level_sizes(&self, f: NodeId) -> Vec<usize> {
        let mut sizes = vec![0usize; self.order.len()];
        let mut seen: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
        let mut stack = Vec::new();
        if !f.is_terminal() && seen.insert(f) {
            stack.push(f);
        }
        while let Some(r) = stack.pop() {
            let node = self.nodes[r.index() as usize];
            sizes[node.level as usize] += 1;
            for child in [r.apply_parity(node.lo), r.apply_parity(node.hi)] {
                if !child.is_terminal() && seen.insert(child) {
                    stack.push(child);
                }
            }
        }
        sizes
    }

    /// The width of `f`: the maximum number of distinct subfunctions at any
    /// level (the plain-OBDD width of Definition 6.4; 0 for constants).
    pub fn width(&self, f: NodeId) -> usize {
        self.level_sizes(f).into_iter().max().unwrap_or(0)
    }

    /// The size of the equivalent plain reduced OBDD (number of signed
    /// reachable references; terminals not counted). Compare with
    /// [`Manager::shared_size`], which counts each stored node once.
    pub fn size(&self, f: NodeId) -> usize {
        self.level_sizes(f).into_iter().sum()
    }

    /// Number of *stored* nodes reachable from `f` (each node counted once
    /// even if reached with both parities) — the true memory footprint under
    /// complement-edge sharing.
    pub fn shared_size(&self, f: NodeId) -> usize {
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut stack = Vec::new();
        if !f.is_terminal() && seen.insert(f.index()) {
            stack.push(f.index());
        }
        let mut count = 0usize;
        while let Some(i) = stack.pop() {
            count += 1;
            let node = self.nodes[i as usize];
            for child in [node.lo, node.hi] {
                if !child.is_terminal() && seen.insert(child.index()) {
                    stack.push(child.index());
                }
            }
        }
        count
    }

    /// Exports `f` as a d-DNNF circuit: every decision node `(v, lo, hi)`
    /// becomes the deterministic OR of the decomposable branches `v ∧ hi'`
    /// and `¬v ∧ lo'` (constant-false branches elided, constant-true
    /// children folded into the bare literal). Complement edges are resolved
    /// by memoizing per *signed* reference — `f` and `¬f` each export their
    /// own gates — so the circuit has at most two gate groups per stored
    /// node: linear in [`Manager::size`]. The result is structured by the
    /// right-linear vtree over the manager's order
    /// (`Vtree::right_linear(manager.order())`), which is the structure
    /// witness the d-SDNNF lineage backend hands out.
    pub fn export_dnnf(&self, f: NodeId) -> Circuit {
        let mut circuit = Circuit::new();
        let mut memo: HashMap<NodeId, treelineage_circuit::GateId> = HashMap::new();
        let output = self.export_gate(f, &mut circuit, &mut memo);
        circuit.set_output(output);
        circuit
    }

    fn export_gate(
        &self,
        r: NodeId,
        circuit: &mut Circuit,
        memo: &mut HashMap<NodeId, treelineage_circuit::GateId>,
    ) -> treelineage_circuit::GateId {
        if let Some(&g) = memo.get(&r) {
            return g;
        }
        let gate = if r == NodeId::TRUE {
            circuit.constant(true)
        } else if r == NodeId::FALSE {
            circuit.constant(false)
        } else {
            let (var, lo, hi) = self.decision_parts(r).expect("non-terminal");
            let v = circuit.var(var);
            let hi_branch = if hi == NodeId::FALSE {
                None
            } else if hi == NodeId::TRUE {
                Some(v)
            } else {
                let hi_gate = self.export_gate(hi, circuit, memo);
                Some(circuit.and(vec![v, hi_gate]))
            };
            let lo_branch = if lo == NodeId::FALSE {
                None
            } else {
                let not_v = circuit.not(v);
                if lo == NodeId::TRUE {
                    Some(not_v)
                } else {
                    let lo_gate = self.export_gate(lo, circuit, memo);
                    Some(circuit.and(vec![not_v, lo_gate]))
                }
            };
            match (hi_branch, lo_branch) {
                (Some(h), Some(l)) => circuit.or(vec![h, l]),
                (Some(h), None) => h,
                (None, Some(l)) => l,
                (None, None) => unreachable!("reduced node with two false children"),
            }
        };
        memo.insert(r, gate);
        gate
    }

    /// Engine statistics: store and cache sizes plus the persistent cache's
    /// hit counters.
    pub fn stats(&self) -> Stats {
        Stats {
            node_count: self.nodes.len() - 1,
            unique_table_len: self.unique.len(),
            op_cache_len: self.cache.len(),
            op_cache_hits: self.cache_hits,
            op_cache_misses: self.cache_misses,
        }
    }

    /// Drops the operation cache (node store and unique table are kept, so
    /// existing [`NodeId`]s stay valid). Hit counters are preserved.
    pub fn clear_op_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth_table(m: &Manager, f: NodeId, vars: &[VarId]) -> Vec<bool> {
        (0u64..(1 << vars.len()))
            .map(|mask| {
                let set: BTreeSet<VarId> = vars
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &v)| v)
                    .collect();
                m.evaluate(f, &set)
            })
            .collect()
    }

    #[test]
    fn constants_and_literals() {
        let mut m = Manager::new(vec![0, 1]);
        assert_eq!(m.terminal(true), NodeId::TRUE);
        assert_eq!(m.terminal(false), NodeId::FALSE);
        let x = m.literal(0, true);
        let nx = m.literal(0, false);
        assert_eq!(x.not(), nx);
        assert_eq!(m.shared_size(x), 1);
        assert!(m.evaluate(x, &[0].into_iter().collect()));
        assert!(!m.evaluate(x, &BTreeSet::new()));
        assert!(m.evaluate(nx, &BTreeSet::new()));
    }

    #[test]
    fn basic_connectives() {
        let mut m = Manager::new(vec![0, 1]);
        let x = m.literal(0, true);
        let y = m.literal(1, true);
        let both = m.and(x, y);
        assert_eq!(m.count_models(both).to_u64(), Some(1));
        let either = m.or(x, y);
        assert_eq!(m.count_models(either).to_u64(), Some(3));
        let neither = either.not();
        assert_eq!(m.count_models(neither).to_u64(), Some(1));
        let parity = m.xor(x, y);
        assert_eq!(m.count_models(parity).to_u64(), Some(2));
        // De Morgan through complement edges: ¬(x ∧ y) == ¬x ∨ ¬y.
        let lhs = both.not();
        let rhs = m.or(x.not(), y.not());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_cache_is_persistent_across_calls() {
        let mut m = Manager::new(vec![0, 1, 2]);
        let x = m.literal(0, true);
        let y = m.literal(1, true);
        let z = m.literal(2, true);
        let xy = m.and(x, y);
        let f1 = m.or(xy, z);
        let before = m.stats();
        // Recomputing the same function must be pure cache hits: no new
        // nodes, no new misses.
        let xy2 = m.and(x, y);
        let f2 = m.or(xy2, z);
        let after = m.stats();
        assert_eq!(f1, f2);
        assert_eq!(before.node_count, after.node_count);
        assert_eq!(before.op_cache_misses, after.op_cache_misses);
        assert!(after.op_cache_hits > before.op_cache_hits);
    }

    #[test]
    fn and_or_all_balanced() {
        let mut m = Manager::new((0..8).collect());
        let literals: Vec<NodeId> = (0..8).map(|v| m.literal(v, true)).collect();
        let conj = m.and_all(literals.clone());
        assert_eq!(m.count_models(conj).to_u64(), Some(1));
        let disj = m.or_all(literals);
        assert_eq!(m.count_models(disj).to_u64(), Some(255));
        assert_eq!(m.and_all(Vec::new()), NodeId::TRUE);
        assert_eq!(m.or_all(Vec::new()), NodeId::FALSE);
    }

    #[test]
    fn quantification() {
        let mut m = Manager::new(vec![0, 1, 2]);
        let x = m.literal(0, true);
        let y = m.literal(1, true);
        let z = m.literal(2, true);
        let xy = m.and(x, y);
        let f = m.or(xy, z); // (x ∧ y) ∨ z
        let ex = m.exists(f, &[1]); // x ∨ z
        let expected = m.or(x, z);
        assert_eq!(ex, expected);
        let all = m.forall(f, &[1]); // z
        assert_eq!(all, z);
        // Quantifying all variables collapses to a constant.
        let sat = m.exists(f, &[0, 1, 2]);
        assert_eq!(sat, NodeId::TRUE);
        let valid = m.forall(f, &[0, 1, 2]);
        assert_eq!(valid, NodeId::FALSE);
    }

    #[test]
    fn restrict_and_compose() {
        let mut m = Manager::new(vec![0, 1, 2]);
        let x = m.literal(0, true);
        let y = m.literal(1, true);
        let z = m.literal(2, true);
        let xy = m.and(x, y);
        let f = m.or(xy, z);
        let f_y1 = m.restrict(f, 1, true); // x ∨ z
        let expected = m.or(x, z);
        assert_eq!(f_y1, expected);
        let f_y0 = m.restrict(f, 1, false); // z
        assert_eq!(f_y0, z);
        // f[y := z] = (x ∧ z) ∨ z = z.
        let composed = m.compose(f, 1, z);
        assert_eq!(composed, z);
        // Shannon expansion: f == ite(y, f|y=1, f|y=0).
        let rebuilt = m.ite(y, f_y1, f_y0);
        assert_eq!(rebuilt, f);
        let restricted = m.restrict_all(f, &[(0, true), (2, false)]);
        assert_eq!(restricted, y);
    }

    #[test]
    fn widths_match_plain_obdd_semantics() {
        // Parity shares each level's node between the two polarities: one
        // stored node per level, but plain-OBDD width 2.
        let n = 6usize;
        let mut m = Manager::new((0..n).collect());
        let mut f = NodeId::FALSE;
        for v in 0..n {
            let x = m.literal(v, true);
            f = m.xor(f, x);
        }
        assert_eq!(m.width(f), 2);
        assert_eq!(m.size(f), 2 * n - 1);
        assert_eq!(m.shared_size(f), n);
        assert_eq!(m.count_models(f).to_u64(), Some(1 << (n - 1)));
        // Constants have width 0.
        assert_eq!(m.width(NodeId::TRUE), 0);
        assert_eq!(m.width(NodeId::FALSE), 0);
    }

    #[test]
    fn probability_on_shared_nodes() {
        let mut m = Manager::new(vec![0, 1]);
        let x = m.literal(0, true);
        let y = m.literal(1, true);
        let f = m.or(x, y);
        let prob = |v: VarId| Rational::from_ratio_u64(1, (v + 2) as u64);
        // P(x ∨ y) = 1 − (1 − 1/2)(1 − 1/3) = 2/3.
        assert_eq!(m.probability(f, &prob), Rational::from_ratio_u64(2, 3));
        // Complement shares the cache: P(¬f) = 1 − P(f).
        assert_eq!(
            m.probability(f.not(), &prob),
            Rational::from_ratio_u64(1, 3)
        );
    }

    #[test]
    fn evaluate_follows_complement_edges() {
        let mut m = Manager::new(vec![0, 1, 2]);
        let x = m.literal(0, true);
        let y = m.literal(1, true);
        let f0 = m.and(x, y);
        let f = f0.not();
        let vars = [0usize, 1, 2];
        for mask in 0u64..8 {
            let set: BTreeSet<VarId> = vars
                .iter()
                .filter(|&&v| mask >> v & 1 == 1)
                .copied()
                .collect();
            let expected = !(set.contains(&0) && set.contains(&1));
            assert_eq!(m.evaluate(f, &set), expected, "mask {mask}");
        }
        assert_eq!(truth_table(&m, f, &vars).len(), 8);
    }

    #[test]
    #[should_panic]
    fn unknown_variable_panics() {
        let mut m = Manager::new(vec![0, 1]);
        let _ = m.literal(5, true);
    }

    #[test]
    #[should_panic]
    fn duplicate_order_panics() {
        let _ = Manager::new(vec![0, 1, 0]);
    }
}
