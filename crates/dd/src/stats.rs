//! Engine statistics.

/// A snapshot of a [`crate::Manager`]'s store and cache counters, for the
/// experiment harness and for tuning.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Stats {
    /// Decision nodes allocated in the shared store (terminals excluded).
    pub node_count: usize,
    /// Entries in the unique (hash-consing) table; equals `node_count` since
    /// nodes are never garbage collected.
    pub unique_table_len: usize,
    /// Entries in the persistent operation cache.
    pub op_cache_len: usize,
    /// Operation-cache hits since the manager was created.
    pub op_cache_hits: u64,
    /// Operation-cache misses since the manager was created.
    pub op_cache_misses: u64,
}

impl Stats {
    /// Cache hit rate in percent (0 when no lookups happened yet).
    pub fn hit_rate_percent(&self) -> f64 {
        let total = self.op_cache_hits + self.op_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.op_cache_hits as f64 * 100.0 / total as f64
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes {} | unique {} | cache {} ({} hits / {} misses, {:.1}%)",
            self.node_count,
            self.unique_table_len,
            self.op_cache_len,
            self.op_cache_hits,
            self.op_cache_misses,
            self.hit_rate_percent()
        )
    }
}
