//! Node references with complement edges.
//!
//! A [`NodeId`] packs an index into the shared node store together with a
//! *complement bit* in its lowest bit. The node at index 0 is the unique
//! terminal (the constant **true**); the constant **false** is its
//! complement. Negation is therefore a single bit flip — O(1) and allocation
//! free — and a function and its negation share all of their decision nodes,
//! which is the classic complement-edge representation of Brace–Rudell–Bryant
//! style BDD packages.
//!
//! Canonicity is preserved by the manager's node constructor, which never
//! stores a node whose *high* child is complemented (see
//! [`crate::Manager::make_node`]); under that invariant two [`NodeId`]s are
//! equal if and only if they denote the same Boolean function within one
//! manager.

/// A reference to a decision-diagram node, with a complement edge in the low
/// bit.
///
/// `NodeId`s are only meaningful relative to the [`crate::Manager`] that
/// created them; comparing ids across managers is meaningless (but safe).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant **true** (the terminal node, uncomplemented).
    pub const TRUE: NodeId = NodeId(0);
    /// The constant **false** (the terminal node, complemented).
    pub const FALSE: NodeId = NodeId(1);

    /// Builds a reference from a store index and a complement flag.
    pub(crate) fn new(index: u32, complement: bool) -> NodeId {
        NodeId(index << 1 | complement as u32)
    }

    /// The index of the referenced node in the manager's store.
    pub(crate) fn index(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the reference carries a complement edge.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constants.
    pub fn is_terminal(self) -> bool {
        self.index() == 0
    }

    /// The negation of the referenced function: a single bit flip, O(1).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> NodeId {
        NodeId(self.0 ^ 1)
    }

    /// Applies this reference's complement bit to a child reference (used
    /// when traversing through a complemented edge).
    pub(crate) fn apply_parity(self, child: NodeId) -> NodeId {
        NodeId(child.0 ^ (self.0 & 1))
    }
}

impl std::ops::Not for NodeId {
    type Output = NodeId;
    fn not(self) -> NodeId {
        NodeId::not(self)
    }
}

/// An internal decision node in the shared store: the level of its variable
/// in the manager's order and its two children. The high child is never
/// complemented (the canonicity invariant).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Node {
    /// Position of the tested variable in the order (`u32::MAX` marks the
    /// terminal sentinel at index 0).
    pub level: u32,
    /// Child followed when the variable is false.
    pub lo: NodeId,
    /// Child followed when the variable is true (always uncomplemented).
    pub hi: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_is_an_involution() {
        assert_eq!(NodeId::TRUE.not(), NodeId::FALSE);
        assert_eq!(NodeId::FALSE.not(), NodeId::TRUE);
        let n = NodeId::new(7, false);
        assert_eq!(n.not().not(), n);
        assert!(!n.is_complement());
        assert!(n.not().is_complement());
        assert_eq!(n.not().index(), 7);
        assert_eq!(n.index(), 7);
    }

    #[test]
    fn parity_propagation() {
        let plain = NodeId::new(3, false);
        let comp = plain.not();
        let child = NodeId::new(5, false);
        assert_eq!(plain.apply_parity(child), child);
        assert_eq!(comp.apply_parity(child), child.not());
        assert_eq!(comp.apply_parity(child.not()), child);
    }
}
