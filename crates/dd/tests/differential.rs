//! Differential suite: the shared `treelineage-dd` engine against the legacy
//! per-diagram `circuit::obdd` construction and brute-force probability on
//! random small circuits.
//!
//! The legacy OBDD is the literal-to-the-paper object (reduced, canonical
//! per order), so on every random circuit the two engines must agree on the
//! represented function, the model count, the weighted model count, and —
//! thanks to the complement-edge width equivalence (signed reachable
//! references per level = plain reduced OBDD nodes per level) — on the exact
//! per-level width profile under the same order.

use proptest::prelude::*;
use std::collections::BTreeSet;
use treelineage_circuit::{probability_bruteforce, Circuit, Obdd, VarId};
use treelineage_dd::{Manager, NodeId};
use treelineage_num::Rational;

const VARS: usize = 5;

/// Random circuits over a bounded variable set, composed bottom-up (the same
/// shape as `treelineage-circuit`'s internal property tests).
fn arbitrary_circuit(max_vars: usize, gates: usize) -> impl Strategy<Value = Circuit> {
    let ops = proptest::collection::vec((0u8..4, any::<u64>(), any::<u64>()), 1..gates);
    ops.prop_map(move |ops| {
        let mut c = Circuit::new();
        let mut ids = Vec::new();
        for v in 0..max_vars {
            ids.push(c.var(v));
        }
        for (op, a, b) in ops {
            let x = ids[(a % ids.len() as u64) as usize];
            let y = ids[(b % ids.len() as u64) as usize];
            let g = match op {
                0 => c.and(vec![x, y]),
                1 => c.or(vec![x, y]),
                2 => c.not(x),
                _ => c.or(vec![x]),
            };
            ids.push(g);
        }
        c.set_output(*ids.last().unwrap());
        c
    })
}

fn world(mask: u64, vars: &[VarId]) -> BTreeSet<VarId> {
    vars.iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, &v)| v)
        .collect()
}

fn compile_both(c: &Circuit) -> (Obdd, Manager, NodeId) {
    let vars: Vec<VarId> = (0..VARS).collect();
    let obdd = Obdd::from_circuit(c, vars.clone());
    let mut manager = Manager::new(vars);
    let root = manager.compile_circuit(c);
    (obdd, manager, root)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree_on_function_and_counts(c in arbitrary_circuit(VARS, 14)) {
        let vars: Vec<VarId> = (0..VARS).collect();
        let (obdd, manager, root) = compile_both(&c);
        for mask in 0u64..(1 << VARS) {
            let w = world(mask, &vars);
            let expected = c.evaluate_set(&w);
            prop_assert_eq!(obdd.evaluate_set(&w), expected, "legacy, mask {}", mask);
            prop_assert_eq!(manager.evaluate(root, &w), expected, "dd, mask {}", mask);
        }
        // Model counts: engine == legacy == brute force.
        prop_assert_eq!(
            manager.count_models(root).to_u64(),
            Some(c.count_models_bruteforce(&vars))
        );
        prop_assert_eq!(
            manager.count_models(root).to_u64(),
            obdd.count_models().to_u64()
        );
    }

    #[test]
    fn weighted_model_count_matches_bruteforce(c in arbitrary_circuit(VARS, 12)) {
        let (obdd, manager, root) = compile_both(&c);
        let prob = |v: VarId| Rational::from_ratio_u64(1, v as u64 + 2);
        let brute = probability_bruteforce(&c, &prob);
        prop_assert_eq!(manager.probability(root, &prob), brute.clone());
        prop_assert_eq!(obdd.probability(&prob), brute.clone());
        // Complement edge: P(¬f) = 1 − P(f) with the same shared nodes.
        prop_assert_eq!(manager.probability(root.not(), &prob), brute.complement());
    }

    #[test]
    fn widths_match_legacy_per_level(c in arbitrary_circuit(VARS, 14)) {
        let (obdd, manager, root) = compile_both(&c);
        // Signed reachability reproduces the plain reduced OBDD exactly.
        prop_assert_eq!(manager.level_sizes(root), obdd.level_sizes());
        prop_assert_eq!(manager.width(root), obdd.width());
        prop_assert_eq!(manager.size(root), obdd.size());
        // Complement-edge sharing never stores more nodes than the plain
        // diagram has.
        prop_assert!(manager.shared_size(root) <= manager.size(root).max(1));
    }

    #[test]
    fn negation_is_canonical_and_matches_legacy(c in arbitrary_circuit(VARS, 12)) {
        let vars: Vec<VarId> = (0..VARS).collect();
        let (mut obdd, manager, root) = compile_both(&c);
        let neg = root.not();
        prop_assert_eq!(neg.not(), root);
        let legacy_root = obdd.root();
        let legacy_neg = obdd.not(legacy_root);
        for mask in 0u64..(1 << VARS) {
            let w = world(mask, &vars);
            obdd.set_root(legacy_neg);
            prop_assert_eq!(manager.evaluate(neg, &w), obdd.evaluate_set(&w));
        }
        // ¬f shares every stored node with f.
        prop_assert_eq!(manager.shared_size(neg), manager.shared_size(root));
    }

    #[test]
    fn restrict_compose_exists_semantics(c in arbitrary_circuit(VARS, 10), var in 0usize..VARS) {
        let vars: Vec<VarId> = (0..VARS).collect();
        let (_, mut manager, root) = compile_both(&c);
        let f1 = manager.restrict(root, var, true);
        let f0 = manager.restrict(root, var, false);
        // Shannon: f == ite(x, f|x=1, f|x=0); quantifiers from cofactors.
        let x = manager.literal(var, true);
        let rebuilt = manager.ite(x, f1, f0);
        prop_assert_eq!(rebuilt, root);
        let ex = manager.exists(root, &[var]);
        let expected_ex = manager.or(f0, f1);
        prop_assert_eq!(ex, expected_ex);
        let all = manager.forall(root, &[var]);
        let expected_all = manager.and(f0, f1);
        prop_assert_eq!(all, expected_all);
        // compose with a constant is restriction.
        let composed = manager.compose(root, var, NodeId::TRUE);
        prop_assert_eq!(composed, f1);
        // compose with another variable: check by truth table.
        let other = (var + 1) % VARS;
        let g = manager.literal(other, true);
        let composed = manager.compose(root, var, g);
        for mask in 0u64..(1 << VARS) {
            let mut w = world(mask, &vars);
            let substituted = w.contains(&other);
            if substituted { w.insert(var); } else { w.remove(&var); }
            let expected = manager.evaluate(root, &w);
            prop_assert_eq!(manager.evaluate(composed, &world(mask, &vars)), expected);
        }
    }

    #[test]
    fn export_dnnf_is_a_certified_structured_ddnnf(c in arbitrary_circuit(VARS, 12)) {
        let vars: Vec<VarId> = (0..VARS).collect();
        let (_, manager, root) = compile_both(&c);
        // The export passes full d-DNNF verification (incl. the exhaustive
        // determinism check) and is structured by the right-linear vtree
        // over the manager's order.
        let exported = treelineage_circuit::Dnnf::verify(manager.export_dnnf(root)).unwrap();
        let vtree = treelineage_circuit::Vtree::right_linear(manager.order());
        prop_assert!(vtree.respects(exported.circuit()).is_ok());
        for mask in 0u64..(1 << VARS) {
            let w = world(mask, &vars);
            prop_assert_eq!(exported.circuit().evaluate_set(&w), c.evaluate_set(&w));
        }
        // Smoothing the export gives the same model count as the engine,
        // through the single integer pass.
        let smooth = exported.smooth(&vars);
        prop_assert!(smooth.is_smooth());
        prop_assert_eq!(
            smooth.count_models_smooth().to_u64(),
            manager.count_models(root).to_u64()
        );
        // Complement edges export correctly: ¬f's circuit computes ¬f.
        let negated = manager.export_dnnf(root.not());
        for mask in 0u64..(1 << VARS) {
            let w = world(mask, &vars);
            prop_assert_eq!(negated.evaluate_set(&w), !c.evaluate_set(&w));
        }
    }

    #[test]
    fn persistent_cache_makes_recompilation_free(c in arbitrary_circuit(VARS, 12)) {
        let (_, mut manager, root) = compile_both(&c);
        let before = manager.stats();
        let root2 = manager.compile_circuit(&c);
        let after = manager.stats();
        prop_assert_eq!(root, root2, "hash consing is canonical");
        prop_assert_eq!(before.node_count, after.node_count, "no new nodes");
        prop_assert_eq!(before.op_cache_misses, after.op_cache_misses, "all hits");
    }
}

/// The engine agrees with the exponential level-by-level construction of
/// Lemma 6.6 (via the legacy crate) on the canonical shape, not just the
/// function: one fixed non-random cross-check.
#[test]
fn canonical_shape_matches_lemma_6_6_construction() {
    let vars: Vec<VarId> = (0..6).collect();
    let circuit = treelineage_circuit::threshold2_circuit(&vars);
    let lemma = Obdd::from_circuit_level_by_level(&circuit, vars.clone());
    let mut manager = Manager::new(vars);
    let root = manager.compile_circuit(&circuit);
    assert_eq!(manager.level_sizes(root), lemma.level_sizes());
    assert_eq!(manager.size(root), lemma.size());
    assert_eq!(
        manager.count_models(root).to_u64(),
        lemma.count_models().to_u64()
    );
}
