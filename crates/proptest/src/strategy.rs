//! Strategies: composable generators of random test inputs.

use std::marker::PhantomData;
use std::ops::Range;

/// Configuration for a `proptest!` block. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A small deterministic RNG (splitmix64), seeded from the test name so
/// every property test is reproducible run to run.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Creates an RNG seeded from a test name (FNV-1a hash). When the
    /// `PROPTEST_SEED` environment variable is set to an integer, it is
    /// mixed into the seed, so a CI workflow can pin (or vary) the generated
    /// cases for a whole run while staying reproducible; unset, the seed
    /// depends on the test name alone.
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Some(seed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            hash = hash.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
        }
        TestRng::new(hash)
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next uniform 128-bit value.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Next uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "generate anything" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_uint {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        })*
    };
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128() as i128
    }
}

/// Numeric types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws a value uniformly from `[start, end)`; panics on empty ranges.
    fn sample_range(range: &Range<Self>, rng: &mut TestRng) -> Self;
}

macro_rules! sample_uniform_int {
    ($($ty:ty),*) => {
        $(impl SampleUniform for $ty {
            fn sample_range(range: &Range<Self>, rng: &mut TestRng) -> Self {
                assert!(range.start < range.end, "empty range");
                let width = (range.end as i128).wrapping_sub(range.start as i128) as u128;
                let offset = rng.next_u128() % width;
                (range.start as i128 + offset as i128) as $ty
            }
        })*
    };
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_range(range: &Range<Self>, rng: &mut TestRng) -> Self {
        assert!(range.start < range.end, "empty range");
        let width = range.end - range.start;
        range.start + rng.next_u128() % width
    }
}

impl SampleUniform for f64 {
    fn sample_range(range: &Range<Self>, rng: &mut TestRng) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_range(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
