//! Strategies for collections.

use std::ops::Range;

use crate::strategy::{SampleUniform, Strategy, TestRng};

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = usize::sample_range(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating vectors whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}
