//! Encodings of graphs and standard instance families as relational
//! instances.
//!
//! The paper's dichotomies quantify over instance *families*; its proofs and
//! counterexamples use a handful of concrete families which we expose here:
//!
//! * graphs encoded on arity-2 signatures (one fact per edge, or the paper's
//!   symmetric encoding with both directions),
//! * **line instances** (Definition 8.4), the probes of the intricacy test,
//! * **S-grids** (the easy family for the non-intricate query
//!   `R(x) ∧ S(x,y) ∧ T(y)`, Section 8.2),
//! * **complete bipartite directed instances** (the easy family for
//!   homomorphism-closed queries, Proposition 8.9),
//! * chain / tree / partial-k-tree shaped instances over arbitrary binary
//!   signatures (the bounded-treewidth workloads of Table 2).

use crate::instance::{Element, Instance};
use crate::signature::{RelationId, Signature};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use treelineage_graph::{generators, Graph};

/// Encodes a graph as an instance over `signature` using `relation` (binary),
/// with one fact per edge, oriented from the smaller to the larger vertex id.
pub fn graph_instance(graph: &Graph, signature: &Signature, relation: RelationId) -> Instance {
    assert_eq!(signature.arity(relation), 2);
    let mut inst = Instance::new(signature.clone());
    for e in graph.edges() {
        inst.add_fact(relation, vec![Element(e.u as u64), Element(e.v as u64)]);
    }
    inst
}

/// Encodes a graph with the paper's symmetric convention: both `E(u, v)` and
/// `E(v, u)` are present for every edge.
pub fn symmetric_graph_instance(
    graph: &Graph,
    signature: &Signature,
    relation: RelationId,
) -> Instance {
    assert_eq!(signature.arity(relation), 2);
    let mut inst = Instance::new(signature.clone());
    for e in graph.edges() {
        inst.add_fact(relation, vec![Element(e.u as u64), Element(e.v as u64)]);
        inst.add_fact(relation, vec![Element(e.v as u64), Element(e.u as u64)]);
    }
    inst
}

/// One step of a line instance (Definition 8.4): which binary relation labels
/// the edge between consecutive elements, and in which direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineStep {
    /// The binary relation of the step's fact.
    pub relation: RelationId,
    /// `true` for `R(a_i, a_{i+1})`, `false` for `R(a_{i+1}, a_i)`.
    pub forward: bool,
}

/// Builds the line instance with elements `a_1, ..., a_{n+1}` (`n` = number of
/// steps) and one binary fact per step as described by `steps`
/// (Definition 8.4).
pub fn line_instance(signature: &Signature, steps: &[LineStep]) -> Instance {
    let mut inst = Instance::new(signature.clone());
    for (i, step) in steps.iter().enumerate() {
        assert_eq!(
            signature.arity(step.relation),
            2,
            "line steps must be binary"
        );
        let a = Element(i as u64 + 1);
        let b = Element(i as u64 + 2);
        let args = if step.forward { vec![a, b] } else { vec![b, a] };
        inst.add_fact(step.relation, args);
    }
    inst
}

/// Enumerates every line instance with exactly `length` facts over the binary
/// relations of the signature (each step chooses a relation and a direction).
/// There are `(2 · #binary relations)^length` of them; Lemma 8.6 decides
/// intricacy by enumerating these.
pub fn all_line_instances(signature: &Signature, length: usize) -> Vec<Instance> {
    let binary = signature.binary_relations();
    assert!(
        !binary.is_empty(),
        "arity-2 signatures have a binary relation"
    );
    let choices: Vec<LineStep> = binary
        .iter()
        .flat_map(|&r| {
            [
                LineStep {
                    relation: r,
                    forward: true,
                },
                LineStep {
                    relation: r,
                    forward: false,
                },
            ]
        })
        .collect();
    let mut result = Vec::new();
    let mut current: Vec<LineStep> = Vec::with_capacity(length);
    enumerate_lines(signature, &choices, length, &mut current, &mut result);
    result
}

fn enumerate_lines(
    signature: &Signature,
    choices: &[LineStep],
    length: usize,
    current: &mut Vec<LineStep>,
    result: &mut Vec<Instance>,
) {
    if current.len() == length {
        result.push(line_instance(signature, current));
        return;
    }
    for &c in choices {
        current.push(c);
        enumerate_lines(signature, choices, length, current, result);
        current.pop();
    }
}

/// The `rows x cols` grid over a single binary relation `relation`
/// ("S-grids" in Section 8.2): facts `S(a_{i,j}, a_{i,j+1})` and
/// `S(a_{i,j}, a_{i+1,j})`. An unbounded-treewidth, treewidth-constructible
/// family on which the non-intricate query `R(x) ∧ S(x,y) ∧ T(y)` has trivial
/// OBDDs.
pub fn grid_instance(
    signature: &Signature,
    relation: RelationId,
    rows: usize,
    cols: usize,
) -> Instance {
    assert_eq!(signature.arity(relation), 2);
    let mut inst = Instance::new(signature.clone());
    let idx = |r: usize, c: usize| Element((r * cols + c) as u64);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                inst.add_fact(relation, vec![idx(r, c), idx(r, c + 1)]);
            }
            if r + 1 < rows {
                inst.add_fact(relation, vec![idx(r, c), idx(r + 1, c)]);
            }
        }
    }
    inst
}

/// The complete bipartite directed instance on `n + n` elements over
/// `relation`: all facts `R(a_i, b_j)`. The easy unbounded-treewidth family
/// for homomorphism-closed queries (Proposition 8.9): every minimal match
/// uses a single fact.
pub fn complete_bipartite_instance(
    signature: &Signature,
    relation: RelationId,
    n: usize,
) -> Instance {
    assert_eq!(signature.arity(relation), 2);
    let mut inst = Instance::new(signature.clone());
    for i in 0..n {
        for j in 0..n {
            inst.add_fact(relation, vec![Element(i as u64), Element((n + j) as u64)]);
        }
    }
    inst
}

/// A chain instance: `R_i(a_i, a_{i+1})` cycling through the given binary
/// relations along a path of `length` facts. Treewidth 1, pathwidth 1.
pub fn chain_instance(signature: &Signature, relations: &[RelationId], length: usize) -> Instance {
    assert!(!relations.is_empty());
    let mut inst = Instance::new(signature.clone());
    for i in 0..length {
        let rel = relations[i % relations.len()];
        assert_eq!(signature.arity(rel), 2);
        inst.add_fact(rel, vec![Element(i as u64), Element(i as u64 + 1)]);
    }
    inst
}

/// The treewidth-0 family of Propositions 7.1 / 7.2: `n` facts of a unary
/// relation over distinct elements.
pub fn unary_family_instance(signature: &Signature, relation: RelationId, n: usize) -> Instance {
    assert_eq!(signature.arity(relation), 1);
    let mut inst = Instance::new(signature.clone());
    for i in 0..n {
        inst.add_fact(relation, vec![Element(i as u64)]);
    }
    inst
}

/// The treewidth-1 family of Proposition 7.3: elements `a_1, ..., a_n` with
/// unary facts `L(a_i)` and binary facts `E(a_i, a_{i+1})`.
pub fn labelled_path_instance(
    signature: &Signature,
    label: RelationId,
    edge: RelationId,
    n: usize,
) -> Instance {
    assert_eq!(signature.arity(label), 1);
    assert_eq!(signature.arity(edge), 2);
    let mut inst = Instance::new(signature.clone());
    for i in 0..n {
        inst.add_fact(label, vec![Element(i as u64)]);
        if i + 1 < n {
            inst.add_fact(edge, vec![Element(i as u64), Element(i as u64 + 1)]);
        }
    }
    inst
}

/// A random instance of bounded treewidth: the edges of a random partial
/// k-tree, labelled with uniformly random binary relations of the signature,
/// plus (optionally) unary facts on each element for every unary relation
/// with probability 1/2.
pub fn random_treelike_instance(signature: &Signature, n: usize, k: usize, seed: u64) -> Instance {
    let graph = generators::random_partial_k_tree(n, k, 0.8, seed);
    let binary = signature.binary_relations();
    let unary = signature.unary_relations();
    assert!(!binary.is_empty());
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545F4914F6CDD1D));
    let mut inst = Instance::new(signature.clone());
    for e in graph.edges() {
        let rel = binary[rng.gen_range(0..binary.len())];
        let (a, b) = if rng.gen_bool(0.5) {
            (e.u, e.v)
        } else {
            (e.v, e.u)
        };
        inst.add_fact(rel, vec![Element(a as u64), Element(b as u64)]);
    }
    for v in graph.vertices() {
        for &u in &unary {
            if rng.gen_bool(0.5) {
                inst.add_fact(u, vec![Element(v as u64)]);
            }
        }
    }
    inst
}

/// A random instance over an arbitrary (non-treelike) Erdős–Rényi graph,
/// used for the "any instance" rows of Table 2.
pub fn random_dense_instance(signature: &Signature, n: usize, p: f64, seed: u64) -> Instance {
    let graph = generators::random_graph(n, p, seed);
    let binary = signature.binary_relations();
    assert!(!binary.is_empty());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEADBEEF);
    let mut inst = Instance::new(signature.clone());
    for e in graph.edges() {
        let rel = binary[rng.gen_range(0..binary.len())];
        inst.add_fact(rel, vec![Element(e.u as u64), Element(e.v as u64)]);
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_binary_signature() -> Signature {
        Signature::builder()
            .relation("R", 2)
            .relation("S", 2)
            .build()
    }

    #[test]
    fn graph_instance_fact_count() {
        let g = generators::cycle_graph(5);
        let sig = Signature::graph();
        let e = sig.relation_by_name("E").unwrap();
        let inst = graph_instance(&g, &sig, e);
        assert_eq!(inst.fact_count(), 5);
        let sym = symmetric_graph_instance(&g, &sig, e);
        assert_eq!(sym.fact_count(), 10);
    }

    #[test]
    fn graph_instance_gaifman_graph_matches_original() {
        let g = generators::grid_graph(3, 3);
        let sig = Signature::graph();
        let e = sig.relation_by_name("E").unwrap();
        let inst = graph_instance(&g, &sig, e);
        let (gaifman, _) = inst.gaifman_graph();
        assert_eq!(gaifman.edge_count(), g.edge_count());
        assert_eq!(gaifman.vertex_count(), g.vertex_count());
    }

    #[test]
    fn line_instance_structure() {
        let sig = two_binary_signature();
        let r = sig.relation_by_name("R").unwrap();
        let s = sig.relation_by_name("S").unwrap();
        let steps = [
            LineStep {
                relation: r,
                forward: true,
            },
            LineStep {
                relation: s,
                forward: false,
            },
            LineStep {
                relation: r,
                forward: true,
            },
        ];
        let inst = line_instance(&sig, &steps);
        assert_eq!(inst.fact_count(), 3);
        assert_eq!(inst.domain_size(), 4);
        assert!(inst.contains(r, &[Element(1), Element(2)]));
        assert!(inst.contains(s, &[Element(3), Element(2)]));
        let (g, _) = inst.gaifman_graph();
        assert!(g.is_tree());
    }

    #[test]
    fn all_line_instances_count() {
        let sig = two_binary_signature();
        // 2 relations x 2 directions = 4 choices per step.
        assert_eq!(all_line_instances(&sig, 1).len(), 4);
        assert_eq!(all_line_instances(&sig, 2).len(), 16);
        let sig1 = Signature::graph();
        assert_eq!(all_line_instances(&sig1, 3).len(), 8);
    }

    #[test]
    fn grid_instance_has_unbounded_treewidth_shape() {
        let sig = Signature::builder().relation("S", 2).build();
        let s = sig.relation_by_name("S").unwrap();
        let inst = grid_instance(&sig, s, 4, 4);
        assert_eq!(inst.fact_count(), 2 * 4 * 3);
        let (g, _) = inst.gaifman_graph();
        // The 4x4 grid has treewidth 4.
        assert_eq!(treelineage_graph::treewidth::treewidth_exact(&g), 4);
    }

    #[test]
    fn complete_bipartite_instance_facts() {
        let sig = Signature::builder().relation("R", 2).build();
        let r = sig.relation_by_name("R").unwrap();
        let inst = complete_bipartite_instance(&sig, r, 3);
        assert_eq!(inst.fact_count(), 9);
        assert_eq!(inst.domain_size(), 6);
    }

    #[test]
    fn chain_and_unary_families() {
        let sig = two_binary_signature();
        let rels: Vec<RelationId> = sig.binary_relations();
        let chain = chain_instance(&sig, &rels, 6);
        assert_eq!(chain.fact_count(), 6);
        let (w, _, _) = chain.treewidth_upper_bound();
        assert_eq!(w, 1);

        let usig = Signature::builder().relation("R", 1).build();
        let u = usig.relation_by_name("R").unwrap();
        let unary = unary_family_instance(&usig, u, 5);
        assert_eq!(unary.fact_count(), 5);
        let (g, _) = unary.gaifman_graph();
        assert_eq!(g.edge_count(), 0); // treewidth 0
    }

    #[test]
    fn labelled_path_instance_structure() {
        let sig = Signature::builder()
            .relation("L", 1)
            .relation("E", 2)
            .build();
        let l = sig.relation_by_name("L").unwrap();
        let e = sig.relation_by_name("E").unwrap();
        let inst = labelled_path_instance(&sig, l, e, 5);
        assert_eq!(inst.fact_count(), 5 + 4);
        let (w, _, _) = inst.treewidth_upper_bound();
        assert_eq!(w, 1);
    }

    #[test]
    fn random_treelike_instance_has_bounded_treewidth() {
        let sig = Signature::builder()
            .relation("R", 2)
            .relation("S", 2)
            .relation("L", 1)
            .build();
        for seed in 0..3 {
            let inst = random_treelike_instance(&sig, 20, 2, seed);
            let (g, _) = inst.gaifman_graph();
            let (w, td) = treelineage_graph::treewidth::treewidth_upper_bound(&g);
            assert!(td.validate(&g).is_ok());
            assert!(w <= 3, "width {w} too large for a partial 2-tree");
        }
    }

    #[test]
    fn random_dense_instance_is_deterministic() {
        let sig = two_binary_signature();
        let a = random_dense_instance(&sig, 10, 0.5, 3);
        let b = random_dense_instance(&sig, 10, 0.5, 3);
        assert_eq!(a.fact_count(), b.fact_count());
    }
}
