//! Reusable property-testing strategies for random treelike instances.
//!
//! Every differential suite in the workspace wants the same inputs: random
//! bounded-treewidth instances, small enough for brute-force oracles, with a
//! *known* tree decomposition to drive the pipelines under test. This module
//! centralizes those generators (on top of
//! [`encodings::random_treelike_instance`]) so `tests/` and sibling crates
//! stop rolling their own seed plumbing. Generation is deterministic through
//! the in-tree `proptest` shim.

use crate::encodings;
use crate::instance::Instance;
use crate::signature::Signature;
use proptest::prelude::*;
use treelineage_graph::TreeDecomposition;

/// A strategy generating random treelike instances over `signature`: the
/// edges of a random partial `width`-tree on up to `max_elements` elements,
/// labelled with random binary relations, plus random unary facts (see
/// [`encodings::random_treelike_instance`]). The signature must have at
/// least one binary relation. Instances may be empty; pair with
/// `prop_assume!` to bound fact counts for brute-force oracles.
pub fn treelike_instance(
    signature: Signature,
    max_elements: usize,
    width: usize,
) -> impl Strategy<Value = Instance> {
    assert!(max_elements > width, "need more elements than the width");
    (any::<u64>(), width + 1..max_elements + 1)
        .prop_map(move |(seed, n)| encodings::random_treelike_instance(&signature, n, width, seed))
}

/// [`treelike_instance`] together with a validated tree decomposition of
/// the instance's Gaifman graph (the heuristic upper bound, whose width is
/// bounded by the partial-`width`-tree construction): the "known
/// decomposition" that decomposition-driven pipelines are tested with.
pub fn treelike_instance_with_decomposition(
    signature: Signature,
    max_elements: usize,
    width: usize,
) -> impl Strategy<Value = (Instance, TreeDecomposition)> {
    treelike_instance(signature, max_elements, width).prop_map(|inst| {
        let (graph, _) = inst.gaifman_graph();
        let (_, td) = treelineage_graph::treewidth::treewidth_upper_bound(&graph);
        debug_assert!(td.validate(&graph).is_ok());
        (inst, td)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::strategy::TestRng;

    fn sig() -> Signature {
        Signature::builder()
            .relation("R", 2)
            .relation("S", 2)
            .relation("L", 1)
            .build()
    }

    #[test]
    fn generated_instances_are_treelike_and_varied() {
        let strategy = treelike_instance(sig(), 8, 2);
        let mut rng = TestRng::from_name("generated_instances_are_treelike_and_varied");
        let mut sizes = std::collections::BTreeSet::new();
        for _ in 0..32 {
            let inst = strategy.generate(&mut rng);
            sizes.insert(inst.fact_count());
            let (graph, _) = inst.gaifman_graph();
            let (w, td) = treelineage_graph::treewidth::treewidth_upper_bound(&graph);
            assert!(td.validate(&graph).is_ok());
            assert!(w <= 3, "width {w} too large for a partial 2-tree");
        }
        assert!(sizes.len() > 3, "sizes not varied: {sizes:?}");
    }

    #[test]
    fn decomposition_accompanies_the_instance() {
        let strategy = treelike_instance_with_decomposition(sig(), 6, 1);
        let mut rng = TestRng::from_name("decomposition_accompanies_the_instance");
        for _ in 0..16 {
            let (inst, td) = strategy.generate(&mut rng);
            let (graph, _) = inst.gaifman_graph();
            assert!(td.validate(&graph).is_ok());
        }
    }
}
