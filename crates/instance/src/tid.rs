//! Tuple-independent databases: probability valuations and possible worlds
//! (Definition 3.1 of the paper).
//!
//! A probability valuation maps each fact of an instance to a rational
//! probability in `[0, 1]`; it induces a product distribution over
//! subinstances ("possible worlds"). Probability evaluation asks for the
//! total weight of the worlds satisfying a query. This module provides the
//! valuation type, world enumeration (the brute-force oracle used by tests),
//! and the world-probability computation.

use crate::instance::{FactId, Instance};
use std::collections::BTreeSet;
use treelineage_num::Rational;

/// A probability valuation: one probability per fact of a fixed instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbabilityValuation {
    probabilities: Vec<Rational>,
}

impl ProbabilityValuation {
    /// The valuation assigning probability `p` to every fact of `instance`.
    pub fn uniform(instance: &Instance, p: Rational) -> Self {
        assert!(p.is_probability(), "probability out of [0, 1]");
        ProbabilityValuation {
            probabilities: vec![p; instance.fact_count()],
        }
    }

    /// The valuation assigning probability 1/2 to every fact — the valuation
    /// that turns probability evaluation into model counting (footnote 3).
    pub fn all_one_half(instance: &Instance) -> Self {
        ProbabilityValuation::uniform(instance, Rational::one_half())
    }

    /// The valuation assigning probability 1 to every fact (standard query
    /// evaluation reduces to probability evaluation through it, Section 5.2).
    pub fn all_certain(instance: &Instance) -> Self {
        ProbabilityValuation::uniform(instance, Rational::one())
    }

    /// Builds a valuation from explicit per-fact probabilities (indexed by
    /// fact id). Panics if any value is outside `[0, 1]` or the length does
    /// not match the instance.
    pub fn from_probabilities(instance: &Instance, probabilities: Vec<Rational>) -> Self {
        assert_eq!(
            probabilities.len(),
            instance.fact_count(),
            "length mismatch"
        );
        assert!(
            probabilities.iter().all(|p| p.is_probability()),
            "probability out of [0, 1]"
        );
        ProbabilityValuation { probabilities }
    }

    /// Builds a valuation from `f64` probabilities, converted exactly (they
    /// must be finite and in `[0, 1]`).
    pub fn from_f64(instance: &Instance, probabilities: &[f64]) -> Self {
        let rationals = probabilities
            .iter()
            .map(|&p| Rational::from_f64_dyadic(p).expect("probability must be finite"))
            .collect();
        ProbabilityValuation::from_probabilities(instance, rationals)
    }

    /// Number of facts covered.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// Returns `true` if the valuation covers no facts.
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }

    /// The probability of the given fact.
    pub fn probability(&self, fact: FactId) -> &Rational {
        &self.probabilities[fact.0]
    }

    /// Overrides the probability of one fact.
    pub fn set_probability(&mut self, fact: FactId, p: Rational) {
        assert!(p.is_probability(), "probability out of [0, 1]");
        self.probabilities[fact.0] = p;
    }

    /// Appends a probability for a newly inserted fact (mirrors
    /// [`Instance::add_fact`], which always appends at the dense tail).
    pub fn push(&mut self, p: Rational) {
        assert!(p.is_probability(), "probability out of [0, 1]");
        self.probabilities.push(p);
    }

    /// Removes the probability of one fact with swap-remove semantics,
    /// mirroring [`Instance::remove_fact`]: the last entry moves into the
    /// vacated slot. Returns the removed probability.
    pub fn swap_remove(&mut self, fact: FactId) -> Rational {
        self.probabilities.swap_remove(fact.0)
    }

    /// The probability of a specific possible world, given as the set of
    /// present facts: the product of `p(F)` for present facts and `1 - p(F)`
    /// for absent ones (Definition 3.1).
    pub fn world_probability(&self, present: &BTreeSet<FactId>) -> Rational {
        let mut prob = Rational::one();
        for (i, p) in self.probabilities.iter().enumerate() {
            if present.contains(&FactId(i)) {
                prob *= p;
            } else {
                prob *= &p.complement();
            }
        }
        prob
    }

    /// Iterates over all `2^{|I|}` possible worlds with their probabilities,
    /// calling `f` on each. The brute-force oracle behind the probability
    /// evaluation tests; panics above 20 facts.
    pub fn for_each_world(&self, mut f: impl FnMut(&BTreeSet<FactId>, &Rational)) {
        let n = self.probabilities.len();
        assert!(n <= 20, "world enumeration limited to 20 facts");
        for mask in 0u64..(1u64 << n) {
            let present: BTreeSet<FactId> =
                (0..n).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
            let p = self.world_probability(&present);
            f(&present, &p);
        }
    }

    /// Brute-force probability that a predicate on worlds holds: the sum of
    /// the probabilities of the satisfying worlds. Exponential oracle.
    pub fn probability_of(&self, mut satisfies: impl FnMut(&BTreeSet<FactId>) -> bool) -> Rational {
        let mut total = Rational::zero();
        self.for_each_world(|world, p| {
            if satisfies(world) {
                total += p;
            }
        });
        total
    }
}

/// A tuple-independent database: an instance together with a probability
/// valuation on its facts.
#[derive(Clone, Debug)]
pub struct TupleIndependentDatabase {
    instance: Instance,
    valuation: ProbabilityValuation,
}

impl TupleIndependentDatabase {
    /// Pairs an instance with a valuation.
    pub fn new(instance: Instance, valuation: ProbabilityValuation) -> Self {
        assert_eq!(valuation.len(), instance.fact_count());
        TupleIndependentDatabase {
            instance,
            valuation,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The valuation.
    pub fn valuation(&self) -> &ProbabilityValuation {
        &self.valuation
    }

    /// The probability that a world-predicate holds (brute force; see
    /// [`ProbabilityValuation::probability_of`]).
    pub fn probability_of(&self, satisfies: impl FnMut(&BTreeSet<FactId>) -> bool) -> Rational {
        self.valuation.probability_of(satisfies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;

    fn small_instance() -> Instance {
        let sig = Signature::builder().relation("R", 1).build();
        let mut inst = Instance::new(sig);
        inst.add_fact_by_name("R", &[1]);
        inst.add_fact_by_name("R", &[2]);
        inst.add_fact_by_name("R", &[3]);
        inst
    }

    #[test]
    fn uniform_valuation() {
        let inst = small_instance();
        let val = ProbabilityValuation::all_one_half(&inst);
        assert_eq!(val.len(), 3);
        assert_eq!(*val.probability(FactId(0)), Rational::one_half());
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let inst = small_instance();
        let val = ProbabilityValuation::from_f64(&inst, &[0.5, 0.25, 1.0]);
        let mut total = Rational::zero();
        val.for_each_world(|_, p| total += p);
        assert!(total.is_one());
    }

    #[test]
    fn world_probability_formula() {
        let inst = small_instance();
        let val = ProbabilityValuation::from_f64(&inst, &[0.5, 0.25, 0.125]);
        let world: BTreeSet<FactId> = [FactId(0), FactId(2)].into_iter().collect();
        // 0.5 * (1 - 0.25) * 0.125 = 3/64
        assert_eq!(
            val.world_probability(&world),
            Rational::from_ratio_u64(3, 64)
        );
    }

    #[test]
    fn probability_of_event() {
        let inst = small_instance();
        let val = ProbabilityValuation::all_one_half(&inst);
        // P(at least one fact present) = 1 - (1/2)^3 = 7/8.
        let p = val.probability_of(|world| !world.is_empty());
        assert_eq!(p, Rational::from_ratio_u64(7, 8));
        // P(fact 0 present) = 1/2.
        let p0 = val.probability_of(|world| world.contains(&FactId(0)));
        assert_eq!(p0, Rational::one_half());
    }

    #[test]
    fn certain_valuation_gives_single_world() {
        let inst = small_instance();
        let val = ProbabilityValuation::all_certain(&inst);
        let p = val.probability_of(|world| world.len() == 3);
        assert!(p.is_one());
    }

    #[test]
    fn set_probability_overrides() {
        let inst = small_instance();
        let mut val = ProbabilityValuation::all_one_half(&inst);
        val.set_probability(FactId(1), Rational::zero());
        let p = val.probability_of(|world| world.contains(&FactId(1)));
        assert!(p.is_zero());
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        let inst = small_instance();
        let _ = ProbabilityValuation::uniform(&inst, Rational::from_ratio_u64(3, 2));
    }

    #[test]
    fn tid_wrapper() {
        let inst = small_instance();
        let val = ProbabilityValuation::all_one_half(&inst);
        let tid = TupleIndependentDatabase::new(inst, val);
        assert_eq!(tid.instance().fact_count(), 3);
        let p = tid.probability_of(|w| w.len() >= 2);
        // C(3,2) + C(3,3) = 4 worlds of 8.
        assert_eq!(p, Rational::one_half());
    }
}
