//! Relational instances, Gaifman graphs and tuple-independent databases.
//!
//! This crate provides the data-model substrate of the paper *Tractable
//! Lineages on Treelike Instances*: relational signatures ([`Signature`]),
//! instances with active-domain semantics ([`Instance`]), their Gaifman
//! graphs and treewidth, probability valuations and possible-worlds semantics
//! ([`ProbabilityValuation`], Definition 3.1), and the concrete instance
//! families used by the paper's constructions (line instances, S-grids,
//! complete bipartite instances, bounded-treewidth random instances; see the
//! [`encodings`] module). The [`strategies`] module exports reusable
//! property-testing generators of random treelike instances (with known
//! decompositions) shared by the workspace's differential suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encodings;
mod instance;
mod signature;
pub mod strategies;
mod tid;

pub use instance::{Element, Fact, FactId, Instance};
pub use signature::{Relation, RelationId, Signature, SignatureBuilder};
pub use tid::{ProbabilityValuation, TupleIndependentDatabase};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use treelineage_num::Rational;

    fn arbitrary_instance() -> impl Strategy<Value = Instance> {
        (2usize..12, 1usize..3, any::<u64>()).prop_map(|(n, k, seed)| {
            let sig = Signature::builder()
                .relation("R", 2)
                .relation("S", 2)
                .relation("L", 1)
                .build();
            encodings::random_treelike_instance(&sig, n.max(k + 1), k, seed)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn subinstance_domain_shrinks(inst in arbitrary_instance()) {
            use std::collections::BTreeSet;
            let keep: BTreeSet<FactId> = inst
                .fact_ids()
                .filter(|f| f.0 % 2 == 0)
                .collect();
            let sub = inst.subinstance(&keep);
            prop_assert!(inst.includes(&sub));
            prop_assert!(sub.fact_count() <= inst.fact_count());
            prop_assert!(sub.domain_size() <= inst.domain_size());
            // The identity is a homomorphism from the subinstance to the instance.
            prop_assert!(sub.homomorphism_to(&inst).is_some());
        }

        #[test]
        fn gaifman_graph_treewidth_bounded_for_partial_k_trees(inst in arbitrary_instance()) {
            let (graph, domain) = inst.gaifman_graph();
            prop_assert_eq!(domain.len(), inst.domain_size());
            let (w, td) = treelineage_graph::treewidth::treewidth_upper_bound(&graph);
            prop_assert!(td.validate(&graph).is_ok());
            // Partial 2-trees have treewidth <= 2; the heuristic may lose a
            // constant, but never exceeds the domain size.
            prop_assert!(w < inst.domain_size().max(1));
        }

        #[test]
        fn world_probabilities_sum_to_one(inst in arbitrary_instance()) {
            prop_assume!(inst.fact_count() <= 10);
            let val = ProbabilityValuation::uniform(&inst, Rational::from_ratio_u64(1, 3));
            let mut total = Rational::zero();
            val.for_each_world(|_, p| total += p);
            prop_assert!(total.is_one());
        }

        #[test]
        fn instance_isomorphic_to_itself(inst in arbitrary_instance()) {
            prop_assume!(inst.fact_count() <= 6 && inst.domain_size() <= 6);
            prop_assert!(inst.isomorphic_to(&inst));
        }
    }
}
