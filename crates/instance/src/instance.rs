//! Relational instances (Section 2 of the paper).
//!
//! An instance is a finite set of ground facts over a signature, with the
//! active-domain semantics: the domain is exactly the set of elements
//! occurring in facts. Subinstances are subsets of the fact set; the Gaifman
//! graph connects any two elements co-occurring in a fact, and the treewidth /
//! pathwidth of an instance are those of its Gaifman graph.

use crate::signature::{RelationId, Signature};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use treelineage_graph::{Graph, TreeDecomposition, Vertex};

/// A domain element. Elements are plain integers; instances may attach
/// display names to them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Element(pub u64);

/// Identifier of a fact within an [`Instance`] (a dense index; subinstances
/// are expressed as fact-id subsets). Ids are stable under insertion; the only
/// operation that renumbers is [`Instance::remove_fact`], which swap-removes:
/// the last fact (and only it) moves into the vacated id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FactId(pub usize);

/// A ground fact `R(a_1, ..., a_k)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fact {
    relation: RelationId,
    arguments: Vec<Element>,
}

impl Fact {
    /// Creates a fact.
    pub fn new(relation: RelationId, arguments: Vec<Element>) -> Self {
        Fact {
            relation,
            arguments,
        }
    }

    /// The fact's relation.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The fact's arguments.
    pub fn arguments(&self) -> &[Element] {
        &self.arguments
    }

    /// The set of distinct elements occurring in the fact.
    pub fn elements(&self) -> BTreeSet<Element> {
        self.arguments.iter().copied().collect()
    }
}

/// A relational instance: a set of facts over a signature.
#[derive(Clone, Debug)]
pub struct Instance {
    signature: Signature,
    facts: Vec<Fact>,
    index: HashMap<Fact, FactId>,
    element_names: BTreeMap<Element, String>,
}

impl Instance {
    /// Creates an empty instance over the given signature.
    pub fn new(signature: Signature) -> Self {
        Instance {
            signature,
            facts: Vec::new(),
            index: HashMap::new(),
            element_names: BTreeMap::new(),
        }
    }

    /// The instance's signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Number of facts (the paper's `|I|`).
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// Adds a fact, returning its id. Adding a fact that is already present
    /// returns the existing id. Panics if the arity does not match the
    /// signature.
    pub fn add_fact(&mut self, relation: RelationId, arguments: Vec<Element>) -> FactId {
        assert_eq!(
            arguments.len(),
            self.signature.arity(relation),
            "arity mismatch for relation {}",
            self.signature.relation(relation).name()
        );
        let fact = Fact::new(relation, arguments);
        if let Some(&id) = self.index.get(&fact) {
            return id;
        }
        let id = FactId(self.facts.len());
        self.index.insert(fact.clone(), id);
        self.facts.push(fact);
        id
    }

    /// Removes the fact with the given id and returns it, with swap-remove
    /// semantics: the last fact moves into the vacated id, so only that one
    /// fact is renumbered and every other id stays stable. Returns the fact
    /// id the previously-last fact moved *from* (it now lives at `id`), or
    /// `None` when the removed fact was itself last. Panics if `id` is out of
    /// range.
    pub fn remove_fact(&mut self, id: FactId) -> (Fact, Option<FactId>) {
        assert!(id.0 < self.facts.len(), "fact id out of range");
        let removed = self.facts.swap_remove(id.0);
        self.index.remove(&removed);
        if id.0 < self.facts.len() {
            self.index.insert(self.facts[id.0].clone(), id);
            (removed, Some(FactId(self.facts.len())))
        } else {
            (removed, None)
        }
    }

    /// Convenience: adds a fact by relation name.
    pub fn add_fact_by_name(&mut self, relation: &str, arguments: &[u64]) -> FactId {
        let rel = self
            .signature
            .relation_by_name(relation)
            .unwrap_or_else(|| panic!("unknown relation {relation:?}"));
        self.add_fact(rel, arguments.iter().map(|&a| Element(a)).collect())
    }

    /// Names an element for display purposes.
    pub fn name_element(&mut self, element: Element, name: &str) {
        self.element_names.insert(element, name.to_string());
    }

    /// The display name of an element (falls back to its numeric id).
    pub fn element_name(&self, element: Element) -> String {
        self.element_names
            .get(&element)
            .cloned()
            .unwrap_or_else(|| format!("e{}", element.0))
    }

    /// The fact with the given id.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id.0]
    }

    /// All facts with their ids.
    pub fn facts(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts.iter().enumerate().map(|(i, f)| (FactId(i), f))
    }

    /// All fact ids.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> {
        (0..self.facts.len()).map(FactId)
    }

    /// Returns the id of a fact if it is present.
    pub fn fact_id(&self, relation: RelationId, arguments: &[Element]) -> Option<FactId> {
        self.index
            .get(&Fact::new(relation, arguments.to_vec()))
            .copied()
    }

    /// Returns `true` if the given fact is present.
    pub fn contains(&self, relation: RelationId, arguments: &[Element]) -> bool {
        self.fact_id(relation, arguments).is_some()
    }

    /// The facts of a given relation.
    pub fn facts_of(&self, relation: RelationId) -> Vec<FactId> {
        self.facts()
            .filter(|(_, f)| f.relation() == relation)
            .map(|(id, _)| id)
            .collect()
    }

    /// The active domain: all elements occurring in facts, sorted.
    pub fn domain(&self) -> BTreeSet<Element> {
        self.facts
            .iter()
            .flat_map(|f| f.arguments().iter().copied())
            .collect()
    }

    /// Size of the active domain.
    pub fn domain_size(&self) -> usize {
        self.domain().len()
    }

    /// The subinstance consisting of the given facts (an instance in its own
    /// right, with fresh fact ids in the order given by `keep`).
    pub fn subinstance(&self, keep: &BTreeSet<FactId>) -> Instance {
        let mut sub = Instance::new(self.signature.clone());
        sub.element_names = self.element_names.clone();
        for (id, fact) in self.facts() {
            if keep.contains(&id) {
                sub.add_fact(fact.relation(), fact.arguments().to_vec());
            }
        }
        sub
    }

    /// The facts of this instance as a boolean presence vector indexed by
    /// fact id (all `true`); convenience for building possible worlds.
    pub fn full_world(&self) -> Vec<bool> {
        vec![true; self.facts.len()]
    }

    /// The Gaifman graph of the instance, together with the mapping from
    /// graph vertices to domain elements. Elements co-occurring in a fact are
    /// connected; elements occurring only in unary facts become isolated
    /// vertices of the graph.
    pub fn gaifman_graph(&self) -> (Graph, Vec<Element>) {
        let domain: Vec<Element> = self.domain().into_iter().collect();
        let index: BTreeMap<Element, Vertex> =
            domain.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        let mut graph = Graph::new(domain.len());
        for fact in &self.facts {
            let elements: Vec<Element> = fact.elements().into_iter().collect();
            for i in 0..elements.len() {
                for j in i + 1..elements.len() {
                    graph.add_edge(index[&elements[i]], index[&elements[j]]);
                }
            }
        }
        (graph, domain)
    }

    /// Treewidth upper bound of the instance (heuristic on the Gaifman
    /// graph), together with a tree decomposition expressed over domain
    /// elements (as bags of elements).
    pub fn treewidth_upper_bound(&self) -> (usize, Vec<BTreeSet<Element>>, TreeDecomposition) {
        let (graph, domain) = self.gaifman_graph();
        let (width, td) = treelineage_graph::treewidth::treewidth_upper_bound(&graph);
        let bags = td
            .bags()
            .iter()
            .map(|bag| bag.iter().map(|&v| domain[v]).collect())
            .collect();
        (width, bags, td)
    }

    /// Returns `true` if `other` is a subinstance of `self` (every fact of
    /// `other` is a fact of `self`).
    pub fn includes(&self, other: &Instance) -> bool {
        other.facts.iter().all(|f| self.index.contains_key(f))
    }

    /// Finds a homomorphism from `self` to `other` (a map on domain elements
    /// preserving all facts), if one exists. Backtracking search; exponential
    /// in the worst case but fine for the test-scale instances where it is
    /// used (isomorphism checks, unfolding verification).
    pub fn homomorphism_to(&self, other: &Instance) -> Option<BTreeMap<Element, Element>> {
        self.find_homomorphism(other, false)
    }

    /// Like [`Instance::homomorphism_to`] but requires the mapping to be
    /// injective on domain elements.
    pub fn injective_homomorphism_to(
        &self,
        other: &Instance,
    ) -> Option<BTreeMap<Element, Element>> {
        self.find_homomorphism(other, true)
    }

    fn find_homomorphism(
        &self,
        other: &Instance,
        injective: bool,
    ) -> Option<BTreeMap<Element, Element>> {
        let domain: Vec<Element> = self.domain().into_iter().collect();
        let target_domain: Vec<Element> = other.domain().into_iter().collect();
        let mut assignment: BTreeMap<Element, Element> = BTreeMap::new();
        if self.extend_homomorphism(
            &domain,
            0,
            &target_domain,
            other,
            injective,
            &mut assignment,
        ) {
            Some(assignment)
        } else {
            None
        }
    }

    fn extend_homomorphism(
        &self,
        domain: &[Element],
        next: usize,
        target_domain: &[Element],
        other: &Instance,
        injective: bool,
        assignment: &mut BTreeMap<Element, Element>,
    ) -> bool {
        if next == domain.len() {
            return true;
        }
        let e = domain[next];
        for &candidate in target_domain {
            if injective && assignment.values().any(|&v| v == candidate) {
                continue;
            }
            assignment.insert(e, candidate);
            if self.assignment_consistent(other, assignment)
                && self.extend_homomorphism(
                    domain,
                    next + 1,
                    target_domain,
                    other,
                    injective,
                    assignment,
                )
            {
                return true;
            }
            assignment.remove(&e);
        }
        false
    }

    fn assignment_consistent(
        &self,
        other: &Instance,
        assignment: &BTreeMap<Element, Element>,
    ) -> bool {
        for fact in &self.facts {
            if fact.arguments().iter().all(|a| assignment.contains_key(a)) {
                let image: Vec<Element> = fact.arguments().iter().map(|a| assignment[a]).collect();
                if !other.contains(fact.relation(), &image) {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` if the two instances are isomorphic (there is a
    /// bijective homomorphism whose inverse is also a homomorphism).
    /// Exponential; intended for small test instances.
    pub fn isomorphic_to(&self, other: &Instance) -> bool {
        if self.fact_count() != other.fact_count() || self.domain_size() != other.domain_size() {
            return false;
        }
        // An injective homomorphism between instances of equal domain size
        // maps distinct facts to distinct facts; with equal fact counts it is
        // therefore surjective on facts, so its inverse is a homomorphism too.
        self.injective_homomorphism_to(other).is_some()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        for fact in &self.facts {
            let args: Vec<String> = fact
                .arguments()
                .iter()
                .map(|&a| self.element_name(a))
                .collect();
            parts.push(format!(
                "{}({})",
                self.signature.relation(fact.relation()).name(),
                args.join(", ")
            ));
        }
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rst_signature() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    #[test]
    fn remove_fact_swaps_the_last_fact_into_the_hole() {
        let sig = rst_signature();
        let mut inst = Instance::new(sig.clone());
        let r = inst.add_fact_by_name("R", &[1]);
        let s = inst.add_fact_by_name("S", &[1, 2]);
        let t = inst.add_fact_by_name("T", &[2]);

        // Removing a middle fact moves the last fact into its slot.
        let (removed, moved) = inst.remove_fact(s);
        assert_eq!(removed.arguments(), &[Element(1), Element(2)]);
        assert_eq!(moved, Some(t));
        assert_eq!(inst.fact_count(), 2);
        assert!(!inst.contains(removed.relation(), removed.arguments()));
        // The moved fact is findable at its new id, the untouched one stays.
        let t_rel = sig.relation_by_name("T").unwrap();
        assert_eq!(inst.fact_id(t_rel, &[Element(2)]), Some(s));
        let r_rel = sig.relation_by_name("R").unwrap();
        assert_eq!(inst.fact_id(r_rel, &[Element(1)]), Some(r));

        // Removing the last fact moves nothing.
        let (removed, moved) = inst.remove_fact(FactId(1));
        assert_eq!(removed.arguments(), &[Element(2)]);
        assert_eq!(moved, None);
        assert_eq!(inst.fact_count(), 1);

        // Re-inserting a removed fact reuses the dense tail slot.
        let id = inst.add_fact(t_rel, vec![Element(2)]);
        assert_eq!(id, FactId(1));
    }

    #[test]
    fn add_and_query_facts() {
        let sig = rst_signature();
        let mut inst = Instance::new(sig.clone());
        let f1 = inst.add_fact_by_name("R", &[1]);
        let f2 = inst.add_fact_by_name("S", &[1, 2]);
        let f3 = inst.add_fact_by_name("T", &[2]);
        assert_eq!(inst.fact_count(), 3);
        assert_ne!(f1, f2);
        assert_ne!(f2, f3);
        let s = sig.relation_by_name("S").unwrap();
        assert!(inst.contains(s, &[Element(1), Element(2)]));
        assert!(!inst.contains(s, &[Element(2), Element(1)]));
        assert_eq!(inst.domain_size(), 2);
        assert_eq!(inst.facts_of(s), vec![f2]);
    }

    #[test]
    fn adding_duplicate_fact_is_idempotent() {
        let mut inst = Instance::new(rst_signature());
        let a = inst.add_fact_by_name("R", &[7]);
        let b = inst.add_fact_by_name("R", &[7]);
        assert_eq!(a, b);
        assert_eq!(inst.fact_count(), 1);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut inst = Instance::new(rst_signature());
        inst.add_fact_by_name("R", &[1, 2]);
    }

    #[test]
    fn subinstance_and_inclusion() {
        let mut inst = Instance::new(rst_signature());
        let f1 = inst.add_fact_by_name("R", &[1]);
        let _f2 = inst.add_fact_by_name("S", &[1, 2]);
        let keep: BTreeSet<FactId> = [f1].into_iter().collect();
        let sub = inst.subinstance(&keep);
        assert_eq!(sub.fact_count(), 1);
        assert!(inst.includes(&sub));
        assert!(!sub.includes(&inst));
        // Active domain of the subinstance shrinks (active-domain semantics).
        assert_eq!(sub.domain_size(), 1);
    }

    #[test]
    fn gaifman_graph_of_rst_path() {
        // R(1), S(1,2), T(2): Gaifman graph is a single edge {1, 2}.
        let mut inst = Instance::new(rst_signature());
        inst.add_fact_by_name("R", &[1]);
        inst.add_fact_by_name("S", &[1, 2]);
        inst.add_fact_by_name("T", &[2]);
        let (g, domain) = inst.gaifman_graph();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(domain, vec![Element(1), Element(2)]);
    }

    #[test]
    fn gaifman_graph_of_ternary_fact_is_a_triangle() {
        let sig = Signature::builder().relation("T3", 3).build();
        let mut inst = Instance::new(sig);
        inst.add_fact_by_name("T3", &[1, 2, 3]);
        let (g, _) = inst.gaifman_graph();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn treewidth_of_chain_instance_is_one() {
        let sig = Signature::builder().relation("S", 2).build();
        let mut inst = Instance::new(sig);
        for i in 0..10u64 {
            inst.add_fact_by_name("S", &[i, i + 1]);
        }
        let (w, bags, _) = inst.treewidth_upper_bound();
        assert_eq!(w, 1);
        assert!(!bags.is_empty());
    }

    #[test]
    fn homomorphism_and_isomorphism() {
        let sig = Signature::builder().relation("S", 2).build();
        let mut path2 = Instance::new(sig.clone());
        path2.add_fact_by_name("S", &[1, 2]);
        path2.add_fact_by_name("S", &[2, 3]);

        let mut loop1 = Instance::new(sig.clone());
        loop1.add_fact_by_name("S", &[5, 5]);

        // The path maps homomorphically onto the loop, not vice versa? Both
        // actually do: the loop maps anywhere an S-loop exists, which the path
        // lacks, so loop -> path has no homomorphism.
        assert!(path2.homomorphism_to(&loop1).is_some());
        assert!(loop1.homomorphism_to(&path2).is_none());

        let mut path2_renamed = Instance::new(sig.clone());
        path2_renamed.add_fact_by_name("S", &[10, 20]);
        path2_renamed.add_fact_by_name("S", &[20, 30]);
        assert!(path2.isomorphic_to(&path2_renamed));
        assert!(!path2.isomorphic_to(&loop1));
    }

    #[test]
    fn display_uses_names() {
        let mut inst = Instance::new(rst_signature());
        inst.add_fact_by_name("S", &[1, 2]);
        inst.name_element(Element(1), "alice");
        let shown = inst.to_string();
        assert!(shown.contains("S(alice, e2)"), "{shown}");
    }
}
