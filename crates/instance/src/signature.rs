//! Relational signatures (Section 2 of the paper).
//!
//! A signature is a finite set of relation names, each with a positive arity.
//! A signature is *arity-k* if `k` is the maximum arity; most of the paper's
//! dichotomies are stated for arity-2 signatures, which we can test with
//! [`Signature::is_arity_two`].

use std::fmt;
use std::sync::Arc;

/// Identifier of a relation within a [`Signature`] (a dense index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelationId(pub usize);

/// A relation symbol: a name and an arity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Relation {
    name: String,
    arity: usize,
}

impl Relation {
    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation's arity (always at least 1).
    pub fn arity(&self) -> usize {
        self.arity
    }
}

/// A relational signature. Cheap to clone (the relation list is shared).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signature {
    relations: Arc<Vec<Relation>>,
}

impl Signature {
    /// Starts building a signature.
    pub fn builder() -> SignatureBuilder {
        SignatureBuilder {
            relations: Vec::new(),
        }
    }

    /// The standard graph signature: a single binary relation `E`
    /// (Section 2, "Graphs").
    pub fn graph() -> Self {
        Signature::builder().relation("E", 2).build()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// All relations in declaration order.
    pub fn relations(&self) -> impl Iterator<Item = (RelationId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelationId(i), r))
    }

    /// The relation with the given id.
    pub fn relation(&self, id: RelationId) -> &Relation {
        &self.relations[id.0]
    }

    /// Looks a relation up by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(RelationId)
    }

    /// The arity of the relation with the given id.
    pub fn arity(&self, id: RelationId) -> usize {
        self.relations[id.0].arity
    }

    /// The maximum arity over all relations (0 for the empty signature).
    pub fn max_arity(&self) -> usize {
        self.relations.iter().map(|r| r.arity).max().unwrap_or(0)
    }

    /// Returns `true` if the signature is arity-2 (max arity exactly 2), the
    /// setting of the paper's dichotomy results.
    pub fn is_arity_two(&self) -> bool {
        self.max_arity() == 2
    }

    /// The binary relations of the signature.
    pub fn binary_relations(&self) -> Vec<RelationId> {
        self.relations()
            .filter(|(_, r)| r.arity() == 2)
            .map(|(id, _)| id)
            .collect()
    }

    /// The unary relations of the signature.
    pub fn unary_relations(&self) -> Vec<RelationId> {
        self.relations()
            .filter(|(_, r)| r.arity() == 1)
            .map(|(id, _)| id)
            .collect()
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .relations
            .iter()
            .map(|r| format!("{}/{}", r.name, r.arity))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// Builder for [`Signature`].
pub struct SignatureBuilder {
    relations: Vec<Relation>,
}

impl SignatureBuilder {
    /// Adds a relation. Panics on duplicate names or zero arity.
    pub fn relation(mut self, name: &str, arity: usize) -> Self {
        assert!(arity >= 1, "relations must have positive arity");
        assert!(
            !self.relations.iter().any(|r| r.name == name),
            "duplicate relation name {name:?}"
        );
        self.relations.push(Relation {
            name: name.to_string(),
            arity,
        });
        self
    }

    /// Finishes the signature.
    pub fn build(self) -> Signature {
        Signature {
            relations: Arc::new(self.relations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let sig = Signature::builder()
            .relation("R", 2)
            .relation("S", 2)
            .relation("L", 1)
            .build();
        assert_eq!(sig.relation_count(), 3);
        let r = sig.relation_by_name("R").unwrap();
        assert_eq!(sig.arity(r), 2);
        assert_eq!(sig.relation(r).name(), "R");
        assert!(sig.relation_by_name("T").is_none());
        assert_eq!(sig.max_arity(), 2);
        assert!(sig.is_arity_two());
        assert_eq!(sig.binary_relations().len(), 2);
        assert_eq!(sig.unary_relations().len(), 1);
    }

    #[test]
    fn graph_signature() {
        let sig = Signature::graph();
        assert_eq!(sig.relation_count(), 1);
        assert_eq!(sig.relation(RelationId(0)).name(), "E");
        assert!(sig.is_arity_two());
        assert_eq!(sig.to_string(), "{E/2}");
    }

    #[test]
    fn higher_arity_signature_is_not_arity_two() {
        let sig = Signature::builder().relation("T", 3).build();
        assert!(!sig.is_arity_two());
        assert_eq!(sig.max_arity(), 3);
    }

    #[test]
    #[should_panic]
    fn duplicate_relation_panics() {
        let _ = Signature::builder()
            .relation("R", 1)
            .relation("R", 2)
            .build();
    }

    #[test]
    #[should_panic]
    fn zero_arity_panics() {
        let _ = Signature::builder().relation("R", 0).build();
    }
}
