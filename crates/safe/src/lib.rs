//! Safe queries, inversion-freeness and lineage-preserving unfoldings
//! (Section 9 of the paper).
//!
//! Section 9 connects the paper's instance-based tractability to the
//! query-based tractability of safe queries: for every ranked inversion-free
//! UCQ, any ranked instance can be *unfolded* — rewritten, fact by fact, into
//! an instance of tree-depth at most `arity(σ)` — without changing the
//! query's lineage (Theorem 9.7). Bounded tree-depth implies bounded
//! pathwidth and treewidth, so the constant-width OBDDs of inversion-free
//! UCQs (Theorem 9.6, \[36\]) are explained by the bounded-pathwidth
//! tractability of Theorem 6.7.
//!
//! This crate implements:
//! * detection of hierarchical / inversion-free UCQs via a search for
//!   compatible per-relation attribute orders (Definition C.1 specialised to
//!   the constant-free, ranked queries used throughout the paper — the
//!   general inversion-free test of \[36\] is not reimplemented, see
//!   DESIGN.md §2);
//! * the ranking check for instances (Section 9's ranking transformation is
//!   assumed to have been applied; we verify it rather than re-deriving it);
//! * the **unfolding** construction of Theorem 9.7, returning the unfolded
//!   instance, the fact bijection, and an elimination forest witnessing
//!   tree-depth ≤ arity(σ);
//! * verification helpers: lineage preservation (Lemma 9.5) and the
//!   tree-depth / pathwidth bounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use treelineage_graph::{treedepth::EliminationForest, treewidth};
use treelineage_instance::{Element, FactId, Instance, RelationId};
use treelineage_query::{matching, ConjunctiveQuery, UnionOfConjunctiveQueries, Variable};

/// Per-relation total orders on attribute positions (position indices in
/// visiting order, e.g. `[1, 0]` means position 1 comes first).
pub type AttributeOrders = BTreeMap<RelationId, Vec<usize>>;

/// Searches for per-relation attribute orders under which the UCQ is
/// inversion-free: every disjunct must be hierarchical, and within every atom
/// the variable at an earlier position (w.r.t. the relation's order) must
/// occur in at least the atoms of the variable at any later position — the
/// "root variables come first" shape of an inversion-free expression
/// (Definition C.1). Returns the orders if they exist.
pub fn inversion_free_orders(query: &UnionOfConjunctiveQueries) -> Option<AttributeOrders> {
    if !query
        .disjuncts()
        .iter()
        .all(|d| d.is_hierarchical() && d.is_ranked())
    {
        return None;
    }
    let signature = query.signature();
    let relations: Vec<RelationId> = signature.relations().map(|(id, _)| id).collect();
    // Enumerate per-relation permutations (arities are small: the paper's
    // dichotomies live on arity-2 signatures).
    let mut orders: AttributeOrders = BTreeMap::new();
    if search_orders(query, &relations, 0, &mut orders) {
        Some(orders)
    } else {
        None
    }
}

fn search_orders(
    query: &UnionOfConjunctiveQueries,
    relations: &[RelationId],
    next: usize,
    orders: &mut AttributeOrders,
) -> bool {
    if next == relations.len() {
        return orders_are_compatible(query, orders);
    }
    let relation = relations[next];
    let arity = query.signature().arity(relation);
    for permutation in permutations(arity) {
        orders.insert(relation, permutation);
        if search_orders(query, relations, next + 1, orders) {
            return true;
        }
    }
    orders.remove(&relation);
    false
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for insert_at in 0..=rest.len() {
            let mut p = rest.clone();
            p.insert(insert_at, n - 1);
            out.push(p);
        }
    }
    out
}

fn orders_are_compatible(query: &UnionOfConjunctiveQueries, orders: &AttributeOrders) -> bool {
    for disjunct in query.disjuncts() {
        // atoms(v) within the disjunct.
        let occurrences = |v: Variable| -> BTreeSet<usize> {
            disjunct
                .atoms()
                .iter()
                .enumerate()
                .filter(|(_, a)| a.variables().contains(&v))
                .map(|(i, _)| i)
                .collect()
        };
        for atom in disjunct.atoms() {
            let order = &orders[&atom.relation];
            for window in order.windows(2) {
                let earlier = atom.arguments[window[0]];
                let later = atom.arguments[window[1]];
                // The earlier variable must dominate the later one in the
                // hierarchy: atoms(later) ⊆ atoms(earlier).
                if !occurrences(later).is_subset(&occurrences(earlier)) {
                    return false;
                }
            }
        }
    }
    true
}

/// Returns `true` if the query is inversion-free (some compatible attribute
/// orders exist).
pub fn is_inversion_free(query: &UnionOfConjunctiveQueries) -> bool {
    inversion_free_orders(query).is_some()
}

/// Returns `true` if the instance is *ranked*: under the order of element
/// ids, the arguments of every fact are strictly increasing (Section 9). The
/// ranking transformation of \[16, 18\] that establishes this property is
/// assumed to have been applied upstream.
pub fn is_ranked_instance(instance: &Instance) -> bool {
    instance
        .facts()
        .all(|(_, fact)| fact.arguments().windows(2).all(|w| w[0].0 < w[1].0))
}

/// The result of unfolding an instance for an inversion-free UCQ
/// (Theorem 9.7).
pub struct Unfolding {
    /// The unfolded instance `I'`.
    pub instance: Instance,
    /// For every fact of the original instance, the corresponding fact of the
    /// unfolded one (the bijection of Definition 9.2).
    pub fact_map: BTreeMap<FactId, FactId>,
    /// The elimination forest on the unfolded instance's domain witnessing
    /// tree-depth ≤ arity(σ).
    pub elimination_forest: EliminationForest,
    /// The tree-depth bound witnessed by the forest.
    pub tree_depth: usize,
}

/// Unfolds a ranked instance along per-relation attribute orders
/// (Theorem 9.7): every fact `R(a)` is rewritten to `R(b)` where the element
/// at the `j`-th position (in `<_R` order) becomes the *tuple of the first
/// `j` elements* — distinct prefixes become distinct elements, so joins that
/// the inversion-free query cannot "see" are undone and the Gaifman graph
/// becomes a forest of depth at most `arity(σ)`.
pub fn unfold(instance: &Instance, orders: &AttributeOrders) -> Unfolding {
    assert!(
        is_ranked_instance(instance),
        "unfolding requires a ranked instance (apply the ranking transformation first)"
    );
    let signature = instance.signature().clone();
    let mut unfolded = Instance::new(signature.clone());
    let mut prefix_elements: BTreeMap<Vec<Element>, Element> = BTreeMap::new();
    let mut parent_of: BTreeMap<Element, Option<Element>> = BTreeMap::new();
    let mut next_element: u64 = 0;
    let mut intern = |prefix: Vec<Element>,
                      prefix_elements: &mut BTreeMap<Vec<Element>, Element>,
                      parent_of: &mut BTreeMap<Element, Option<Element>>|
     -> Element {
        if let Some(&e) = prefix_elements.get(&prefix) {
            return e;
        }
        let e = Element(next_element);
        next_element += 1;
        let parent = if prefix.len() > 1 {
            let parent_prefix = prefix[..prefix.len() - 1].to_vec();
            Some(
                *prefix_elements
                    .get(&parent_prefix)
                    .expect("parent prefix interned first"),
            )
        } else {
            None
        };
        prefix_elements.insert(prefix, e);
        parent_of.insert(e, parent);
        e
    };

    let mut fact_map = BTreeMap::new();
    for (id, fact) in instance.facts() {
        let order = orders
            .get(&fact.relation())
            .cloned()
            .unwrap_or_else(|| (0..fact.arguments().len()).collect());
        // Build the prefix elements in <_R order, then place them back at
        // their original positions.
        let mut new_args: Vec<Element> = vec![Element(0); fact.arguments().len()];
        let mut prefix: Vec<Element> = Vec::new();
        for &position in &order {
            prefix.push(fact.arguments()[position]);
            let element = intern(prefix.clone(), &mut prefix_elements, &mut parent_of);
            new_args[position] = element;
        }
        let new_id = unfolded.add_fact(fact.relation(), new_args);
        fact_map.insert(id, new_id);
    }

    // Elimination forest on the unfolded domain: parent = longest strict
    // prefix. Vertices of the forest are indices into the sorted domain of
    // the unfolded instance (matching its Gaifman graph's vertex numbering).
    let domain: Vec<Element> = unfolded.domain().into_iter().collect();
    let index_of: BTreeMap<Element, usize> =
        domain.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    let parents: Vec<Option<usize>> = domain
        .iter()
        .map(|e| parent_of.get(e).and_then(|p| p.map(|pe| index_of[&pe])))
        .collect();
    let forest = EliminationForest::new(parents);
    let tree_depth = forest.height();

    Unfolding {
        instance: unfolded,
        fact_map,
        elimination_forest: forest,
        tree_depth,
    }
}

/// Convenience: unfold an instance for a given inversion-free query
/// (computing the attribute orders first). Returns `None` if the query is
/// not inversion-free.
pub fn unfold_for_query(
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
) -> Option<Unfolding> {
    let orders = inversion_free_orders(query)?;
    Some(unfold(instance, &orders))
}

/// Checks Lemma 9.5 on a concrete (small) input: the query has the same
/// lineage on the instance and on its unfolding, under the fact bijection.
/// Brute force over all worlds; limited to 18 facts.
pub fn lineage_preserved(
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
    unfolding: &Unfolding,
) -> bool {
    let n = instance.fact_count();
    assert!(n <= 18, "lineage preservation check limited to 18 facts");
    for mask in 0u64..(1u64 << n) {
        let world: BTreeSet<FactId> = (0..n).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
        let image: BTreeSet<FactId> = world.iter().map(|f| unfolding.fact_map[f]).collect();
        let on_original = matching::satisfied_in_world(query, instance, &world);
        let on_unfolded = matching::satisfied_in_world(query, &unfolding.instance, &image);
        if on_original != on_unfolded {
            return false;
        }
    }
    true
}

/// The pathwidth upper bound of the unfolded instance's Gaifman graph — by
/// Theorem 9.7 and pathwidth ≤ tree-depth − 1 this is below `arity(σ)`.
pub fn unfolded_pathwidth(unfolding: &Unfolding) -> usize {
    let (graph, _) = unfolding.instance.gaifman_graph();
    treewidth::pathwidth_upper_bound(&graph).0
}

/// Returns `true` if the given self-join-free CQ is safe in the sense of the
/// Dalvi–Suciu dichotomy \[19\]: for self-join-free conjunctive queries,
/// safety coincides with being hierarchical. Used by the examples to connect
/// the two tractability conditions.
pub fn is_safe_self_join_free_cq(query: &ConjunctiveQuery) -> bool {
    query.is_self_join_free() && query.is_hierarchical()
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage::LineageBuilder;
    use treelineage_instance::{encodings, Signature};
    use treelineage_query::parse_query;

    fn rs_signature() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .build()
    }

    #[test]
    fn hierarchical_queries_are_inversion_free() {
        let sig = rs_signature();
        // R(x), S(x, y): hierarchical; the order on S must visit position 0
        // (x, the root variable) first.
        let q = parse_query(&sig, "R(x), S(x, y)").unwrap();
        let orders = inversion_free_orders(&q).expect("inversion-free");
        let s = sig.relation_by_name("S").unwrap();
        assert_eq!(orders[&s], vec![0, 1]);
        assert!(is_inversion_free(&q));
    }

    #[test]
    fn non_hierarchical_query_is_not_inversion_free() {
        let sig = Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build();
        let q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
        assert!(!is_inversion_free(&q));
    }

    #[test]
    fn reversed_hierarchy_finds_reversed_order() {
        let sig = rs_signature();
        // R(y), S(x, y): the root variable of S is y, at position 1.
        let q = parse_query(&sig, "R(y), S(x, y)").unwrap();
        let orders = inversion_free_orders(&q).expect("inversion-free");
        let s = sig.relation_by_name("S").unwrap();
        assert_eq!(orders[&s], vec![1, 0]);
    }

    #[test]
    fn ranked_instance_detection() {
        let sig = rs_signature();
        let mut ranked = Instance::new(sig.clone());
        ranked.add_fact_by_name("S", &[1, 2]);
        ranked.add_fact_by_name("R", &[1]);
        assert!(is_ranked_instance(&ranked));
        let mut unranked = Instance::new(sig);
        unranked.add_fact_by_name("S", &[2, 1]);
        assert!(!is_ranked_instance(&unranked));
    }

    #[test]
    fn unfolding_reduces_treedepth_and_preserves_lineage() {
        // A "star join" instance with high connectivity through shared second
        // attributes: S(a, c) for a in {1,2,3}, c in {4,5,6}, plus R(a).
        // The query R(x), S(x, y) is inversion-free; the unfolding must have
        // tree-depth <= 2 and identical lineage.
        let sig = rs_signature();
        let mut inst = Instance::new(sig.clone());
        for a in 1u64..=3 {
            inst.add_fact_by_name("R", &[a]);
            for c in 4u64..=6 {
                inst.add_fact_by_name("S", &[a, c]);
            }
        }
        let q = parse_query(&sig, "R(x), S(x, y)").unwrap();
        let unfolding = unfold_for_query(&q, &inst).expect("inversion-free");
        assert!(unfolding.tree_depth <= sig.max_arity());
        assert!(unfolding
            .elimination_forest
            .validate(&unfolding.instance.gaifman_graph().0)
            .is_ok());
        assert!(lineage_preserved(&q, &inst, &unfolding));
        assert!(unfolded_pathwidth(&unfolding) < sig.max_arity());
        // Fact counts match (the unfolding is a bijection on facts).
        assert_eq!(unfolding.instance.fact_count(), inst.fact_count());
    }

    #[test]
    fn unfolding_splits_joins_the_query_cannot_see() {
        // Two S-facts sharing their *second* attribute: S(1, 3), S(2, 3).
        // For the query R(x), S(x, y) (root variable x = position 0), the
        // join on position 1 is invisible, so the unfolding separates element
        // 3 into two copies and the Gaifman graph becomes two disjoint edges.
        let sig = rs_signature();
        let mut inst = Instance::new(sig.clone());
        inst.add_fact_by_name("S", &[1, 3]);
        inst.add_fact_by_name("S", &[2, 3]);
        inst.add_fact_by_name("R", &[1]);
        let q = parse_query(&sig, "R(x), S(x, y)").unwrap();
        let unfolding = unfold_for_query(&q, &inst).unwrap();
        assert!(unfolding.instance.domain_size() > inst.domain_size());
        assert!(lineage_preserved(&q, &inst, &unfolding));
        let (graph, _) = unfolding.instance.gaifman_graph();
        assert!(!graph.has_cycle());
    }

    #[test]
    fn unfolded_lineage_has_constant_width_obdd() {
        // Theorem 9.6 via Theorem 9.7: the OBDD width of an inversion-free
        // UCQ on the unfolded (bounded-pathwidth) instance stays constant as
        // the instance grows.
        let sig = rs_signature();
        let q = parse_query(&sig, "R(x), S(x, y)").unwrap();
        let mut widths = Vec::new();
        for n in [3u64, 6, 9] {
            let mut inst = Instance::new(sig.clone());
            for a in 1..=n {
                inst.add_fact_by_name("R", &[a]);
                for c in 1..=3u64 {
                    inst.add_fact_by_name("S", &[a, n + c]);
                }
            }
            let unfolding = unfold_for_query(&q, &inst).unwrap();
            let builder = LineageBuilder::new(&q, &unfolding.instance).unwrap();
            let (manager, root) = builder.dd();
            widths.push(manager.width(root));
        }
        assert_eq!(widths[1], widths[2], "widths {widths:?}");
    }

    #[test]
    fn safety_of_self_join_free_cqs() {
        let sig = Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build();
        let unsafe_q = parse_query(&sig, "R(x), S(x, y), T(y)").unwrap();
        assert!(!is_safe_self_join_free_cq(&unsafe_q.disjuncts()[0]));
        let safe_q = parse_query(&sig, "R(x), S(x, y)").unwrap();
        assert!(is_safe_self_join_free_cq(&safe_q.disjuncts()[0]));
    }

    #[test]
    fn unfolding_on_grid_instances_flattens_them() {
        // Even on a grid (unbounded treewidth family), the unfolding for an
        // inversion-free query produces a bounded tree-depth instance.
        let sig = Signature::builder().relation("S", 2).build();
        let s = sig.relation_by_name("S").unwrap();
        let inst = encodings::grid_instance(&sig, s, 3, 3);
        assert!(is_ranked_instance(&inst));
        let q = parse_query(&sig, "S(x, y)").unwrap();
        let unfolding = unfold_for_query(&q, &inst).unwrap();
        assert!(unfolding.tree_depth <= 2);
        assert!(lineage_preserved(&q, &inst, &unfolding));
    }
}
