//! Positive relational algebra and Datalog with provenance
//! (the "any instance" rows of Table 2: monotone lineage formulas for the
//! positive relational algebra \[34\] and monotone provenance circuits for
//! Datalog \[21\]).
//!
//! These two rows of Table 2 are the baselines the paper contrasts with its
//! treewidth-based constructions: on *arbitrary* instances, positive
//! relational algebra admits polynomial monotone lineage **formulas**, while
//! recursive Datalog still admits polynomial monotone **circuits** but
//! provably not polynomial formulas (Table 2, lower part, last row). This
//! crate implements both provenance-carrying evaluators so that the benches
//! can measure the corresponding sizes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use treelineage_circuit::{Circuit, Formula, GateId};
use treelineage_instance::{Element, FactId, Instance, RelationId};

/// A tuple of domain elements (a row of an intermediate relation).
pub type Row = Vec<Element>;

/// An expression of the positive relational algebra over the relations of an
/// instance (selection with column equality, projection, natural-style join
/// on explicit column pairs, and union).
#[derive(Clone, Debug)]
pub enum RaExpression {
    /// A base relation scan.
    Relation(RelationId),
    /// Selection: keep rows where the two columns are equal.
    Select {
        /// The operand.
        input: Box<RaExpression>,
        /// First column of the equality.
        left_column: usize,
        /// Second column of the equality.
        right_column: usize,
    },
    /// Projection onto the given columns (in order, duplicates allowed).
    Project {
        /// The operand.
        input: Box<RaExpression>,
        /// The retained columns.
        columns: Vec<usize>,
    },
    /// Join of two operands on pairs of (left column, right column).
    Join {
        /// Left operand.
        left: Box<RaExpression>,
        /// Right operand.
        right: Box<RaExpression>,
        /// Column equalities; the output schema is left columns followed by
        /// right columns.
        on: Vec<(usize, usize)>,
    },
    /// Union of two operands with the same arity.
    Union(Box<RaExpression>, Box<RaExpression>),
}

/// The result of evaluating an [`RaExpression`] with provenance: each output
/// row is annotated with a monotone lineage [`Formula`] over the instance's
/// fact ids (\[34\]-style Boolean provenance).
pub fn evaluate_ra(expression: &RaExpression, instance: &Instance) -> BTreeMap<Row, Formula> {
    match expression {
        RaExpression::Relation(relation) => {
            let mut out = BTreeMap::new();
            for id in instance.facts_of(*relation) {
                let fact = instance.fact(id);
                insert_or(&mut out, fact.arguments().to_vec(), Formula::Var(id.0));
            }
            out
        }
        RaExpression::Select {
            input,
            left_column,
            right_column,
        } => {
            let mut out = BTreeMap::new();
            for (row, lineage) in evaluate_ra(input, instance) {
                if row[*left_column] == row[*right_column] {
                    insert_or(&mut out, row, lineage);
                }
            }
            out
        }
        RaExpression::Project { input, columns } => {
            let mut out = BTreeMap::new();
            for (row, lineage) in evaluate_ra(input, instance) {
                let projected: Row = columns.iter().map(|&c| row[c]).collect();
                insert_or(&mut out, projected, lineage);
            }
            out
        }
        RaExpression::Join { left, right, on } => {
            let left_rows = evaluate_ra(left, instance);
            let right_rows = evaluate_ra(right, instance);
            let mut out = BTreeMap::new();
            for (lrow, llin) in &left_rows {
                for (rrow, rlin) in &right_rows {
                    if on.iter().all(|&(lc, rc)| lrow[lc] == rrow[rc]) {
                        let mut row = lrow.clone();
                        row.extend(rrow.iter().copied());
                        insert_or(
                            &mut out,
                            row,
                            Formula::And(vec![llin.clone(), rlin.clone()]),
                        );
                    }
                }
            }
            out
        }
        RaExpression::Union(a, b) => {
            let mut out = evaluate_ra(a, instance);
            for (row, lineage) in evaluate_ra(b, instance) {
                insert_or(&mut out, row, lineage);
            }
            out
        }
    }
}

fn insert_or(map: &mut BTreeMap<Row, Formula>, row: Row, lineage: Formula) {
    match map.remove(&row) {
        Some(existing) => {
            map.insert(row, Formula::Or(vec![existing, lineage]));
        }
        None => {
            map.insert(row, lineage);
        }
    }
}

/// The total lineage-formula size (leaf occurrences) of an RA result — the
/// quantity reported by the Table 2 "positive relational algebra" row.
pub fn ra_result_formula_size(result: &BTreeMap<Row, Formula>) -> usize {
    result.values().map(|f| f.leaf_size()).sum()
}

// ---------------------------------------------------------------------------
// Datalog
// ---------------------------------------------------------------------------

/// A Datalog predicate: either a base (EDB) relation of the instance or a
/// derived (IDB) predicate identified by name.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Predicate {
    /// An EDB relation of the instance.
    Edb(RelationId),
    /// A derived predicate, identified by an index into the program's IDB
    /// list.
    Idb(usize),
}

/// A term of a Datalog rule: a variable (by index) only — the paper's queries
/// are constant-free, so are our programs.
pub type Term = usize;

/// A Datalog atom: a predicate applied to variables.
#[derive(Clone, Debug)]
pub struct DatalogAtom {
    /// The atom's predicate.
    pub predicate: Predicate,
    /// The atom's variables.
    pub variables: Vec<Term>,
}

/// A positive Datalog rule `head :- body`.
#[derive(Clone, Debug)]
pub struct DatalogRule {
    /// The IDB predicate being defined.
    pub head_predicate: usize,
    /// The head's variables.
    pub head_variables: Vec<Term>,
    /// The body atoms.
    pub body: Vec<DatalogAtom>,
}

/// A positive Datalog program: a list of IDB predicate names with arities and
/// the rules defining them.
#[derive(Clone, Debug)]
pub struct DatalogProgram {
    /// `(name, arity)` of each IDB predicate.
    pub idb: Vec<(String, usize)>,
    /// The rules.
    pub rules: Vec<DatalogRule>,
}

impl DatalogProgram {
    /// The classic transitive-closure program over a binary EDB relation:
    /// `TC(x, y) :- E(x, y)` and `TC(x, z) :- TC(x, y), E(y, z)`.
    pub fn transitive_closure(edge: RelationId) -> Self {
        DatalogProgram {
            idb: vec![("TC".to_string(), 2)],
            rules: vec![
                DatalogRule {
                    head_predicate: 0,
                    head_variables: vec![0, 1],
                    body: vec![DatalogAtom {
                        predicate: Predicate::Edb(edge),
                        variables: vec![0, 1],
                    }],
                },
                DatalogRule {
                    head_predicate: 0,
                    head_variables: vec![0, 2],
                    body: vec![
                        DatalogAtom {
                            predicate: Predicate::Idb(0),
                            variables: vec![0, 1],
                        },
                        DatalogAtom {
                            predicate: Predicate::Edb(edge),
                            variables: vec![1, 2],
                        },
                    ],
                },
            ],
        }
    }
}

/// The provenance-carrying result of a Datalog evaluation: for every IDB
/// predicate, the derived rows with their provenance gate in the
/// accompanying monotone circuit (\[21\]-style provenance circuits).
pub struct DatalogProvenance {
    /// The monotone provenance circuit; variable `i` is fact `FactId(i)`.
    pub circuit: Circuit,
    /// For each IDB predicate, the derived rows and their gates.
    pub derived: Vec<BTreeMap<Row, GateId>>,
}

/// Evaluates a positive Datalog program on an instance to fixpoint (naive
/// iteration), building a monotone provenance circuit: the gate of a derived
/// row is the OR over its derivations (across iterations) of the AND of the
/// gates of the body rows. The circuit has polynomially many gates; a
/// formula unfolding of the same provenance blows up (the `n^{Ω(log n)}`
/// lower bound row of Table 2), which [`datalog_lineage_formula`] exhibits.
pub fn evaluate_datalog(program: &DatalogProgram, instance: &Instance) -> DatalogProvenance {
    let mut circuit = Circuit::new();
    // Current gate per IDB row.
    let mut derived: Vec<BTreeMap<Row, GateId>> = vec![BTreeMap::new(); program.idb.len()];
    // EDB gates: one variable per fact.
    let mut edb: BTreeMap<RelationId, BTreeMap<Row, GateId>> = BTreeMap::new();
    for (id, fact) in instance.facts() {
        edb.entry(fact.relation())
            .or_default()
            .insert(fact.arguments().to_vec(), circuit.var(id.0));
    }

    // Naive fixpoint: at most |domain|^max_arity rows per IDB predicate, so
    // at most that many rounds add a new row; we additionally OR in new
    // derivations of existing rows until nothing changes structurally (new
    // rows) — re-deriving the same row through longer paths is cut off by
    // only accepting derivations that add new rows or strictly extend the
    // set of derivations in the first |domain| rounds (enough for transitive
    // closure and the experiments; a full well-founded derivation-tree
    // treatment is out of scope).
    let domain_size = instance.domain_size().max(1);
    for _round in 0..=domain_size {
        let mut additions: Vec<(usize, Row, GateId)> = Vec::new();
        for rule in &program.rules {
            let mut bindings: Vec<(BTreeMap<Term, Element>, Vec<GateId>)> =
                vec![(BTreeMap::new(), Vec::new())];
            for atom in &rule.body {
                let rows: Vec<(Row, GateId)> = match &atom.predicate {
                    Predicate::Edb(rel) => edb
                        .get(rel)
                        .map(|m| m.iter().map(|(r, &g)| (r.clone(), g)).collect())
                        .unwrap_or_default(),
                    Predicate::Idb(i) => derived[*i].iter().map(|(r, &g)| (r.clone(), g)).collect(),
                };
                let mut next_bindings = Vec::new();
                for (binding, gates) in &bindings {
                    for (row, gate) in &rows {
                        let mut extended = binding.clone();
                        let mut ok = true;
                        for (&var, &value) in atom.variables.iter().zip(row.iter()) {
                            match extended.get(&var) {
                                Some(&bound) if bound != value => {
                                    ok = false;
                                    break;
                                }
                                Some(_) => {}
                                None => {
                                    extended.insert(var, value);
                                }
                            }
                        }
                        if ok {
                            let mut new_gates = gates.clone();
                            new_gates.push(*gate);
                            next_bindings.push((extended, new_gates));
                        }
                    }
                }
                bindings = next_bindings;
            }
            for (binding, gates) in bindings {
                let row: Row = rule.head_variables.iter().map(|v| binding[v]).collect();
                let gate = if gates.len() == 1 {
                    gates[0]
                } else {
                    circuit.and(gates)
                };
                additions.push((rule.head_predicate, row, gate));
            }
        }
        let mut changed = false;
        for (pred, row, gate) in additions {
            match derived[pred].get(&row) {
                None => {
                    derived[pred].insert(row, gate);
                    changed = true;
                }
                Some(&existing) if existing != gate => {
                    let merged = circuit.or(vec![existing, gate]);
                    derived[pred].insert(row, merged);
                }
                Some(_) => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Give the circuit a well-defined output: the OR of all derived rows of
    // the first IDB predicate (the Boolean "is anything derivable" view).
    let gates: Vec<GateId> = derived
        .first()
        .map(|m| m.values().copied().collect())
        .unwrap_or_default();
    let output = match gates.len() {
        0 => circuit.constant(false),
        1 => gates[0],
        _ => circuit.or(gates),
    };
    circuit.set_output(output);

    DatalogProvenance { circuit, derived }
}

/// The lineage of one derived row as a monotone Boolean formula, obtained by
/// unfolding the provenance circuit (exponential in general — the gap the
/// last row of Table 2 quantifies). Panics if the unfolding exceeds
/// `max_nodes`.
pub fn datalog_lineage_formula(
    provenance: &DatalogProvenance,
    predicate: usize,
    row: &Row,
    max_nodes: usize,
) -> Option<Formula> {
    let gate = *provenance.derived.get(predicate)?.get(row)?;
    let mut circuit = provenance.circuit.clone();
    circuit.set_output(gate);
    Some(Formula::from_circuit(&circuit, max_nodes))
}

/// Checks a derived row's lineage against the semantics: for every
/// subinstance (world), the row is derivable from the surviving facts iff its
/// provenance gate evaluates to true. Brute force; limited to 16 facts.
pub fn verify_datalog_provenance(
    program: &DatalogProgram,
    instance: &Instance,
    provenance: &DatalogProvenance,
) -> bool {
    let n = instance.fact_count();
    assert!(n <= 16, "verification limited to 16 facts");
    for mask in 0u32..(1u32 << n) {
        let keep: BTreeSet<FactId> = (0..n).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
        let world = instance.subinstance(&keep);
        let world_result = evaluate_datalog(program, &world);
        let true_vars: BTreeSet<usize> = keep.iter().map(|f| f.0).collect();
        for (pred, rows) in provenance.derived.iter().enumerate() {
            for (row, &gate) in rows {
                let mut circuit = provenance.circuit.clone();
                circuit.set_output(gate);
                let lineage_true = circuit.evaluate_set(&true_vars);
                let derivable = world_result
                    .derived
                    .get(pred)
                    .map(|m| m.contains_key(row))
                    .unwrap_or(false);
                if lineage_true != derivable {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_graph::generators;
    use treelineage_instance::{encodings, Signature};

    fn edge_signature() -> (Signature, RelationId) {
        let sig = Signature::builder().relation("E", 2).build();
        let e = sig.relation_by_name("E").unwrap();
        (sig, e)
    }

    fn path_instance(n: usize) -> (Instance, RelationId) {
        let (sig, e) = edge_signature();
        let graph = generators::path_graph(n);
        (encodings::graph_instance(&graph, &sig, e), e)
    }

    #[test]
    fn ra_join_projection_lineage() {
        // pi_{x,z}(E(x,y) |x| E(y,z)): paths of length 2.
        let (inst, e) = path_instance(4);
        let expr = RaExpression::Project {
            input: Box::new(RaExpression::Join {
                left: Box::new(RaExpression::Relation(e)),
                right: Box::new(RaExpression::Relation(e)),
                on: vec![(1, 0)],
            }),
            columns: vec![0, 3],
        };
        let result = evaluate_ra(&expr, &inst);
        // Path 0-1-2-3: length-2 paths are (0,2) and (1,3).
        assert_eq!(result.len(), 2);
        for (row, lineage) in &result {
            assert_eq!(row.len(), 2);
            assert!(lineage.is_monotone());
            assert_eq!(lineage.leaf_size(), 2);
        }
        assert!(ra_result_formula_size(&result) == 4);
    }

    #[test]
    fn ra_union_and_select_lineage() {
        let (sig, e) = edge_signature();
        let mut inst = Instance::new(sig);
        inst.add_fact_by_name("E", &[1, 1]);
        inst.add_fact_by_name("E", &[1, 2]);
        // sigma_{0 = 1}(E) keeps only the loop; E union E keeps lineage simple.
        let select = RaExpression::Select {
            input: Box::new(RaExpression::Relation(e)),
            left_column: 0,
            right_column: 1,
        };
        let result = evaluate_ra(&select, &inst);
        assert_eq!(result.len(), 1);
        let union = RaExpression::Union(
            Box::new(RaExpression::Relation(e)),
            Box::new(RaExpression::Relation(e)),
        );
        let union_result = evaluate_ra(&union, &inst);
        assert_eq!(union_result.len(), 2);
        // Each row's lineage is Var OR Var (the duplicate scan).
        for lineage in union_result.values() {
            assert!(lineage.evaluate(&|_| true));
        }
    }

    #[test]
    fn ra_lineage_semantics_on_worlds() {
        // For every world, a row is in the RA result of the world iff its
        // lineage is true.
        let (inst, e) = path_instance(4);
        let expr = RaExpression::Project {
            input: Box::new(RaExpression::Join {
                left: Box::new(RaExpression::Relation(e)),
                right: Box::new(RaExpression::Relation(e)),
                on: vec![(1, 0)],
            }),
            columns: vec![0, 3],
        };
        let full = evaluate_ra(&expr, &inst);
        let n = inst.fact_count();
        for mask in 0u32..(1 << n) {
            let keep: BTreeSet<FactId> =
                (0..n).filter(|i| mask >> i & 1 == 1).map(FactId).collect();
            let world = inst.subinstance(&keep);
            // Re-evaluate on the world; compare row sets with lineage values.
            let world_rows: BTreeSet<Row> = evaluate_ra(&expr, &world).keys().cloned().collect();
            let true_vars: BTreeSet<usize> = keep.iter().map(|f| f.0).collect();
            for (row, lineage) in &full {
                assert_eq!(world_rows.contains(row), lineage.evaluate_set(&true_vars));
            }
        }
    }

    #[test]
    fn transitive_closure_provenance_on_a_path() {
        let (inst, e) = path_instance(4);
        let program = DatalogProgram::transitive_closure(e);
        let provenance = evaluate_datalog(&program, &inst);
        // TC over the path 0-1-2-3 has 6 pairs.
        assert_eq!(provenance.derived[0].len(), 6);
        assert!(provenance.circuit.is_monotone_syntactically());
        assert!(verify_datalog_provenance(&program, &inst, &provenance));
        // The lineage of TC(0, 3) is the conjunction of all three edges.
        let row = vec![Element(0), Element(3)];
        let formula = datalog_lineage_formula(&provenance, 0, &row, 10_000).unwrap();
        assert!(formula.is_monotone());
        assert!(formula.evaluate(&|_| true));
        assert!(!formula.evaluate(&|v| v != 1));
    }

    #[test]
    fn transitive_closure_provenance_on_a_cycle() {
        let (sig, e) = edge_signature();
        let graph = generators::cycle_graph(4);
        let inst = encodings::graph_instance(&graph, &sig, e);
        let program = DatalogProgram::transitive_closure(e);
        let provenance = evaluate_datalog(&program, &inst);
        assert!(verify_datalog_provenance(&program, &inst, &provenance));
    }

    #[test]
    fn circuit_grows_polynomially_formula_grows_faster() {
        // Circuit size vs formula size for the full transitive closure of
        // growing paths: the circuit stays small, the unfolded formula for
        // the farthest pair grows much faster (super-linearly in the circuit
        // size).
        let mut circuit_sizes = Vec::new();
        let mut formula_sizes = Vec::new();
        for n in [4usize, 6, 8] {
            let (inst, e) = path_instance(n);
            let program = DatalogProgram::transitive_closure(e);
            let provenance = evaluate_datalog(&program, &inst);
            circuit_sizes.push(provenance.circuit.size());
            let row = vec![Element(0), Element(n as u64 - 1)];
            let formula = datalog_lineage_formula(&provenance, 0, &row, 1_000_000).unwrap();
            formula_sizes.push(formula.node_size());
        }
        assert!(circuit_sizes.windows(2).all(|w| w[1] > w[0]));
        assert!(formula_sizes.windows(2).all(|w| w[1] > w[0]));
    }
}
