//! Long-lived evaluation sessions: batched requests over cached compile
//! state.
//!
//! A serving system does not see one `query_probability` call — it sees a
//! stream of (query, instance, weight-vector) requests, most of which share
//! their expensive prefix: the tree encoding is per instance, the compiled
//! query machine is per (query, alphabet), and the provenance d-SDNNF is
//! per (query, instance); only the final linear evaluation pass depends on
//! the weights. [`EvalSession`] keeps all three layers cached across
//! batches and evaluates the requests of a batch concurrently on the
//! engine's work-stealing pool:
//!
//! * **per-instance state** — the instance, its (validated) tree
//!   decomposition, the lazily built [`TreeEncoding`], and — for the
//!   shared-diagram backend — a lazily seeded [`Manager`] *shard*;
//! * **per-(query, width) state** — the persistent
//!   [`CompiledQuery`] machine, whose deterministic-state memo keeps
//!   growing across instances (its own kind of cache);
//! * **per-(query, instance) state** — the compiled [`ParallelDnnf`]
//!   lineage, shared by every request and every batch that names the pair.
//!
//! **Why shards instead of one lock.** The dd [`Manager`] is a mutable
//! hash-consed store: compilation needs `&mut`, and even evaluation takes
//! the shard lock. One global manager would serialize the whole batch; one
//! manager *per registered instance* (the natural unit, since a manager is
//! pinned to its variable order) lets requests for different instances
//! proceed in parallel and contend only with requests for the same
//! instance. The automaton backend needs no locking at all after compile —
//! [`ParallelDnnf`] evaluation is read-only.
//!
//! Results are deterministic: caches only memoize deterministic
//! computations, so a cache hit returns byte-for-byte what a cold compile
//! would have produced (pinned by the umbrella
//! `tests/parallel_differential.rs`).

use crate::approx::karp_luby_probability;
use crate::parallel::{compile_with_pool_cached, FragmentLibrary, ParallelDnnf};
use crate::pool::{lock_recovering, run_tasks, run_tasks_catching};
use crate::{variable_order_from_decomposition, EngineConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;
use treelineage_dd::Manager;
use treelineage_encoding::{
    compile_ucq, CompileError, CompileOptions, CompiledQuery, EncodingError, EncodingPlan,
    TreeEncoding,
};
use treelineage_graph::TreeDecomposition;
use treelineage_instance::{Element, Fact, FactId, Instance, ProbabilityValuation};
use treelineage_num::{BigUint, ErrorInterval, Rational};
use treelineage_query::{matching, UnionOfConjunctiveQueries};
use treelineage_telemetry::{MetricsSnapshot, Span, SpanEvent};

/// Handle to an instance registered with an [`EvalSession`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct InstanceId(usize);

impl InstanceId {
    /// The session-local index of the instance — the value the telemetry
    /// layer uses as the `shard` label of the per-shard dd series.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a query registered with an [`EvalSession`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct QueryId(usize);

impl QueryId {
    /// The session-local index of the query.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Which compiled representation a session serves requests from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SessionBackend {
    /// The Section 6 pipeline: tree-encode each instance once, compile each
    /// query to a tree automaton once, serve every request from the cached
    /// provenance d-SDNNF (never materializing query matches). The default.
    #[default]
    Automaton,
    /// The shared decision-diagram engine: one [`Manager`] shard per
    /// registered instance, query lineages compiled from their matches into
    /// the shard and looked up by root node on later requests.
    SharedDd,
    /// The automaton pipeline with the certified-f64 serving policy:
    /// [`EvalSession::batch_threshold`] answers from the interval fast-path
    /// (falling back to exact rationals only when the threshold lands
    /// inside the interval), and (query, instance) pairs whose compilation
    /// blows the state budget degrade to the Karp–Luby estimator with the
    /// session's `(ε, δ)` instead of failing. The exact-rational batch
    /// methods are unchanged under this backend — float-first is a *serving
    /// policy*, not a different compilation pipeline.
    FloatFirst,
}

impl SessionBackend {
    /// Stable lowercase name of the backend, used by [`ExplainReport`] and
    /// the telemetry surfaces.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionBackend::Automaton => "automaton",
            SessionBackend::SharedDd => "shared_dd",
            SessionBackend::FloatFirst => "float_first",
        }
    }
}

/// Errors reported per request by the batch methods. Requests that share a
/// failing (query, instance) pair share the (cloned) error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The supplied decomposition is not valid for the instance.
    InvalidDecomposition(String),
    /// Tree-encoding the instance failed.
    Encoding(EncodingError),
    /// Compiling the query to an automaton failed (state budget, alphabet
    /// limits).
    QueryCompile(CompileError),
    /// Provenance extraction failed (internal: the encoder's invariants
    /// should rule this out).
    Provenance(String),
    /// The worker task serving this request panicked (carrying the panic
    /// message). The panic is contained to the request: other requests of
    /// the batch and the session itself stay fully usable.
    WorkerPanicked(String),
    /// The request itself is malformed (unknown query/instance handle, or a
    /// valuation that does not cover the instance). Reported by entry
    /// points that validate on the caller's thread, such as
    /// [`EvalSession::explain`], instead of panicking a worker.
    InvalidRequest(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidDecomposition(e) => write!(f, "invalid decomposition: {e}"),
            EngineError::Encoding(e) => write!(f, "tree encoding failed: {e}"),
            EngineError::QueryCompile(e) => write!(f, "query compilation failed: {e}"),
            EngineError::Provenance(e) => write!(f, "provenance compilation failed: {e}"),
            EngineError::WorkerPanicked(e) => write!(f, "worker task panicked: {e}"),
            EngineError::InvalidRequest(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The kind of a mutation applied through [`EvalSession::insert_fact`],
/// [`EvalSession::retract_fact`] or [`EvalSession::set_probability`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UpdateKind {
    /// A new fact was inserted (structural).
    Insert,
    /// An existing fact was retracted (structural).
    Retract,
    /// One fact's probability was overridden (weights only).
    SetProbability,
}

impl UpdateKind {
    /// Stable lowercase name of the kind, used as the `kind` label of the
    /// `updates_total` telemetry series.
    pub fn as_str(self) -> &'static str {
        match self {
            UpdateKind::Insert => "insert",
            UpdateKind::Retract => "retract",
            UpdateKind::SetProbability => "set_probability",
        }
    }
}

/// Typed rejection of a mutation. Rejected updates leave the session
/// untouched: no cache layer is invalidated, no counter moves, the epoch
/// stays. The domain-pinning variants ([`UpdateError::NewElement`],
/// [`UpdateError::UncoveredFact`], [`UpdateError::OrphanedElement`]) exist
/// because a session instance's tree decomposition — and with it the
/// encoding's event numbering — is pinned to the Gaifman graph of the
/// *registered* active domain: an update that grows or shrinks the domain,
/// or introduces a fact no decomposition bag covers, would shift every
/// vertex index and silently invalidate the incremental-recompile contract.
/// Such updates need a re-registration, not an in-place mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// The instance handle does not belong to this session.
    UnknownInstance(usize),
    /// The fact id names no fact of the instance (retracting an absent fact
    /// lands here).
    UnknownFact(FactId),
    /// The inserted fact's argument count does not match its relation's
    /// arity in the instance's signature.
    ArityMismatch {
        /// Arity the signature declares for the relation.
        expected: usize,
        /// Arguments the fact carries.
        got: usize,
    },
    /// The inserted fact is already present (at the reported id). Instances
    /// are fact *sets*; inserting a duplicate is a rejected no-op, mirroring
    /// the idempotence of registration-time loading.
    DuplicateFact(FactId),
    /// The inserted fact mentions an element outside the pinned active
    /// domain.
    NewElement(Element),
    /// The inserted fact's elements are all in the domain, but no bag of the
    /// pinned decomposition contains them jointly (the fact has no home in
    /// the tree encoding, and its Gaifman edges may exceed the width).
    UncoveredFact,
    /// Retracting the fact would orphan the reported element (it occurs in
    /// no other fact), shrinking the pinned active domain.
    OrphanedElement(Element),
    /// The probability is outside `[0, 1]`.
    InvalidProbability,
    /// The pinned decomposition could not be turned into an encoding plan
    /// (alphabet limits); the instance cannot accept structural updates.
    Encoding(String),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::UnknownInstance(i) => write!(f, "unknown instance handle {i}"),
            UpdateError::UnknownFact(id) => write!(f, "no fact with id {}", id.0),
            UpdateError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: relation expects {expected}, got {got}")
            }
            UpdateError::DuplicateFact(id) => {
                write!(f, "fact already present with id {}", id.0)
            }
            UpdateError::NewElement(e) => {
                write!(f, "element {} is outside the pinned active domain", e.0)
            }
            UpdateError::UncoveredFact => {
                write!(f, "no decomposition bag covers the fact's elements")
            }
            UpdateError::OrphanedElement(e) => {
                write!(f, "retraction would orphan element {}", e.0)
            }
            UpdateError::InvalidProbability => write!(f, "probability out of [0, 1]"),
            UpdateError::Encoding(e) => write!(f, "encoding plan failed: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// What an applied update did, returned by the [`EvalSession`] mutation
/// methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdateReport {
    /// The kind of mutation applied.
    pub kind: UpdateKind,
    /// The fact the update touched: the new fact's id for an insert, the
    /// vacated id for a retract (where the moved fact now lives, if any),
    /// the reweighted fact for a probability override.
    pub fact: FactId,
    /// Retract only: the id the previously-last fact moved *from* (it now
    /// lives at [`UpdateReport::fact`]); `None` when the retracted fact was
    /// itself last, and for the other kinds.
    pub moved: Option<FactId>,
    /// Whether the update changed the fact set (and therefore invalidated
    /// the structural cache layers). Probability overrides are
    /// non-structural: the gate stream is probability-independent, so only
    /// the session's resident valuation changes.
    pub structural: bool,
    /// Whether the update was a zero-dirty fast path (overriding a
    /// probability with its current value): accepted, but nothing changed
    /// and no cache layer was touched.
    pub no_op: bool,
    /// The instance's update epoch after this update (0 at registration,
    /// +1 per applied non-no-op update).
    pub epoch: u64,
    /// How many resident lineage artifacts the update invalidated (their
    /// fragment libraries are retained for incremental recompilation).
    pub invalidated_lineages: usize,
}

/// Validates a fact insertion against an instance, and — when the instance
/// is pinned to an [`EncodingPlan`] — against the plan's domain and bag
/// coverage. With `plan: None` (a caller deriving a fresh heuristic
/// decomposition per evaluation, like the core builders without an explicit
/// decomposition) only the instance-level checks apply: any in-signature,
/// non-duplicate fact is insertable.
pub fn validate_insert(
    instance: &Instance,
    plan: Option<&EncodingPlan>,
    fact: &Fact,
    probability: &Rational,
) -> Result<(), UpdateError> {
    let expected = instance.signature().arity(fact.relation());
    if fact.arguments().len() != expected {
        return Err(UpdateError::ArityMismatch {
            expected,
            got: fact.arguments().len(),
        });
    }
    if !probability.is_probability() {
        return Err(UpdateError::InvalidProbability);
    }
    if let Some(id) = instance.fact_id(fact.relation(), fact.arguments()) {
        return Err(UpdateError::DuplicateFact(id));
    }
    if let Some(plan) = plan {
        let elements = fact.elements();
        for &e in &elements {
            if !plan.contains_element(e) {
                return Err(UpdateError::NewElement(e));
            }
        }
        if !plan.covers(&elements) {
            return Err(UpdateError::UncoveredFact);
        }
    }
    Ok(())
}

/// Validates a fact retraction. `pinned_domain` adds the orphan check (the
/// session's mode: every element of the fact must survive in another fact,
/// or the pinned active domain would shrink); callers re-deriving their
/// decomposition per evaluation may pass `false` and shrink freely.
pub fn validate_retract(
    instance: &Instance,
    fact: FactId,
    pinned_domain: bool,
) -> Result<(), UpdateError> {
    if fact.0 >= instance.fact_count() {
        return Err(UpdateError::UnknownFact(fact));
    }
    if pinned_domain {
        for e in instance.fact(fact).elements() {
            let survives = instance
                .facts()
                .any(|(id, f)| id != fact && f.elements().contains(&e));
            if !survives {
                return Err(UpdateError::OrphanedElement(e));
            }
        }
    }
    Ok(())
}

/// A probability request: evaluate `query` on `instance` under independent
/// per-fact probabilities.
#[derive(Clone, Debug)]
pub struct ProbabilityRequest {
    /// The registered query.
    pub query: QueryId,
    /// The registered instance.
    pub instance: InstanceId,
    /// Per-fact probabilities (must cover every fact of the instance).
    pub valuation: ProbabilityValuation,
}

/// A weighted-model-count request: general per-literal weights, indexed by
/// fact id (so `pos[f]` / `neg[f]` weight fact `f` present / absent).
#[derive(Clone, Debug)]
pub struct WmcRequest {
    /// The registered query.
    pub query: QueryId,
    /// The registered instance.
    pub instance: InstanceId,
    /// Weight of each fact being present, indexed by fact id.
    pub pos: Vec<Rational>,
    /// Weight of each fact being absent, indexed by fact id.
    pub neg: Vec<Rational>,
}

/// A threshold request: decide whether the probability of `query` on
/// `instance` exceeds `threshold`, letting the session pick the cheapest
/// tier that can answer soundly (see [`EvalSession::batch_threshold`]).
#[derive(Clone, Debug)]
pub struct ThresholdRequest {
    /// The registered query.
    pub query: QueryId,
    /// The registered instance.
    pub instance: InstanceId,
    /// Per-fact probabilities (must cover every fact of the instance).
    pub valuation: ProbabilityValuation,
    /// The decision threshold compared against the exact probability.
    pub threshold: Rational,
}

/// Which evaluation tier produced a [`ThresholdDecision`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecisionTier {
    /// The certified f64 interval pass alone decided (the threshold lay
    /// strictly outside the interval).
    Float,
    /// Exact rational evaluation (the only tier on exact backends; the
    /// fallback on [`SessionBackend::FloatFirst`] when the threshold lands
    /// inside the interval).
    Exact,
    /// The Karp–Luby estimator (compile budget exceeded under
    /// [`SessionBackend::FloatFirst`]); the decision is probabilistic.
    MonteCarlo,
}

impl DecisionTier {
    /// Stable lowercase name of the tier, used as the `tier` label of the
    /// telemetry series `requests_total` / `request_latency_ns`.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionTier::Float => "float",
            DecisionTier::Exact => "exact",
            DecisionTier::MonteCarlo => "monte_carlo",
        }
    }
}

/// The outcome of a [`ThresholdRequest`].
#[derive(Clone, Debug, PartialEq)]
pub struct ThresholdDecision {
    /// `true` iff the query probability exceeds the request's threshold
    /// (for [`DecisionTier::MonteCarlo`]: iff the estimate does).
    pub above: bool,
    /// The tier that produced the decision.
    pub tier: DecisionTier,
    /// The enclosure the decision was made from: certified for
    /// [`DecisionTier::Float`], exact (degenerate or optimal-bracket) for
    /// [`DecisionTier::Exact`], probabilistic `(ε, δ)` for
    /// [`DecisionTier::MonteCarlo`].
    pub interval: ErrorInterval,
}

/// One slow request retained by the session's flight recorder: the request
/// classification, its latency, and the full span subtree of its trace
/// (every span the request opened, on any thread), captured at completion
/// time so the spans survive later ring eviction.
#[derive(Clone, Debug)]
pub struct SlowRequest {
    /// The request kind (`"probability"`, `"threshold"`, ... — the same
    /// `kind` label as `requests_total`).
    pub kind: &'static str,
    /// The tier that served the request.
    pub tier: DecisionTier,
    /// End-to-end latency of the request.
    pub duration_ns: u64,
    /// The request's trace id (usable with
    /// [`Telemetry::events_for_trace`](treelineage_telemetry::Telemetry::events_for_trace)
    /// and as the `pid` track in a Chrome-trace export).
    pub trace: u64,
    /// The finished spans of the trace at capture time, including labels.
    pub spans: Vec<SpanEvent>,
}

/// Wall-clock aggregate of one pipeline stage inside a single request's
/// trace (one entry per distinct span name), reported by
/// [`EvalSession::explain`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageTiming {
    /// The span name of the stage (e.g. `"tree_encode"`, `"dsdnnf_compile"`).
    pub name: &'static str,
    /// How many spans of that name the request opened.
    pub count: u64,
    /// Total duration across those spans.
    pub total_ns: u64,
}

/// A structured per-request report from [`EvalSession::explain`]: which
/// backend and tier served the request, what each cache layer contributed,
/// the sizes of the compiled artifacts involved, and where the time went
/// (per-stage durations aggregated from the request's own spans).
/// [`ExplainReport::to_json`] renders it stably for log pipelines and the
/// `tables` experiment binary.
#[derive(Clone, Debug)]
pub struct ExplainReport {
    /// The serving backend ([`SessionBackend::as_str`]).
    pub backend: &'static str,
    /// The tier that produced the answer.
    pub tier: DecisionTier,
    /// The probability estimate (exact value for exact tiers, interval
    /// midpoint for [`DecisionTier::Float`], point estimate for
    /// [`DecisionTier::MonteCarlo`]).
    pub estimate: f64,
    /// Width of the enclosure the estimate came with (0 for exact tiers).
    pub interval_width: f64,
    /// Whether the instance's tree encoding was already cached when the
    /// request arrived.
    pub encoding_cached: bool,
    /// Whether the compiled query machine was already cached.
    pub machine_cached: bool,
    /// Whether the lineage artifact (d-SDNNF, or dd root on
    /// [`SessionBackend::SharedDd`]) was already cached.
    pub lineage_cached: bool,
    /// Deterministic states of the compiled query machine (automaton
    /// backends only).
    pub automaton_states: Option<usize>,
    /// Gate count of the compiled d-SDNNF (automaton backends only).
    pub gates: Option<usize>,
    /// Node count of the vtree structuring the d-SDNNF (automaton backends
    /// only).
    pub vtree_nodes: Option<usize>,
    /// Fragments of the circuit partition available to fragment-parallel
    /// evaluation (automaton backends only).
    pub fragments: Option<usize>,
    /// Node count of the instance's dd shard
    /// ([`SessionBackend::SharedDd`] only).
    pub dd_nodes: Option<usize>,
    /// The request's trace id, `None` when telemetry is disabled.
    pub trace: Option<u64>,
    /// End-to-end duration of the request span (0 when telemetry is
    /// disabled).
    pub total_ns: u64,
    /// Per-stage durations aggregated from the request's spans, sorted by
    /// stage name. Empty when telemetry is disabled.
    pub stages: Vec<StageTiming>,
}

impl ExplainReport {
    /// Renders the report as one stable JSON object (fixed key order,
    /// `None` artifact fields omitted), suitable for structured logs.
    pub fn to_json(&self) -> String {
        fn push_escaped(out: &mut String, text: &str) {
            out.push('"');
            for c in text.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        let mut out = String::from("{\"backend\":");
        push_escaped(&mut out, self.backend);
        out.push_str(",\"tier\":");
        push_escaped(&mut out, self.tier.as_str());
        // `{:?}` on finite f64 is shortest-roundtrip and valid JSON.
        out.push_str(&format!(",\"estimate\":{:?}", self.estimate));
        out.push_str(&format!(",\"interval_width\":{:?}", self.interval_width));
        out.push_str(&format!(
            ",\"cache\":{{\"encoding\":{},\"machine\":{},\"lineage\":{}}}",
            self.encoding_cached, self.machine_cached, self.lineage_cached
        ));
        out.push_str(",\"artifact\":{");
        let mut first = true;
        for (key, value) in [
            ("automaton_states", self.automaton_states),
            ("gates", self.gates),
            ("vtree_nodes", self.vtree_nodes),
            ("fragments", self.fragments),
            ("dd_nodes", self.dd_nodes),
        ] {
            if let Some(value) = value {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{key}\":{value}"));
            }
        }
        out.push('}');
        if let Some(trace) = self.trace {
            out.push_str(&format!(",\"trace\":{trace}"));
        }
        out.push_str(&format!(",\"total_ns\":{}", self.total_ns));
        out.push_str(",\"stages\":[");
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_escaped(&mut out, stage.name);
            out.push_str(&format!(
                ",\"count\":{},\"total_ns\":{}}}",
                stage.count, stage.total_ns
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Cache effectiveness counters of an [`EvalSession`] (monotone since the
/// session was created).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests served across all batches.
    pub requests: usize,
    /// Lineage (d-SDNNF) cache hits.
    pub lineage_hits: usize,
    /// Lineage (d-SDNNF) cache misses (compiles).
    pub lineage_misses: usize,
    /// Compiled query machines built (per (query, width) misses).
    pub machines_built: usize,
    /// Tree encodings built (per-instance misses).
    pub encodings_built: usize,
    /// dd-shard lineage roots compiled (SharedDd backend misses).
    pub dd_roots_built: usize,
    /// Threshold requests decided by the float interval pass alone.
    pub float_decisions: usize,
    /// Threshold requests that fell back to exact rational evaluation.
    pub exact_fallbacks: usize,
    /// Requests served by the Karp–Luby estimator (budget-exceeded
    /// degradation under [`SessionBackend::FloatFirst`]).
    pub monte_carlo_fallbacks: usize,
    /// Requests whose worker task panicked ([`EngineError::WorkerPanicked`]).
    /// Every panic is also counted in [`SessionStats::errors`].
    pub worker_panics: usize,
    /// Requests that returned an [`EngineError`] (of any kind) instead of a
    /// result. Previously panicked requests were silently counted as served;
    /// `requests == errors + successes` now holds per batch.
    pub errors: usize,
    /// Fact insertions applied ([`EvalSession::insert_fact`]; rejected
    /// updates don't count).
    pub updates_insert: usize,
    /// Fact retractions applied ([`EvalSession::retract_fact`]).
    pub updates_retract: usize,
    /// Probability overrides applied ([`EvalSession::set_probability`];
    /// zero-dirty no-ops don't count).
    pub updates_set_probability: usize,
    /// Fragments recompiled by lineage compiles that consulted a retained
    /// fragment library — the update path's dirty set, summed.
    pub fragments_recompiled: usize,
    /// Fragments replayed byte-identically from a retained library instead
    /// of being recompiled.
    pub fragments_reused: usize,
    /// Resident lineage artifacts invalidated by structural updates.
    pub lineages_invalidated: usize,
}

/// Artifact sizes collected while serving an [`EvalSession::explain`]
/// request; which fields are populated depends on the backend.
#[derive(Default)]
struct ArtifactStats {
    automaton_states: Option<usize>,
    gates: Option<usize>,
    vtree_nodes: Option<usize>,
    fragments: Option<usize>,
    dd_nodes: Option<usize>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicUsize,
    lineage_hits: AtomicUsize,
    lineage_misses: AtomicUsize,
    machines_built: AtomicUsize,
    encodings_built: AtomicUsize,
    dd_roots_built: AtomicUsize,
    float_decisions: AtomicUsize,
    exact_fallbacks: AtomicUsize,
    monte_carlo_fallbacks: AtomicUsize,
    worker_panics: AtomicUsize,
    errors: AtomicUsize,
    updates_insert: AtomicUsize,
    updates_retract: AtomicUsize,
    updates_set_probability: AtomicUsize,
    fragments_recompiled: AtomicUsize,
    fragments_reused: AtomicUsize,
    lineages_invalidated: AtomicUsize,
}

/// A capacity-capped map with true LRU eviction: every hit refreshes the
/// entry's recency stamp, and inserting past the cap evicts the least
/// recently *used* entry. (The previous version evicted in pure insertion
/// order, so a hot (query, instance) pair registered first was evicted
/// while cold later entries survived — the opposite of what a serving cache
/// wants.) Recency is a monotone stamp per entry; eviction scans for the
/// minimum stamp, which is linear but negligible against the compile work a
/// single eviction implies at the configured cache caps.
struct CacheMap<K: Ord + Clone, V: Clone> {
    map: BTreeMap<K, (V, u64)>,
    stamp: u64,
    cap: usize,
}

impl<K: Ord + Clone, V: Clone> CacheMap<K, V> {
    fn new(cap: usize) -> Self {
        CacheMap {
            map: BTreeMap::new(),
            stamp: 0,
            cap: cap.max(1),
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get_mut(key).map(|(value, last_used)| {
            *last_used = stamp;
            value.clone()
        })
    }

    /// Whether `key` is resident, *without* refreshing its recency stamp —
    /// for observability probes ([`EvalSession::explain`]) that must not
    /// perturb the eviction order they are reporting on.
    fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn insert(&mut self, key: K, value: V) {
        self.stamp += 1;
        self.map.insert(key, (value, self.stamp));
        while self.map.len() > self.cap {
            let coldest = self
                .map
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| k.clone())
                .expect("map is non-empty past the cap");
            self.map.remove(&coldest);
        }
    }

    /// Removes and returns every entry whose key matches `pred` (the
    /// structural-invalidation path: evict all lineages of one instance,
    /// handing their fragment libraries to the stale set for incremental
    /// recompilation).
    fn take_matching(&mut self, pred: impl Fn(&K) -> bool) -> Vec<(K, V)> {
        let keys: Vec<K> = self.map.keys().filter(|k| pred(k)).cloned().collect();
        keys.into_iter()
            .map(|k| {
                let (value, _) = self.map.remove(&k).expect("key just enumerated");
                (k, value)
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn capacity(&self) -> usize {
        self.cap
    }
}

/// Point-in-time occupancy of an [`EvalSession`]'s cache layers, from
/// [`EvalSession::cache_occupancy`]. Entry counts never exceed the matching
/// capacity (the caches evict on insert past the cap); the encoding and dd
/// layers are per registered instance and uncapped, so they report how many
/// instances have materialized that state so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheOccupancy {
    /// Compiled lineages resident in the (query, instance) cache.
    pub lineage_entries: usize,
    /// Capacity of the lineage cache ([`EngineConfig::lineage_cache_cap`]).
    pub lineage_capacity: usize,
    /// Compiled query machines resident in the (query, width) cache.
    pub machine_entries: usize,
    /// Capacity of the machine cache ([`EngineConfig::query_cache_cap`]).
    pub machine_capacity: usize,
    /// Registered instances whose tree encoding has been built.
    pub encodings: usize,
    /// Registered instances whose dd shard has been seeded
    /// ([`SessionBackend::SharedDd`] only).
    pub dd_shards: usize,
}

/// A dd-engine shard: one manager (pinned to the instance's fact order)
/// plus the root nodes of the query lineages compiled into it so far.
struct DdShard {
    manager: Manager,
    roots: BTreeMap<usize, treelineage_dd::NodeId>,
}

struct InstanceEntry {
    instance: Instance,
    decomposition: TreeDecomposition,
    encoding: Mutex<Option<Arc<TreeEncoding>>>,
    dd: Mutex<Option<DdShard>>,
    /// The session-resident valuation (1/2 per fact at registration),
    /// mutated by [`EvalSession::set_probability`] and kept aligned with the
    /// fact set by insert/retract. Requests still carry their own
    /// valuations; this one is the mutable baseline update-aware callers
    /// read back through [`EvalSession::valuation`].
    valuation: ProbabilityValuation,
    /// Update epoch: 0 at registration, +1 per applied non-no-op update.
    epoch: u64,
    /// The encoding plan update validation checks domain/coverage against,
    /// built lazily at the first structural update. Valid across every
    /// accepted update, because accepted updates preserve the active domain
    /// the plan is pinned to.
    plan: Option<Arc<EncodingPlan>>,
}

/// One resident lineage-cache entry: the artifact plus what incremental
/// recompilation needs — the per-fragment compile library, and the identity
/// of the machine that numbered its gates. Gate ids depend on the machine's
/// memo discovery order, so a library may only be replayed against the
/// *same* machine object; the `Weak` keeps the allocation alive so the
/// pointer comparison cannot be fooled by an ABA reuse.
#[derive(Clone)]
struct CachedLineage {
    artifact: Arc<ParallelDnnf>,
    machine: Weak<Mutex<CompiledQuery>>,
    library: Arc<FragmentLibrary>,
}

/// A long-lived, batch-oriented evaluation session. See the module docs
/// for the cache layers; see [`EngineConfig`] for the knobs.
///
/// Registration takes `&mut self`; the batch methods take `&self` and are
/// internally synchronized, so a server can share one session behind an
/// [`Arc`] and call batches from several threads.
pub struct EvalSession {
    config: EngineConfig,
    backend: SessionBackend,
    instances: Vec<InstanceEntry>,
    queries: Vec<UnionOfConjunctiveQueries>,
    /// Compiled query machines, keyed by (query, alphabet width). The
    /// machine itself is behind a `Mutex` because materializing an
    /// automaton grows its state memo (`&mut`).
    machines: Mutex<MachineCache>,
    /// Compiled lineages, keyed by (query, instance).
    lineages: Mutex<CacheMap<(usize, usize), CachedLineage>>,
    /// Fragment libraries parked by structural invalidation, keyed by the
    /// (query, instance) pair they served. Consumed (one-shot) by the next
    /// lineage miss on the pair: untouched fragments replay byte-identically
    /// and only the dirty ones recompile.
    stale: Mutex<BTreeMap<(usize, usize), CachedLineage>>,
    counters: Counters,
    /// Flight recorder: the N slowest requests past the latency threshold,
    /// sorted slowest-first (see [`EngineConfig::flight_recorder_capacity`]).
    flight: Mutex<Vec<SlowRequest>>,
}

/// Query-machine cache: (query, width) → shared, lockable [`CompiledQuery`].
type MachineCache = CacheMap<(usize, usize), Arc<Mutex<CompiledQuery>>>;

impl EvalSession {
    /// Creates a session over the default [`SessionBackend::Automaton`],
    /// or [`SessionBackend::FloatFirst`] when the config sets
    /// [`EngineConfig::float_first`].
    pub fn new(config: EngineConfig) -> Self {
        let backend = if config.float_first {
            SessionBackend::FloatFirst
        } else {
            SessionBackend::default()
        };
        EvalSession::with_backend(config, backend)
    }

    /// Creates a session serving requests from the given backend.
    pub fn with_backend(config: EngineConfig, backend: SessionBackend) -> Self {
        EvalSession {
            machines: Mutex::new(CacheMap::new(config.query_cache_cap)),
            lineages: Mutex::new(CacheMap::new(config.lineage_cache_cap)),
            stale: Mutex::new(BTreeMap::new()),
            config,
            backend,
            instances: Vec::new(),
            queries: Vec::new(),
            counters: Counters::default(),
            flight: Mutex::new(Vec::new()),
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The backend requests are served from.
    pub fn backend(&self) -> SessionBackend {
        self.backend
    }

    /// Registers an instance, deriving a heuristic tree decomposition of
    /// its Gaifman graph (valid by construction).
    pub fn register_instance(&mut self, instance: Instance) -> InstanceId {
        let (graph, _) = instance.gaifman_graph();
        let (_, td) = treelineage_graph::treewidth::treewidth_upper_bound(&graph);
        self.push_instance(instance, td)
    }

    /// Registers an instance with a known tree decomposition of its Gaifman
    /// graph (validated here once; every later request trusts it).
    pub fn register_instance_with_decomposition(
        &mut self,
        instance: Instance,
        decomposition: TreeDecomposition,
    ) -> Result<InstanceId, EngineError> {
        let (graph, _) = instance.gaifman_graph();
        decomposition
            .validate(&graph)
            .map_err(|e| EngineError::InvalidDecomposition(e.to_string()))?;
        Ok(self.push_instance(instance, decomposition))
    }

    fn push_instance(
        &mut self,
        instance: Instance,
        decomposition: TreeDecomposition,
    ) -> InstanceId {
        let valuation = ProbabilityValuation::all_one_half(&instance);
        self.instances.push(InstanceEntry {
            instance,
            decomposition,
            encoding: Mutex::new(None),
            dd: Mutex::new(None),
            valuation,
            epoch: 0,
            plan: None,
        });
        InstanceId(self.instances.len() - 1)
    }

    /// The registered instance behind a handle.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id.0].instance
    }

    /// Registers a query (idempotent: an equal query returns its existing
    /// handle, so its compile caches are shared).
    pub fn register_query(&mut self, query: UnionOfConjunctiveQueries) -> QueryId {
        if let Some(i) = self.queries.iter().position(|q| *q == query) {
            return QueryId(i);
        }
        self.queries.push(query);
        QueryId(self.queries.len() - 1)
    }

    /// The session's resident valuation for an instance: probability 1/2
    /// per fact at registration, overridden by
    /// [`EvalSession::set_probability`] and kept aligned with the fact set
    /// by insert/retract. Always covers exactly the instance's facts.
    pub fn valuation(&self, id: InstanceId) -> &ProbabilityValuation {
        &self.instances[id.0].valuation
    }

    /// The instance's update epoch: 0 at registration, +1 per applied
    /// non-no-op update. Callers snapshotting derived state across updates
    /// can fold it into their keys.
    pub fn instance_epoch(&self, id: InstanceId) -> u64 {
        self.instances[id.0].epoch
    }

    /// Inserts a fact with the given probability. Structural: the
    /// instance's tree encoding, dd shard and resident lineages are
    /// invalidated, but each invalidated lineage's fragment library is
    /// retained — the next compile of the pair re-encodes, replays every
    /// fragment whose subtree is untouched byte-identically, and recompiles
    /// only the dirty ones (pinned against a cold compile by
    /// `tests/update_differential.rs`).
    ///
    /// The fact must stay inside the pinned active domain and be covered by
    /// a bag of the registered decomposition; see [`UpdateError`] for the
    /// typed rejections. The new fact takes the next dense id (insertion
    /// never renumbers existing facts).
    pub fn insert_fact(
        &mut self,
        instance: InstanceId,
        fact: Fact,
        probability: Rational,
    ) -> Result<UpdateReport, UpdateError> {
        let i = self.check_instance(instance)?;
        let plan = self.plan(i)?;
        validate_insert(
            &self.instances[i].instance,
            Some(plan.as_ref()),
            &fact,
            &probability,
        )?;
        let span = self.update_span(UpdateKind::Insert, i);
        let entry = &mut self.instances[i];
        let id = entry
            .instance
            .add_fact(fact.relation(), fact.arguments().to_vec());
        entry.valuation.push(probability);
        entry.epoch += 1;
        let epoch = entry.epoch;
        let invalidated = self.invalidate_structural(i);
        self.counters.updates_insert.fetch_add(1, Ordering::Relaxed);
        self.record_update(UpdateKind::Insert, invalidated, span);
        Ok(UpdateReport {
            kind: UpdateKind::Insert,
            fact: id,
            moved: None,
            structural: true,
            no_op: false,
            epoch,
            invalidated_lineages: invalidated,
        })
    }

    /// Retracts a fact by id, with swap-remove semantics: the last fact
    /// (and only it) moves into the vacated id, reported as
    /// [`UpdateReport::moved`]. Structural — same invalidation and
    /// fragment-retention behaviour as [`EvalSession::insert_fact`].
    ///
    /// Retracting an absent fact is [`UpdateError::UnknownFact`]; a
    /// retraction that would orphan an element (shrinking the pinned
    /// domain) is [`UpdateError::OrphanedElement`].
    pub fn retract_fact(
        &mut self,
        instance: InstanceId,
        fact: FactId,
    ) -> Result<UpdateReport, UpdateError> {
        let i = self.check_instance(instance)?;
        validate_retract(&self.instances[i].instance, fact, true)?;
        let span = self.update_span(UpdateKind::Retract, i);
        let entry = &mut self.instances[i];
        let (_removed, moved) = entry.instance.remove_fact(fact);
        entry.valuation.swap_remove(fact);
        entry.epoch += 1;
        let epoch = entry.epoch;
        let invalidated = self.invalidate_structural(i);
        self.counters
            .updates_retract
            .fetch_add(1, Ordering::Relaxed);
        self.record_update(UpdateKind::Retract, invalidated, span);
        Ok(UpdateReport {
            kind: UpdateKind::Retract,
            fact,
            moved,
            structural: true,
            no_op: false,
            epoch,
            invalidated_lineages: invalidated,
        })
    }

    /// Overrides one fact's probability in the session's resident
    /// valuation. The cheap tier: the compiled gate stream is
    /// probability-independent, so no encoding, machine, lineage or dd
    /// state is invalidated — later evaluations simply read the new weight.
    /// Overriding with the current value is an accepted zero-dirty no-op
    /// (`no_op: true`, epoch untouched, nothing counted).
    pub fn set_probability(
        &mut self,
        instance: InstanceId,
        fact: FactId,
        probability: Rational,
    ) -> Result<UpdateReport, UpdateError> {
        let i = self.check_instance(instance)?;
        let entry = &mut self.instances[i];
        if fact.0 >= entry.instance.fact_count() {
            return Err(UpdateError::UnknownFact(fact));
        }
        if !probability.is_probability() {
            return Err(UpdateError::InvalidProbability);
        }
        if *entry.valuation.probability(fact) == probability {
            return Ok(UpdateReport {
                kind: UpdateKind::SetProbability,
                fact,
                moved: None,
                structural: false,
                no_op: true,
                epoch: entry.epoch,
                invalidated_lineages: 0,
            });
        }
        let span = self.update_span(UpdateKind::SetProbability, i);
        let entry = &mut self.instances[i];
        entry.valuation.set_probability(fact, probability);
        entry.epoch += 1;
        let epoch = entry.epoch;
        self.counters
            .updates_set_probability
            .fetch_add(1, Ordering::Relaxed);
        self.record_update(UpdateKind::SetProbability, 0, span);
        Ok(UpdateReport {
            kind: UpdateKind::SetProbability,
            fact,
            moved: None,
            structural: false,
            no_op: false,
            epoch,
            invalidated_lineages: 0,
        })
    }

    /// Resolves an instance handle to its index, typed-rejecting handles
    /// from another session.
    fn check_instance(&self, id: InstanceId) -> Result<usize, UpdateError> {
        if id.0 < self.instances.len() {
            Ok(id.0)
        } else {
            Err(UpdateError::UnknownInstance(id.0))
        }
    }

    /// The instance's encoding plan, built at the first structural update
    /// and shared afterwards (accepted updates preserve the domain it is
    /// pinned to).
    fn plan(&mut self, i: usize) -> Result<Arc<EncodingPlan>, UpdateError> {
        if let Some(plan) = &self.instances[i].plan {
            return Ok(plan.clone());
        }
        let entry = &self.instances[i];
        let plan = EncodingPlan::new_trusted(&entry.instance, &entry.decomposition)
            .map_err(|e| UpdateError::Encoding(e.to_string()))?;
        let arc = Arc::new(plan);
        self.instances[i].plan = Some(arc.clone());
        Ok(arc)
    }

    /// Opens the span of one applied update.
    fn update_span(&self, kind: UpdateKind, instance: usize) -> Span {
        let mut span = self.config.telemetry.span("update");
        span.label("kind", kind.as_str());
        span.label("instance", instance);
        span
    }

    /// Closes an update's span and feeds the `updates_total{kind}` counter
    /// and `dirty_lineages` label.
    fn record_update(&self, kind: UpdateKind, invalidated: usize, mut span: Span) {
        span.label("invalidated_lineages", invalidated);
        drop(span);
        self.config
            .telemetry
            .counter_add("updates_total", &[("kind", kind.as_str())], 1);
    }

    /// Invalidates every structural cache layer of one instance: the tree
    /// encoding and dd shard are dropped, and the instance's resident
    /// lineages move to the stale set, keeping their fragment libraries for
    /// incremental recompilation. Returns how many lineages were evicted.
    fn invalidate_structural(&self, i: usize) -> usize {
        let entry = &self.instances[i];
        *lock_recovering(&entry.encoding) = None;
        *lock_recovering(&entry.dd) = None;
        let harvested = lock_recovering(&self.lineages).take_matching(|&(_, inst)| inst == i);
        let count = harvested.len();
        if count > 0 {
            let mut stale = lock_recovering(&self.stale);
            for (key, lineage) in harvested {
                stale.insert(key, lineage);
            }
            self.counters
                .lineages_invalidated
                .fetch_add(count, Ordering::Relaxed);
        }
        count
    }

    /// Snapshot of the session's cache counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            lineage_hits: self.counters.lineage_hits.load(Ordering::Relaxed),
            lineage_misses: self.counters.lineage_misses.load(Ordering::Relaxed),
            machines_built: self.counters.machines_built.load(Ordering::Relaxed),
            encodings_built: self.counters.encodings_built.load(Ordering::Relaxed),
            dd_roots_built: self.counters.dd_roots_built.load(Ordering::Relaxed),
            float_decisions: self.counters.float_decisions.load(Ordering::Relaxed),
            exact_fallbacks: self.counters.exact_fallbacks.load(Ordering::Relaxed),
            monte_carlo_fallbacks: self.counters.monte_carlo_fallbacks.load(Ordering::Relaxed),
            worker_panics: self.counters.worker_panics.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            updates_insert: self.counters.updates_insert.load(Ordering::Relaxed),
            updates_retract: self.counters.updates_retract.load(Ordering::Relaxed),
            updates_set_probability: self
                .counters
                .updates_set_probability
                .load(Ordering::Relaxed),
            fragments_recompiled: self.counters.fragments_recompiled.load(Ordering::Relaxed),
            fragments_reused: self.counters.fragments_reused.load(Ordering::Relaxed),
            lineages_invalidated: self.counters.lineages_invalidated.load(Ordering::Relaxed),
        }
    }

    /// Occupancy and capacity of every cache layer, for capacity planning
    /// (are evictions churning?) and leak spotting.
    pub fn cache_occupancy(&self) -> CacheOccupancy {
        // Guards in a struct literal would live to the end of the whole
        // expression — locking the same cache twice there deadlocks, so
        // each lock is scoped to its own statement.
        let (lineage_entries, lineage_capacity) = {
            let lineages = lock_recovering(&self.lineages);
            (lineages.len(), lineages.capacity())
        };
        let (machine_entries, machine_capacity) = {
            let machines = lock_recovering(&self.machines);
            (machines.len(), machines.capacity())
        };
        CacheOccupancy {
            lineage_entries,
            lineage_capacity,
            machine_entries,
            machine_capacity,
            encodings: self
                .instances
                .iter()
                .filter(|e| lock_recovering(&e.encoding).is_some())
                .count(),
            dd_shards: self
                .instances
                .iter()
                .filter(|e| lock_recovering(&e.dd).is_some())
                .count(),
        }
    }

    /// Store and cache statistics of every seeded dd shard, keyed by the
    /// instance the shard serves. Empty until a [`SessionBackend::SharedDd`]
    /// request first touches an instance.
    pub fn dd_shard_stats(&self) -> Vec<(InstanceId, treelineage_dd::Stats)> {
        self.instances
            .iter()
            .enumerate()
            .filter_map(|(i, entry)| {
                lock_recovering(&entry.dd)
                    .as_ref()
                    .map(|shard| (InstanceId(i), shard.manager.stats()))
            })
            .collect()
    }

    /// The session's full observability surface as one stable
    /// [`MetricsSnapshot`]: the telemetry registry's counters, gauges,
    /// histograms and span aggregates (empty when [`EngineConfig::telemetry`]
    /// is disabled), merged with the always-on session layers — the
    /// [`SessionStats`] counters (as `session_*` counter series), cache
    /// occupancy/capacity gauges, and per-shard dd statistics (labelled by
    /// shard instance id). Export with [`MetricsSnapshot::to_json_lines`] or
    /// [`MetricsSnapshot::to_prometheus`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.config.telemetry.snapshot();
        let stats = self.stats();
        for (name, value) in [
            ("session_requests_total", stats.requests),
            ("session_lineage_hits_total", stats.lineage_hits),
            ("session_lineage_misses_total", stats.lineage_misses),
            ("session_machines_built_total", stats.machines_built),
            ("session_encodings_built_total", stats.encodings_built),
            ("session_dd_roots_built_total", stats.dd_roots_built),
            ("session_float_decisions_total", stats.float_decisions),
            ("session_exact_fallbacks_total", stats.exact_fallbacks),
            (
                "session_monte_carlo_fallbacks_total",
                stats.monte_carlo_fallbacks,
            ),
            ("session_worker_panics_total", stats.worker_panics),
            ("session_errors_total", stats.errors),
            (
                "session_fragments_recompiled_total",
                stats.fragments_recompiled,
            ),
            ("session_fragments_reused_total", stats.fragments_reused),
            (
                "session_lineages_invalidated_total",
                stats.lineages_invalidated,
            ),
        ] {
            snap.push_counter(name, &[], value as u64);
        }
        for (kind, value) in [
            ("insert", stats.updates_insert),
            ("retract", stats.updates_retract),
            ("set_probability", stats.updates_set_probability),
        ] {
            snap.push_counter("session_updates_total", &[("kind", kind)], value as u64);
        }
        let occupancy = self.cache_occupancy();
        for (name, value) in [
            ("lineage_cache_entries", occupancy.lineage_entries),
            ("lineage_cache_capacity", occupancy.lineage_capacity),
            ("query_cache_entries", occupancy.machine_entries),
            ("query_cache_capacity", occupancy.machine_capacity),
            ("instance_encodings", occupancy.encodings),
            ("dd_shards", occupancy.dd_shards),
        ] {
            snap.push_gauge(name, &[], value as i64);
        }
        for (instance, dd_stats) in self.dd_shard_stats() {
            let shard = instance.0.to_string();
            let labels = [("shard", shard.as_str())];
            snap.push_gauge("dd_nodes", &labels, dd_stats.node_count as i64);
            snap.push_gauge(
                "dd_unique_table_len",
                &labels,
                dd_stats.unique_table_len as i64,
            );
            snap.push_gauge("dd_op_cache_len", &labels, dd_stats.op_cache_len as i64);
            snap.push_counter("dd_op_cache_hits_total", &labels, dd_stats.op_cache_hits);
            snap.push_counter(
                "dd_op_cache_misses_total",
                &labels,
                dd_stats.op_cache_misses,
            );
        }
        snap
    }

    /// Evaluates a batch of probability requests. Shared compile work is
    /// deduplicated (each distinct (query, instance) pair compiles at most
    /// once, then hits the session cache on later batches); compiles and
    /// evaluations run concurrently on the configured thread count.
    ///
    /// Always exact — under [`SessionBackend::FloatFirst`] the approximate
    /// tiers serve [`EvalSession::batch_threshold`] and
    /// [`EvalSession::batch_probability_f64`]; a caller asking for the
    /// exact rational gets the exact rational.
    ///
    /// A panic inside one request's evaluation (e.g. a valuation that does
    /// not cover the instance) is contained to that request as
    /// [`EngineError::WorkerPanicked`]; the rest of the batch and the
    /// session itself stay usable.
    pub fn batch_probability(
        &self,
        requests: &[ProbabilityRequest],
    ) -> Vec<Result<Rational, EngineError>> {
        self.counters
            .requests
            .fetch_add(requests.len(), Ordering::Relaxed);
        match self.backend {
            SessionBackend::Automaton | SessionBackend::FloatFirst => {
                let artifacts =
                    self.compile_pairs(requests.iter().map(|r| (r.query.0, r.instance.0)));
                let eval_threads = self.eval_threads(requests.len());
                self.flatten_caught(run_tasks_catching(
                    self.config.threads,
                    requests.len(),
                    &self.config.telemetry,
                    |i| {
                        let started = self.timer();
                        let span = self.request_span("probability");
                        let r = &requests[i];
                        self.check_valuation(r.instance, &r.valuation);
                        let lineage = artifacts[&(r.query.0, r.instance.0)].clone()?;
                        let p = lineage.probability(
                            &|v| r.valuation.probability(FactId(v)).clone(),
                            eval_threads,
                        );
                        self.record_request("probability", DecisionTier::Exact, started, span);
                        Ok(p)
                    },
                ))
            }
            SessionBackend::SharedDd => self.flatten_caught(run_tasks_catching(
                self.config.threads,
                requests.len(),
                &self.config.telemetry,
                |i| {
                    let started = self.timer();
                    let span = self.request_span("probability");
                    let r = &requests[i];
                    self.check_valuation(r.instance, &r.valuation);
                    let p = self.dd_evaluate(r.query.0, r.instance.0, |manager, root| {
                        manager.probability(root, &|v| r.valuation.probability(FactId(v)).clone())
                    })?;
                    self.record_request("probability", DecisionTier::Exact, started, span);
                    Ok(p)
                },
            )),
        }
    }

    /// Asserts that a request's valuation covers its instance. Runs inside
    /// the worker job, so a violation becomes that request's
    /// [`EngineError::WorkerPanicked`] instead of tearing down the batch.
    fn check_valuation(&self, instance: InstanceId, valuation: &ProbabilityValuation) {
        assert_eq!(
            valuation.len(),
            self.instances[instance.0].instance.fact_count(),
            "valuation must cover every fact of the instance"
        );
    }

    /// Converts caught worker panics into per-request typed errors, counting
    /// every panic and every failed request into the session stats (a
    /// panicked request previously counted as served, invisibly).
    fn flatten_caught<T>(
        &self,
        results: Vec<Result<Result<T, EngineError>, String>>,
    ) -> Vec<Result<T, EngineError>> {
        let out: Vec<Result<T, EngineError>> = results
            .into_iter()
            .map(|r| match r {
                Ok(inner) => inner,
                Err(message) => {
                    self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                    Err(EngineError::WorkerPanicked(message))
                }
            })
            .collect();
        self.count_errors(&out);
        out
    }

    /// Counts a finished batch's failed requests into
    /// [`SessionStats::errors`].
    fn count_errors<T>(&self, results: &[Result<T, EngineError>]) {
        let failed = results.iter().filter(|r| r.is_err()).count();
        if failed > 0 {
            self.counters.errors.fetch_add(failed, Ordering::Relaxed);
        }
    }

    /// Starts a per-request latency timer; `None` — and no clock read at
    /// all — when telemetry is disabled.
    fn timer(&self) -> Option<Instant> {
        if self.config.telemetry.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Opens the root span of one request's trace: every span the request
    /// opens afterwards — on this thread or on pool workers that inherit
    /// the context — parents into it, so the whole request renders as one
    /// connected tree in the Chrome-trace export. A no-op guard when
    /// telemetry is disabled.
    fn request_span(&self, kind: &'static str) -> Span {
        let mut span = self.config.telemetry.span_root("request");
        span.label("kind", kind);
        span
    }

    /// Records one served request into the `requests_total{kind,tier}`
    /// counter and the `request_latency_ns{kind,tier}` histogram, closing
    /// its root span (so the span ring sees the finished request) and
    /// feeding the flight recorder.
    fn record_request(
        &self,
        kind: &'static str,
        tier: DecisionTier,
        started: Option<Instant>,
        mut span: Span,
    ) {
        span.label("tier", tier.as_str());
        let trace = span.context().map(|c| c.trace);
        // Close the request span first so the flight recorder's trace
        // lookup below sees it in the ring.
        drop(span);
        if let Some(start) = started {
            let duration_ns = start.elapsed().as_nanos() as u64;
            let labels = [("kind", kind), ("tier", tier.as_str())];
            let telemetry = &self.config.telemetry;
            telemetry.counter_add("requests_total", &labels, 1);
            telemetry.observe_ns("request_latency_ns", &labels, duration_ns);
            if let Some(trace) = trace {
                self.flight_record(kind, tier, duration_ns, trace);
            }
        }
    }

    /// Offers one finished request to the flight recorder: requests at or
    /// above [`EngineConfig::flight_recorder_threshold_ns`] compete for the
    /// [`EngineConfig::flight_recorder_capacity`] slots, slowest kept. The
    /// span subtree is snapshotted from the ring only when the request
    /// actually qualifies, so the fast path never clones events.
    fn flight_record(&self, kind: &'static str, tier: DecisionTier, duration_ns: u64, trace: u64) {
        let capacity = self.config.flight_recorder_capacity;
        if capacity == 0 || duration_ns < self.config.flight_recorder_threshold_ns {
            return;
        }
        {
            let flight = lock_recovering(&self.flight);
            if flight.len() >= capacity
                && flight
                    .last()
                    .is_some_and(|slowest| duration_ns <= slowest.duration_ns)
            {
                return;
            }
        }
        let spans = self.config.telemetry.events_for_trace(trace);
        let mut flight = lock_recovering(&self.flight);
        flight.push(SlowRequest {
            kind,
            tier,
            duration_ns,
            trace,
            spans,
        });
        flight.sort_by_key(|r| std::cmp::Reverse(r.duration_ns));
        flight.truncate(capacity);
    }

    /// The flight recorder's current contents: the slowest requests (at or
    /// above the configured latency threshold) seen so far, slowest first,
    /// each with the full span subtree of its trace. Empty when telemetry
    /// is disabled or no request has crossed the threshold.
    pub fn slow_requests(&self) -> Vec<SlowRequest> {
        lock_recovering(&self.flight).clone()
    }

    /// Evaluates a batch of general weighted-model-count requests. Always
    /// served from the automaton backend's smooth d-SDNNF (one pass per
    /// request), mirroring how the core evaluator routes WMC. Panics are
    /// contained per request as in [`EvalSession::batch_probability`].
    pub fn batch_wmc(&self, requests: &[WmcRequest]) -> Vec<Result<Rational, EngineError>> {
        self.counters
            .requests
            .fetch_add(requests.len(), Ordering::Relaxed);
        let artifacts = self.compile_pairs(requests.iter().map(|r| (r.query.0, r.instance.0)));
        let eval_threads = self.eval_threads(requests.len());
        self.flatten_caught(run_tasks_catching(
            self.config.threads,
            requests.len(),
            &self.config.telemetry,
            |i| {
                let started = self.timer();
                let span = self.request_span("wmc");
                let r = &requests[i];
                let facts = self.instances[r.instance.0].instance.fact_count();
                assert_eq!(
                    r.pos.len(),
                    facts,
                    "pos weights must cover every fact of the instance"
                );
                assert_eq!(
                    r.neg.len(),
                    facts,
                    "neg weights must cover every fact of the instance"
                );
                let lineage = artifacts[&(r.query.0, r.instance.0)].clone()?;
                let w = lineage.wmc(&|v| r.pos[v].clone(), &|v| r.neg[v].clone(), eval_threads);
                self.record_request("wmc", DecisionTier::Exact, started, span);
                Ok(w)
            },
        ))
    }

    /// The float fast-path: evaluates a batch of probability requests with
    /// one certified-interval f64 pass per request, returning the point
    /// estimate (interval midpoint) together with the [`ErrorInterval`]
    /// guaranteed to contain the exact rational answer. The pass is linear
    /// in the circuit size with `f64` gate operations — on eval-bound
    /// workloads this is more than an order of magnitude cheaper than the
    /// exact rational pass (see `benches/approx_eval.rs`).
    ///
    /// Under [`SessionBackend::FloatFirst`], a (query, instance) pair whose
    /// compilation exceeds the state budget degrades to the Karp–Luby
    /// estimator with the session's `(ε, δ)`; its interval is then the
    /// *probabilistic* `(ε, δ)` bound, not a certified enclosure.
    pub fn batch_probability_f64(
        &self,
        requests: &[ProbabilityRequest],
    ) -> Vec<Result<(f64, ErrorInterval), EngineError>> {
        self.counters
            .requests
            .fetch_add(requests.len(), Ordering::Relaxed);
        let artifacts = self.compile_pairs(requests.iter().map(|r| (r.query.0, r.instance.0)));
        let eval_threads = self.eval_threads(requests.len());
        self.flatten_caught(run_tasks_catching(
            self.config.threads,
            requests.len(),
            &self.config.telemetry,
            |i| {
                let started = self.timer();
                let span = self.request_span("probability_f64");
                let r = &requests[i];
                self.check_valuation(r.instance, &r.valuation);
                match &artifacts[&(r.query.0, r.instance.0)] {
                    Ok(lineage) => {
                        let interval = lineage.probability_interval(
                            &|v| ErrorInterval::from_rational(r.valuation.probability(FactId(v))),
                            eval_threads,
                        );
                        self.record_request("probability_f64", DecisionTier::Float, started, span);
                        Ok((interval.midpoint(), interval))
                    }
                    Err(e) => match self.monte_carlo(r, e) {
                        Some(estimate) => {
                            self.record_request(
                                "probability_f64",
                                DecisionTier::MonteCarlo,
                                started,
                                span,
                            );
                            Ok(estimate)
                        }
                        None => Err(e.clone()),
                    },
                }
            },
        ))
    }

    /// Decides a batch of threshold requests, picking the cheapest sound
    /// tier per request (see [`ThresholdRequest`] / [`DecisionTier`]):
    ///
    /// * on [`SessionBackend::FloatFirst`]: the certified f64 interval pass
    ///   decides when the threshold lies strictly outside the interval
    ///   ([`DecisionTier::Float`]); otherwise the request falls back to the
    ///   exact rational pass ([`DecisionTier::Exact`]) — so the decision is
    ///   always *bit-identical* to what an exact backend would return (the
    ///   containment contract `exact ∈ interval` makes the float answer
    ///   sound whenever it is used). Pairs whose compilation blows the
    ///   state budget degrade to Karp–Luby ([`DecisionTier::MonteCarlo`]),
    ///   the only probabilistic tier.
    /// * on the exact backends: every request is decided exactly.
    pub fn batch_threshold(
        &self,
        requests: &[ThresholdRequest],
    ) -> Vec<Result<ThresholdDecision, EngineError>> {
        self.counters
            .requests
            .fetch_add(requests.len(), Ordering::Relaxed);
        if self.backend == SessionBackend::SharedDd {
            return self.flatten_caught(run_tasks_catching(
                self.config.threads,
                requests.len(),
                &self.config.telemetry,
                |i| {
                    let started = self.timer();
                    let span = self.request_span("threshold");
                    let r = &requests[i];
                    self.check_valuation(r.instance, &r.valuation);
                    let exact = self.dd_evaluate(r.query.0, r.instance.0, |manager, root| {
                        manager.probability(root, &|v| r.valuation.probability(FactId(v)).clone())
                    })?;
                    self.counters
                        .exact_fallbacks
                        .fetch_add(1, Ordering::Relaxed);
                    self.record_request("threshold", DecisionTier::Exact, started, span);
                    Ok(Self::exact_decision(&exact, &r.threshold))
                },
            ));
        }
        let float_first = self.backend == SessionBackend::FloatFirst;
        let artifacts = self.compile_pairs(requests.iter().map(|r| (r.query.0, r.instance.0)));
        let eval_threads = self.eval_threads(requests.len());
        self.flatten_caught(run_tasks_catching(
            self.config.threads,
            requests.len(),
            &self.config.telemetry,
            |i| {
                let started = self.timer();
                let span = self.request_span("threshold");
                let r = &requests[i];
                self.check_valuation(r.instance, &r.valuation);
                let lineage = match &artifacts[&(r.query.0, r.instance.0)] {
                    Ok(lineage) => lineage,
                    Err(e) => {
                        let as_probability = ProbabilityRequest {
                            query: r.query,
                            instance: r.instance,
                            valuation: r.valuation.clone(),
                        };
                        return match self.monte_carlo(&as_probability, e) {
                            Some((estimate, interval)) => {
                                self.record_request(
                                    "threshold",
                                    DecisionTier::MonteCarlo,
                                    started,
                                    span,
                                );
                                Ok(ThresholdDecision {
                                    above: estimate > r.threshold.to_f64(),
                                    tier: DecisionTier::MonteCarlo,
                                    interval,
                                })
                            }
                            None => Err(e.clone()),
                        };
                    }
                };
                if float_first {
                    let interval = lineage.probability_interval(
                        &|v| ErrorInterval::from_rational(r.valuation.probability(FactId(v))),
                        eval_threads,
                    );
                    if let Some(order) = interval.compare_threshold(&r.threshold) {
                        self.counters
                            .float_decisions
                            .fetch_add(1, Ordering::Relaxed);
                        self.record_request("threshold", DecisionTier::Float, started, span);
                        return Ok(ThresholdDecision {
                            above: order == std::cmp::Ordering::Greater,
                            tier: DecisionTier::Float,
                            interval,
                        });
                    }
                }
                let exact = lineage.probability(
                    &|v| r.valuation.probability(FactId(v)).clone(),
                    eval_threads,
                );
                self.counters
                    .exact_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
                self.record_request("threshold", DecisionTier::Exact, started, span);
                Ok(Self::exact_decision(&exact, &r.threshold))
            },
        ))
    }

    /// The exact tier's decision for a computed probability.
    fn exact_decision(exact: &Rational, threshold: &Rational) -> ThresholdDecision {
        ThresholdDecision {
            above: exact > threshold,
            tier: DecisionTier::Exact,
            interval: ErrorInterval::from_rational(exact),
        }
    }

    /// The Karp–Luby degradation path: serves a request whose exact
    /// compilation failed on the state budget, when the session is
    /// float-first. Returns `None` when the error is not a budget blowout
    /// or the session is exact-only (the caller then surfaces the original
    /// error). Seeded deterministically per (query, instance) pair.
    fn monte_carlo(
        &self,
        r: &ProbabilityRequest,
        error: &EngineError,
    ) -> Option<(f64, ErrorInterval)> {
        let budget_exceeded = matches!(
            error,
            EngineError::QueryCompile(CompileError::StateBudget { .. })
        );
        let float_first = self.backend == SessionBackend::FloatFirst || self.config.float_first;
        if !budget_exceeded || !float_first {
            return None;
        }
        self.counters
            .monte_carlo_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        let seed = 0x9E37_79B9_7F4A_7C15u64 ^ ((r.query.0 as u64) << 32) ^ r.instance.0 as u64;
        let estimate = karp_luby_probability(
            &self.queries[r.query.0],
            &self.instances[r.instance.0].instance,
            &r.valuation,
            self.config.epsilon,
            self.config.delta,
            seed,
        );
        Some((estimate.estimate, estimate.interval()))
    }

    /// Evaluates a batch of model-count requests (number of satisfying
    /// subinstances over the full fact universe). Duplicated pairs are
    /// computed once.
    pub fn batch_model_count(
        &self,
        requests: &[(QueryId, InstanceId)],
    ) -> Vec<Result<BigUint, EngineError>> {
        self.counters
            .requests
            .fetch_add(requests.len(), Ordering::Relaxed);
        match self.backend {
            SessionBackend::Automaton | SessionBackend::FloatFirst => {
                let artifacts = self.compile_pairs(requests.iter().map(|&(q, i)| (q.0, i.0)));
                let unique: Vec<(usize, usize)> = artifacts.keys().copied().collect();
                let eval_threads = self.eval_threads(unique.len());
                let counts = run_tasks(
                    self.config.threads,
                    unique.len(),
                    &self.config.telemetry,
                    |k| {
                        let started = self.timer();
                        let span = self.request_span("model_count");
                        let count = artifacts[&unique[k]]
                            .clone()
                            .map(|lineage| lineage.model_count(eval_threads));
                        if count.is_ok() {
                            self.record_request("model_count", DecisionTier::Exact, started, span);
                        }
                        count
                    },
                );
                let by_pair: BTreeMap<(usize, usize), Result<BigUint, EngineError>> =
                    unique.into_iter().zip(counts).collect();
                let out: Vec<Result<BigUint, EngineError>> = requests
                    .iter()
                    .map(|&(q, i)| by_pair[&(q.0, i.0)].clone())
                    .collect();
                self.count_errors(&out);
                out
            }
            SessionBackend::SharedDd => {
                // Dedup here too: identical pairs would otherwise re-run
                // the count serialized on the same shard lock.
                let unique: Vec<(usize, usize)> = requests
                    .iter()
                    .map(|&(q, i)| (q.0, i.0))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                let counts = run_tasks(
                    self.config.threads,
                    unique.len(),
                    &self.config.telemetry,
                    |k| {
                        let started = self.timer();
                        let span = self.request_span("model_count");
                        let (q, i) = unique[k];
                        let count =
                            self.dd_evaluate(q, i, |manager, root| manager.count_models(root));
                        if count.is_ok() {
                            self.record_request("model_count", DecisionTier::Exact, started, span);
                        }
                        count
                    },
                );
                let by_pair: BTreeMap<(usize, usize), Result<BigUint, EngineError>> =
                    unique.into_iter().zip(counts).collect();
                let out: Vec<Result<BigUint, EngineError>> = requests
                    .iter()
                    .map(|&(q, i)| by_pair[&(q.0, i.0)].clone())
                    .collect();
                self.count_errors(&out);
                out
            }
        }
    }

    /// Serves one probability request on the caller's thread and reports
    /// *how*: backend and tier, what each cache layer contributed, compiled
    /// artifact sizes, and per-stage durations aggregated from the
    /// request's own trace (empty when telemetry is disabled). Unlike the
    /// batch methods, a malformed request (unknown handle, short valuation)
    /// is a typed [`EngineError::InvalidRequest`], not a worker panic.
    ///
    /// The request is a real one — it counts into [`SessionStats`] and the
    /// `requests_total{kind="explain"}` series, warms the same caches, and
    /// is served through the same tier policy as
    /// [`EvalSession::batch_probability_f64`] (float-first backends answer
    /// from the certified interval pass; exact backends exactly). The
    /// cache-state fields report residency *before* this request ran.
    pub fn explain(&self, request: &ProbabilityRequest) -> Result<ExplainReport, EngineError> {
        let q = request.query.0;
        let i = request.instance.0;
        if q >= self.queries.len() {
            return Err(EngineError::InvalidRequest(format!(
                "unknown query handle {q} ({} registered)",
                self.queries.len()
            )));
        }
        let Some(entry) = self.instances.get(i) else {
            return Err(EngineError::InvalidRequest(format!(
                "unknown instance handle {i} ({} registered)",
                self.instances.len()
            )));
        };
        if request.valuation.len() != entry.instance.fact_count() {
            return Err(EngineError::InvalidRequest(format!(
                "valuation covers {} facts but instance {i} has {}",
                request.valuation.len(),
                entry.instance.fact_count()
            )));
        }
        // Probe cache residency non-mutatingly, before serving warms the
        // layers — the report explains what the request *found*.
        let encoding_cached = lock_recovering(&entry.encoding).is_some();
        let width = lock_recovering(&entry.encoding)
            .as_ref()
            .map(|e| e.alphabet().width());
        let machine_cached =
            width.is_some_and(|w| lock_recovering(&self.machines).contains(&(q, w)));
        let lineage_cached = match self.backend {
            SessionBackend::SharedDd => lock_recovering(&entry.dd)
                .as_ref()
                .is_some_and(|shard| shard.roots.contains_key(&q)),
            SessionBackend::Automaton | SessionBackend::FloatFirst => {
                lock_recovering(&self.lineages).contains(&(q, i))
            }
        };
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let started = self.timer();
        let span = self.request_span("explain");
        let trace = span.context().map(|c| c.trace);
        let (tier, estimate, interval_width, artifact) = match self.explain_serve(request) {
            Ok(served) => served,
            Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                drop(span);
                return Err(e);
            }
        };
        self.record_request("explain", tier, started, span);
        let events = match trace {
            Some(t) => self.config.telemetry.events_for_trace(t),
            None => Vec::new(),
        };
        let total_ns = events
            .iter()
            .filter(|e| e.name == "request")
            .map(|e| e.duration_ns)
            .max()
            .unwrap_or(0);
        let mut by_stage: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for event in &events {
            if event.name == "request" {
                continue;
            }
            let slot = by_stage.entry(event.name).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += event.duration_ns;
        }
        let stages = by_stage
            .into_iter()
            .map(|(name, (count, total_ns))| StageTiming {
                name,
                count,
                total_ns,
            })
            .collect();
        Ok(ExplainReport {
            backend: self.backend.as_str(),
            tier,
            estimate,
            interval_width,
            encoding_cached,
            machine_cached,
            lineage_cached,
            automaton_states: artifact.automaton_states,
            gates: artifact.gates,
            vtree_nodes: artifact.vtree_nodes,
            fragments: artifact.fragments,
            dd_nodes: artifact.dd_nodes,
            trace,
            total_ns,
            stages,
        })
    }

    /// The serving half of [`EvalSession::explain`]: answers the request
    /// through the backend's usual tier policy and collects artifact sizes.
    /// Runs with the request span open on the caller's stack, so every
    /// compile/eval span parents into the request's trace.
    fn explain_serve(
        &self,
        r: &ProbabilityRequest,
    ) -> Result<(DecisionTier, f64, f64, ArtifactStats), EngineError> {
        let q = r.query.0;
        let i = r.instance.0;
        match self.backend {
            SessionBackend::SharedDd => {
                let (p, nodes) = self.dd_evaluate(q, i, |manager, root| {
                    (
                        manager.probability(root, &|v| r.valuation.probability(FactId(v)).clone()),
                        manager.stats().node_count,
                    )
                })?;
                let artifact = ArtifactStats {
                    dd_nodes: Some(nodes),
                    ..ArtifactStats::default()
                };
                Ok((DecisionTier::Exact, p.to_f64(), 0.0, artifact))
            }
            SessionBackend::Automaton | SessionBackend::FloatFirst => {
                let lineage = match self.lineage(q, i, self.config.threads) {
                    Ok(lineage) => lineage,
                    Err(e) => {
                        return match self.monte_carlo(r, &e) {
                            Some((estimate, interval)) => Ok((
                                DecisionTier::MonteCarlo,
                                estimate,
                                interval.width(),
                                ArtifactStats::default(),
                            )),
                            None => Err(e),
                        };
                    }
                };
                let mut artifact = ArtifactStats {
                    gates: Some(lineage.size()),
                    vtree_nodes: Some(lineage.structured().vtree().node_count()),
                    fragments: Some(lineage.partition().fragments().len()),
                    ..ArtifactStats::default()
                };
                // The machine is resident after `lineage` succeeded; report
                // its deterministic-state memo without rematerializing.
                if let Some(w) = lock_recovering(&self.instances[i].encoding)
                    .as_ref()
                    .map(|e| e.alphabet().width())
                {
                    if let Some(machine) = lock_recovering(&self.machines).get(&(q, w)) {
                        artifact.automaton_states = Some(lock_recovering(&machine).state_count());
                    }
                }
                if self.backend == SessionBackend::FloatFirst {
                    let interval = lineage.probability_interval(
                        &|v| ErrorInterval::from_rational(r.valuation.probability(FactId(v))),
                        self.config.threads,
                    );
                    Ok((
                        DecisionTier::Float,
                        interval.midpoint(),
                        interval.width(),
                        artifact,
                    ))
                } else {
                    let p = lineage.probability(
                        &|v| r.valuation.probability(FactId(v)).clone(),
                        self.config.threads,
                    );
                    Ok((DecisionTier::Exact, p.to_f64(), 0.0, artifact))
                }
            }
        }
    }

    /// Compiles (or fetches) the lineage of every distinct (query,
    /// instance) pair of a batch, in parallel across pairs. Inner subtree
    /// parallelism is enabled only when the batch has a single pair —
    /// otherwise the pair-level parallelism already saturates the pool.
    fn compile_pairs(
        &self,
        pairs: impl Iterator<Item = (usize, usize)>,
    ) -> BTreeMap<(usize, usize), Result<Arc<ParallelDnnf>, EngineError>> {
        let unique: Vec<(usize, usize)> = pairs.collect::<BTreeSet<_>>().into_iter().collect();
        let inner_threads = self.eval_threads(unique.len());
        let compiled = run_tasks(
            self.config.threads,
            unique.len(),
            &self.config.telemetry,
            |k| {
                // One span per pair: a cold compile's encode/compile spans
                // all parent under it (joining the spawning request's trace
                // via the inherited context), instead of floating as roots.
                let mut span = self.config.telemetry.span("compile_pair");
                span.label("query", unique[k].0);
                span.label("instance", unique[k].1);
                self.lineage(unique[k].0, unique[k].1, inner_threads)
            },
        );
        unique.into_iter().zip(compiled).collect()
    }

    /// Inner (per-task) thread count: full fan-out for a lone task, no
    /// nesting once the task set itself saturates the pool.
    fn eval_threads(&self, task_count: usize) -> usize {
        if task_count <= 1 {
            self.config.threads
        } else {
            1
        }
    }

    /// The lineage d-SDNNF of (query, instance), through the session
    /// caches. Concurrent misses on the same pair may compile twice; the
    /// construction is deterministic, so both results are identical and
    /// either may be cached. The fragment *plan* always uses the session's
    /// full thread count (so cached artifacts carry the partition later
    /// fragment-parallel evaluations need) while `pool_threads` bounds the
    /// workers this particular compile may spawn — 1 when the batch itself
    /// already saturates the pool.
    fn lineage(
        &self,
        query: usize,
        instance: usize,
        pool_threads: usize,
    ) -> Result<Arc<ParallelDnnf>, EngineError> {
        if let Some(hit) = lock_recovering(&self.lineages).get(&(query, instance)) {
            self.counters.lineage_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.artifact);
        }
        self.counters.lineage_misses.fetch_add(1, Ordering::Relaxed);
        let encoding = self.encoding(instance)?;
        let machine = self.machine(query, encoding.alphabet().width())?;
        let automaton = lock_recovering(&machine)
            .automaton_for(encoding.tree())
            .map_err(EngineError::QueryCompile)?;
        // A structural update may have parked this pair's fragment library.
        // Gate numbering depends on the machine's memo history, so the
        // library replays only against the machine object that built it —
        // anything else (an evicted-and-rebuilt machine) compiles cold.
        let previous = lock_recovering(&self.stale)
            .remove(&(query, instance))
            .filter(|parked| Weak::as_ptr(&parked.machine) == Arc::as_ptr(&machine));
        let compiled = compile_with_pool_cached(
            &automaton,
            encoding.tree(),
            &self.config,
            pool_threads,
            previous.as_ref().map(|parked| parked.library.as_ref()),
        )
        .map_err(|e| EngineError::Provenance(e.to_string()))?;
        if previous.is_some() {
            let stats = compiled.stats;
            self.counters
                .fragments_recompiled
                .fetch_add(stats.recompiled, Ordering::Relaxed);
            self.counters
                .fragments_reused
                .fetch_add(stats.reused, Ordering::Relaxed);
            let telemetry = &self.config.telemetry;
            telemetry.gauge_set("dirty_fragments", &[], stats.recompiled as i64);
            telemetry.counter_add("fragments_recompiled_total", &[], stats.recompiled as u64);
        }
        let arc = Arc::new(compiled.artifact);
        lock_recovering(&self.lineages).insert(
            (query, instance),
            CachedLineage {
                artifact: arc.clone(),
                machine: Arc::downgrade(&machine),
                library: Arc::new(compiled.library),
            },
        );
        Ok(arc)
    }

    /// The cached lineage d-SDNNF of a (query, instance) pair through the
    /// session caches — the incremental path's artifact, for callers that
    /// want the circuit itself (the update differential suite, benches)
    /// rather than an answer. Compiles on miss like any request would.
    pub fn lineage_artifact(
        &self,
        query: QueryId,
        instance: InstanceId,
    ) -> Result<Arc<ParallelDnnf>, EngineError> {
        if query.0 >= self.queries.len() {
            return Err(EngineError::InvalidRequest(format!(
                "unknown query handle {} ({} registered)",
                query.0,
                self.queries.len()
            )));
        }
        if instance.0 >= self.instances.len() {
            return Err(EngineError::InvalidRequest(format!(
                "unknown instance handle {} ({} registered)",
                instance.0,
                self.instances.len()
            )));
        }
        self.lineage(query.0, instance.0, self.config.threads)
    }

    /// The byte-identity oracle behind the update differential suite (and
    /// the cold comparator of the `update_throughput` bench): compiles the
    /// pair's lineage from scratch — fresh tree encoding, every fragment
    /// recompiled, no lineage-cache read or write — through the *same*
    /// cached query machine the incremental path uses. Gate numbering
    /// depends on the machine's memo history, so byte-identity of
    /// incremental against cold is meaningful exactly when both run through
    /// one machine; a fresh session would number states differently.
    pub fn cold_lineage(
        &self,
        query: QueryId,
        instance: InstanceId,
    ) -> Result<ParallelDnnf, EngineError> {
        if query.0 >= self.queries.len() || instance.0 >= self.instances.len() {
            return Err(EngineError::InvalidRequest(
                "unknown query or instance handle".to_string(),
            ));
        }
        let entry = &self.instances[instance.0];
        let encoding = treelineage_encoding::encode_traced(
            &entry.instance,
            &entry.decomposition,
            &self.config.telemetry,
        )
        .map_err(EngineError::Encoding)?;
        let machine = self.machine(query.0, encoding.alphabet().width())?;
        let automaton = lock_recovering(&machine)
            .automaton_for(encoding.tree())
            .map_err(EngineError::QueryCompile)?;
        crate::parallel::compile_with_pool(
            &automaton,
            encoding.tree(),
            &self.config,
            self.config.threads,
        )
        .map_err(|e| EngineError::Provenance(e.to_string()))
    }

    /// The instance's tree encoding, built on first use.
    fn encoding(&self, instance: usize) -> Result<Arc<TreeEncoding>, EngineError> {
        let entry = &self.instances[instance];
        let mut slot = lock_recovering(&entry.encoding);
        if let Some(encoding) = slot.as_ref() {
            return Ok(encoding.clone());
        }
        self.counters
            .encodings_built
            .fetch_add(1, Ordering::Relaxed);
        // Trusted: the decomposition was validated (or is valid by
        // construction) at registration.
        let encoding = treelineage_encoding::encode_traced(
            &entry.instance,
            &entry.decomposition,
            &self.config.telemetry,
        )
        .map_err(EngineError::Encoding)?;
        let arc = Arc::new(encoding);
        *slot = Some(arc.clone());
        Ok(arc)
    }

    /// The compiled query machine for (query, width), built on first use.
    /// The machine's own deterministic-state memo persists across every
    /// instance of that width.
    fn machine(
        &self,
        query: usize,
        width: usize,
    ) -> Result<Arc<Mutex<CompiledQuery>>, EngineError> {
        if let Some(hit) = lock_recovering(&self.machines).get(&(query, width)) {
            return Ok(hit);
        }
        self.counters.machines_built.fetch_add(1, Ordering::Relaxed);
        let alphabet =
            treelineage_encoding::EncodingAlphabet::new(self.queries[query].signature(), width)
                .map_err(|e| EngineError::Encoding(EncodingError::Alphabet(e)))?;
        let options = CompileOptions {
            state_budget: self.config.state_budget,
            telemetry: self.config.telemetry.clone(),
        };
        let machine = compile_ucq(&self.queries[query], &alphabet, options)
            .map_err(EngineError::QueryCompile)?;
        let arc = Arc::new(Mutex::new(machine));
        lock_recovering(&self.machines).insert((query, width), arc.clone());
        Ok(arc)
    }

    /// Runs `eval` on the (query, instance) root in the instance's dd
    /// shard, compiling the lineage into the shard on first use. The shard
    /// lock is held for the duration — contention is per instance, not per
    /// session.
    fn dd_evaluate<T>(
        &self,
        query: usize,
        instance: usize,
        eval: impl FnOnce(&Manager, treelineage_dd::NodeId) -> T,
    ) -> Result<T, EngineError> {
        let entry = &self.instances[instance];
        let mut slot = lock_recovering(&entry.dd);
        let shard = slot.get_or_insert_with(|| {
            let mut order =
                variable_order_from_decomposition(&entry.instance, &entry.decomposition);
            let present: BTreeSet<usize> = order.iter().copied().collect();
            for f in entry.instance.fact_ids() {
                if !present.contains(&f.0) {
                    order.push(f.0);
                }
            }
            DdShard {
                manager: Manager::new(order),
                roots: BTreeMap::new(),
            }
        });
        let root = match shard.roots.get(&query) {
            Some(&root) => {
                self.counters.lineage_hits.fetch_add(1, Ordering::Relaxed);
                root
            }
            None => {
                self.counters.lineage_misses.fetch_add(1, Ordering::Relaxed);
                self.counters.dd_roots_built.fetch_add(1, Ordering::Relaxed);
                let circuit = match_circuit(&self.queries[query], &entry.instance);
                let root = shard.manager.compile_circuit(&circuit);
                shard.roots.insert(query, root);
                root
            }
        };
        Ok(eval(&shard.manager, root))
    }
}

/// The monotone lineage circuit of the query on the instance: the
/// disjunction over matches of the conjunction of their facts (the same
/// circuit `treelineage-core`'s `LineageBuilder::circuit` builds).
fn match_circuit(
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
) -> treelineage_circuit::Circuit {
    use treelineage_circuit::{Circuit, GateId};
    let mut circuit = Circuit::new();
    let matches = matching::all_matches(query, instance);
    let mut disjuncts: Vec<GateId> = Vec::with_capacity(matches.len());
    for m in &matches {
        let conj: Vec<GateId> = m.iter().map(|f| circuit.var(f.0)).collect();
        let gate = if conj.len() == 1 {
            conj[0]
        } else {
            circuit.and(conj)
        };
        disjuncts.push(gate);
    }
    let output = match disjuncts.len() {
        0 => circuit.constant(false),
        1 => disjuncts[0],
        _ => circuit.or(disjuncts),
    };
    circuit.set_output(output);
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_instance::Signature;
    use treelineage_query::parse_query;

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    fn chain(n: usize) -> Instance {
        let mut inst = Instance::new(rst());
        for i in 0..n as u64 {
            inst.add_fact_by_name("R", &[i]);
            inst.add_fact_by_name("S", &[i, i + 1]);
            inst.add_fact_by_name("T", &[i + 1]);
        }
        inst
    }

    fn session_with(backend: SessionBackend) -> (EvalSession, QueryId, InstanceId) {
        let mut session = EvalSession::with_backend(EngineConfig::with_threads(2), backend);
        let q = session.register_query(parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap());
        let i = session.register_instance(chain(4));
        (session, q, i)
    }

    #[test]
    fn batches_agree_across_backends_and_hit_the_caches() {
        let (auto, q, i) = session_with(SessionBackend::Automaton);
        let (dd, q2, i2) = session_with(SessionBackend::SharedDd);
        let valuation =
            ProbabilityValuation::uniform(auto.instance(i), Rational::from_ratio_u64(1, 3));
        let requests: Vec<ProbabilityRequest> = (0..6)
            .map(|_| ProbabilityRequest {
                query: q,
                instance: i,
                valuation: valuation.clone(),
            })
            .collect();
        let got_auto = auto.batch_probability(&requests);
        let requests_dd: Vec<ProbabilityRequest> = requests
            .iter()
            .map(|r| ProbabilityRequest {
                query: q2,
                instance: i2,
                ..r.clone()
            })
            .collect();
        let got_dd = dd.batch_probability(&requests_dd);
        assert_eq!(got_auto, got_dd);
        assert!(got_auto.iter().all(|r| r == &got_auto[0]));
        // Six requests, one distinct pair: exactly one compile each.
        assert_eq!(auto.stats().lineage_misses, 1);
        assert_eq!(dd.stats().dd_roots_built, 1);
        // Second batch: pure cache hits.
        let again = auto.batch_probability(&requests);
        assert_eq!(again, got_auto);
        assert_eq!(auto.stats().lineage_misses, 1);
        assert!(auto.stats().lineage_hits >= 1);
    }

    #[test]
    fn model_counts_match_across_backends() {
        let (auto, q, i) = session_with(SessionBackend::Automaton);
        let (dd, q2, i2) = session_with(SessionBackend::SharedDd);
        let a = auto.batch_model_count(&[(q, i), (q, i)]);
        let d = dd.batch_model_count(&[(q2, i2)]);
        assert_eq!(a[0], a[1]);
        assert_eq!(a[0], d[0]);
    }

    #[test]
    fn wmc_batches_with_general_weights() {
        let (session, q, i) = session_with(SessionBackend::Automaton);
        let n = session.instance(i).fact_count();
        let pos: Vec<Rational> = (0..n)
            .map(|f| Rational::from_ratio_u64(f as u64 + 2, 3))
            .collect();
        let neg: Vec<Rational> = (0..n)
            .map(|f| Rational::from_ratio_u64(1, f as u64 + 1))
            .collect();
        let got = session.batch_wmc(&[WmcRequest {
            query: q,
            instance: i,
            pos: pos.clone(),
            neg: neg.clone(),
        }]);
        // pos = neg = 1 counts models.
        let ones: Vec<Rational> = (0..n).map(|_| Rational::one()).collect();
        let counts = session.batch_wmc(&[WmcRequest {
            query: q,
            instance: i,
            pos: ones.clone(),
            neg: ones,
        }]);
        let models = session.batch_model_count(&[(q, i)]);
        assert_eq!(
            counts[0].clone().unwrap(),
            Rational::from_biguint(models[0].clone().unwrap())
        );
        assert!(got[0].is_ok());
    }

    #[test]
    fn queries_are_deduplicated_and_caches_capped() {
        let mut session = EvalSession::new(EngineConfig {
            lineage_cache_cap: 1,
            ..EngineConfig::default()
        });
        let q1 = session.register_query(parse_query(&rst(), "R(x)").unwrap());
        let q2 = session.register_query(parse_query(&rst(), "R(x)").unwrap());
        assert_eq!(q1, q2);
        let q3 = session.register_query(parse_query(&rst(), "T(x)").unwrap());
        assert_ne!(q1, q3);
        let i = session.register_instance(chain(2));
        // Two pairs through a cap-1 cache: second batch of the first pair
        // must recompile (evicted), and results must still be identical.
        let first = session.batch_model_count(&[(q1, i)]);
        let _ = session.batch_model_count(&[(q3, i)]);
        let second = session.batch_model_count(&[(q1, i)]);
        assert_eq!(first, second);
        assert_eq!(session.stats().lineage_misses, 3);
    }

    #[test]
    fn invalid_decomposition_is_rejected_at_registration() {
        let mut session = EvalSession::new(EngineConfig::default());
        let result =
            session.register_instance_with_decomposition(chain(2), TreeDecomposition::new());
        assert!(matches!(result, Err(EngineError::InvalidDecomposition(_))));
    }

    #[test]
    fn lru_cache_keeps_hot_entries_across_churn() {
        // A repeatedly-hit entry must survive cap-sized churn of cold
        // entries (the old insertion-order eviction dropped it first).
        let mut cache: CacheMap<usize, usize> = CacheMap::new(3);
        cache.insert(0, 100); // the hot entry, registered first
        for cold in 1..20 {
            cache.insert(cold, cold);
            assert_eq!(cache.get(&0), Some(100), "hot entry evicted at {cold}");
        }
        // The cold entries churned: only the most recent survive.
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.get(&19), Some(19));
    }

    #[test]
    fn panicking_request_leaves_session_usable() {
        let (session, q, i) = session_with(SessionBackend::Automaton);
        let good = ProbabilityValuation::uniform(session.instance(i), Rational::one_half());
        // A valuation over the wrong instance: too short, so the worker
        // task serving this request panics on the coverage assertion.
        let bad = ProbabilityValuation::uniform(&chain(1), Rational::one_half());
        let mut requests: Vec<ProbabilityRequest> = (0..4)
            .map(|_| ProbabilityRequest {
                query: q,
                instance: i,
                valuation: good.clone(),
            })
            .collect();
        requests[2].valuation = bad;
        let results = session.batch_probability(&requests);
        assert!(matches!(results[2], Err(EngineError::WorkerPanicked(_))));
        for (k, r) in results.iter().enumerate() {
            if k != 2 {
                assert!(r.is_ok(), "request {k} should have survived");
            }
        }
        // The panic is visible in the stats: one panicked request, one
        // errored request (previously it counted as served, invisibly).
        assert_eq!(session.stats().worker_panics, 1);
        assert_eq!(session.stats().errors, 1);
        // The session (its caches, locks, and pool) stays fully usable.
        let clean = session.batch_probability(&requests[..2]);
        assert_eq!(clean[0], results[0]);
        assert_eq!(clean[1], results[1]);
        // The clean batch adds no panics and no errors.
        assert_eq!(session.stats().worker_panics, 1);
        assert_eq!(session.stats().errors, 1);
    }

    #[test]
    fn float_interval_contains_exact_probability() {
        let (session, q, i) = session_with(SessionBackend::FloatFirst);
        let n = session.instance(i).fact_count();
        let probs: Vec<Rational> = (0..n)
            .map(|f| Rational::from_ratio_u64(1, (f as u64 % 3) + 2))
            .collect();
        let valuation = ProbabilityValuation::from_probabilities(session.instance(i), probs);
        let request = ProbabilityRequest {
            query: q,
            instance: i,
            valuation,
        };
        let exact = session.batch_probability(std::slice::from_ref(&request))[0]
            .clone()
            .unwrap();
        let (estimate, interval) = session.batch_probability_f64(std::slice::from_ref(&request))[0]
            .clone()
            .unwrap();
        assert!(interval.contains(&exact));
        assert!(interval.contains_f64(estimate));
        assert!(interval.width() < 1e-12);
    }

    #[test]
    fn float_first_threshold_decisions_match_exact_backend() {
        let (float, qf, inf) = session_with(SessionBackend::FloatFirst);
        let (exact, qe, ine) = session_with(SessionBackend::Automaton);
        let valuation =
            ProbabilityValuation::uniform(float.instance(inf), Rational::from_ratio_u64(1, 3));
        let p = exact.batch_probability(&[ProbabilityRequest {
            query: qe,
            instance: ine,
            valuation: valuation.clone(),
        }])[0]
            .clone()
            .unwrap();
        // Thresholds: clearly below, clearly above, and exactly the answer
        // (which always lands inside the interval → exact fallback).
        let thresholds = [
            Rational::from_ratio_u64(1, 1000),
            Rational::from_ratio_u64(999, 1000),
            p.clone(),
        ];
        let make = |q: QueryId, i: InstanceId| -> Vec<ThresholdRequest> {
            thresholds
                .iter()
                .map(|t| ThresholdRequest {
                    query: q,
                    instance: i,
                    valuation: valuation.clone(),
                    threshold: t.clone(),
                })
                .collect()
        };
        let fast = float.batch_threshold(&make(qf, inf));
        let slow = exact.batch_threshold(&make(qe, ine));
        for (f, s) in fast.iter().zip(&slow) {
            // Bit-identical decisions regardless of which tier answered.
            assert_eq!(f.as_ref().unwrap().above, s.as_ref().unwrap().above);
        }
        // The clear thresholds were served from the float pass; the
        // exact-answer threshold fell back to the exact tier.
        assert_eq!(fast[0].as_ref().unwrap().tier, DecisionTier::Float);
        assert_eq!(fast[1].as_ref().unwrap().tier, DecisionTier::Float);
        assert_eq!(fast[2].as_ref().unwrap().tier, DecisionTier::Exact);
        assert_eq!(float.stats().float_decisions, 2);
        assert_eq!(float.stats().exact_fallbacks, 1);
        // The exact backend only has the exact tier.
        assert!(slow
            .iter()
            .all(|d| d.as_ref().unwrap().tier == DecisionTier::Exact));
    }

    #[test]
    fn budget_blowout_degrades_to_monte_carlo_under_float_first() {
        // A state budget of 1 is unsatisfiable for any real query: the
        // exact pipeline fails with StateBudget, and the float-first
        // session degrades to Karp–Luby instead of surfacing the error.
        let config = EngineConfig {
            state_budget: 1,
            epsilon: 0.02,
            delta: 0.02,
            ..EngineConfig::default()
        };
        let mut session = EvalSession::with_backend(config, SessionBackend::FloatFirst);
        let q = session.register_query(parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap());
        let i = session.register_instance(chain(2));
        let valuation =
            ProbabilityValuation::uniform(session.instance(i), Rational::from_ratio_u64(1, 3));
        let request = ProbabilityRequest {
            query: q,
            instance: i,
            valuation: valuation.clone(),
        };
        // The exact API still surfaces the compile error...
        let exact_result = session.batch_probability(std::slice::from_ref(&request));
        assert!(matches!(
            exact_result[0],
            Err(EngineError::QueryCompile(CompileError::StateBudget { .. }))
        ));
        // ...but the approximate APIs serve the request.
        let (estimate, interval) = session.batch_probability_f64(std::slice::from_ref(&request))[0]
            .clone()
            .unwrap();
        assert!(interval.contains_f64(estimate));
        assert!(session.stats().monte_carlo_fallbacks >= 1);
        let decision = session.batch_threshold(&[ThresholdRequest {
            query: q,
            instance: i,
            valuation,
            threshold: Rational::one_half(),
        }])[0]
            .clone()
            .unwrap();
        assert_eq!(decision.tier, DecisionTier::MonteCarlo);
        // Sanity: the estimate agrees with an exact session on the same
        // (query, instance, weights) triple.
        let exact_session = {
            let mut s = EvalSession::new(EngineConfig::default());
            let q = s.register_query(parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap());
            let i = s.register_instance(chain(2));
            let v = ProbabilityValuation::uniform(s.instance(i), Rational::from_ratio_u64(1, 3));
            s.batch_probability(&[ProbabilityRequest {
                query: q,
                instance: i,
                valuation: v,
            }])[0]
                .clone()
                .unwrap()
        };
        let exact_f = exact_session.to_f64();
        assert!(
            (estimate - exact_f).abs() <= 0.02 * exact_f,
            "Karp–Luby estimate {estimate} vs exact {exact_f}"
        );
        assert_eq!(decision.above, exact_f > 0.5);
    }

    fn traced_session(backend: SessionBackend) -> (EvalSession, QueryId, InstanceId) {
        let config = EngineConfig {
            telemetry: treelineage_telemetry::Telemetry::enabled(),
            ..EngineConfig::with_threads(2)
        };
        let mut session = EvalSession::with_backend(config, backend);
        let q = session.register_query(parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap());
        let i = session.register_instance(chain(4));
        (session, q, i)
    }

    #[test]
    fn explain_reports_caches_tier_and_stages() {
        let (session, q, i) = traced_session(SessionBackend::Automaton);
        let valuation =
            ProbabilityValuation::uniform(session.instance(i), Rational::from_ratio_u64(1, 3));
        let request = ProbabilityRequest {
            query: q,
            instance: i,
            valuation,
        };
        let cold = session.explain(&request).unwrap();
        assert_eq!(cold.backend, "automaton");
        assert_eq!(cold.tier, DecisionTier::Exact);
        assert!(!cold.encoding_cached && !cold.machine_cached && !cold.lineage_cached);
        assert!(cold.gates.unwrap() > 0);
        assert!(cold.vtree_nodes.unwrap() > 0);
        assert!(cold.automaton_states.unwrap() > 0);
        assert!(cold.fragments.is_some() && cold.dd_nodes.is_none());
        assert_eq!(cold.interval_width, 0.0);
        // The request's own trace saw the cold compile stages.
        assert!(cold.trace.is_some());
        assert!(cold.total_ns > 0);
        let stage_names: Vec<&str> = cold.stages.iter().map(|s| s.name).collect();
        assert!(
            stage_names.contains(&"encode") && stage_names.contains(&"dsdnnf_compile"),
            "cold explain should surface compile stages, got {stage_names:?}"
        );
        // Warm run: every layer reports resident, and the answer matches
        // the batch API bit-for-bit.
        let warm = session.explain(&request).unwrap();
        assert!(warm.encoding_cached && warm.machine_cached && warm.lineage_cached);
        let exact = session.batch_probability(std::slice::from_ref(&request))[0]
            .clone()
            .unwrap();
        assert_eq!(warm.estimate, exact.to_f64());
        // Consistency with SessionStats: two explains + one batch request.
        let stats = session.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.lineage_misses, 1);
        // The float-first backend serves explain from the interval tier.
        let (float_session, fq, fi) = traced_session(SessionBackend::FloatFirst);
        let float_request = ProbabilityRequest {
            query: fq,
            instance: fi,
            valuation: request.valuation.clone(),
        };
        let float_report = float_session.explain(&float_request).unwrap();
        assert_eq!(float_report.tier, DecisionTier::Float);
        assert!(float_report.interval_width > 0.0);
        assert!((float_report.estimate - exact.to_f64()).abs() <= float_report.interval_width);
        // And SharedDd reports its shard size instead of circuit sizes.
        let (dd_session, dq, di) = traced_session(SessionBackend::SharedDd);
        let dd_report = dd_session
            .explain(&ProbabilityRequest {
                query: dq,
                instance: di,
                valuation: request.valuation.clone(),
            })
            .unwrap();
        assert_eq!(dd_report.tier, DecisionTier::Exact);
        assert!(dd_report.dd_nodes.unwrap() > 0);
        assert!(dd_report.gates.is_none());
        assert_eq!(dd_report.estimate, exact.to_f64());
    }

    #[test]
    fn explain_rejects_malformed_requests_without_panicking() {
        let (session, q, i) = session_with(SessionBackend::Automaton);
        let short = ProbabilityRequest {
            query: q,
            instance: i,
            // A valuation sized for a smaller instance than the request's.
            valuation: ProbabilityValuation::uniform(&chain(1), Rational::one_half()),
        };
        assert!(matches!(
            session.explain(&short),
            Err(EngineError::InvalidRequest(_))
        ));
        let unknown = ProbabilityRequest {
            query: QueryId(17),
            instance: i,
            valuation: ProbabilityValuation::uniform(session.instance(i), Rational::one_half()),
        };
        assert!(matches!(
            session.explain(&unknown),
            Err(EngineError::InvalidRequest(_))
        ));
        // Malformed requests never count as served.
        assert_eq!(session.stats().requests, 0);
    }

    #[test]
    fn explain_report_renders_stable_json() {
        let report = ExplainReport {
            backend: "automaton",
            tier: DecisionTier::Exact,
            estimate: 0.25,
            interval_width: 0.0,
            encoding_cached: true,
            machine_cached: false,
            lineage_cached: true,
            automaton_states: Some(5),
            gates: Some(42),
            vtree_nodes: Some(21),
            fragments: Some(3),
            dd_nodes: None,
            trace: Some(7),
            total_ns: 1_500,
            stages: vec![StageTiming {
                name: "eval\"stage\"",
                count: 2,
                total_ns: 900,
            }],
        };
        assert_eq!(
            report.to_json(),
            "{\"backend\":\"automaton\",\"tier\":\"exact\",\"estimate\":0.25,\
             \"interval_width\":0.0,\
             \"cache\":{\"encoding\":true,\"machine\":false,\"lineage\":true},\
             \"artifact\":{\"automaton_states\":5,\"gates\":42,\"vtree_nodes\":21,\"fragments\":3},\
             \"trace\":7,\"total_ns\":1500,\
             \"stages\":[{\"name\":\"eval\\\"stage\\\"\",\"count\":2,\"total_ns\":900}]}"
        );
    }

    #[test]
    fn flight_recorder_keeps_the_slowest_requests_bounded() {
        let config = EngineConfig {
            telemetry: treelineage_telemetry::Telemetry::enabled(),
            flight_recorder_capacity: 2,
            flight_recorder_threshold_ns: 0,
            ..EngineConfig::with_threads(2)
        };
        let mut session = EvalSession::with_backend(config, SessionBackend::Automaton);
        let q = session.register_query(parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap());
        let i = session.register_instance(chain(4));
        let valuation =
            ProbabilityValuation::uniform(session.instance(i), Rational::from_ratio_u64(1, 3));
        let requests: Vec<ProbabilityRequest> = (0..6)
            .map(|_| ProbabilityRequest {
                query: q,
                instance: i,
                valuation: valuation.clone(),
            })
            .collect();
        for r in session.batch_probability(&requests) {
            r.unwrap();
        }
        let slow = session.slow_requests();
        assert_eq!(slow.len(), 2, "capacity bounds the recorder");
        assert!(slow[0].duration_ns >= slow[1].duration_ns, "slowest first");
        for entry in &slow {
            assert_eq!(entry.kind, "probability");
            assert_eq!(entry.tier, DecisionTier::Exact);
            let request_span = entry
                .spans
                .iter()
                .find(|e| e.name == "request")
                .expect("each retained request keeps its root span");
            assert_eq!(request_span.trace, entry.trace);
            assert!(entry.spans.iter().all(|e| e.trace == entry.trace));
        }
        // Telemetry disabled: the recorder stays inert.
        let quiet = EvalSession::with_backend(
            EngineConfig {
                flight_recorder_threshold_ns: 0,
                ..EngineConfig::default()
            },
            SessionBackend::Automaton,
        );
        assert!(quiet.slow_requests().is_empty());
    }

    /// Asserts two compiled lineages are byte-identical: same gates at the
    /// same ids with the same operands, same vtree, same universe.
    fn assert_byte_identical(a: &ParallelDnnf, b: &ParallelDnnf) {
        let (ac, bc) = (
            a.structured().dnnf().circuit(),
            b.structured().dnnf().circuit(),
        );
        assert_eq!(ac.size(), bc.size(), "gate counts differ");
        for id in ac.gate_ids() {
            assert_eq!(ac.gate(id), bc.gate(id), "gate {id:?} differs");
        }
        assert_eq!(ac.output(), bc.output());
        let (av, bv) = (a.structured().vtree(), b.structured().vtree());
        assert_eq!(av.node_count(), bv.node_count());
        for i in 0..av.node_count() {
            let id = treelineage_circuit::VtreeId(i);
            assert_eq!(av.node(id), bv.node(id), "vtree node {i} differs");
        }
        assert_eq!(av.root(), bv.root());
        assert_eq!(a.structured().universe(), b.structured().universe());
    }

    #[test]
    fn updates_validate_with_typed_errors_and_track_epochs() {
        let (mut session, _q, i) = session_with(SessionBackend::Automaton);
        let sig = rst();
        let r = sig.relation_by_name("R").unwrap();
        let s = sig.relation_by_name("S").unwrap();
        let t = sig.relation_by_name("T").unwrap();
        let half = Rational::one_half();

        // Rejections leave the session untouched: epoch 0, counters 0.
        assert_eq!(
            session.insert_fact(i, Fact::new(r, vec![Element(0)]), half.clone()),
            Err(UpdateError::DuplicateFact(FactId(0)))
        );
        assert_eq!(
            session.insert_fact(i, Fact::new(r, vec![Element(9)]), half.clone()),
            Err(UpdateError::NewElement(Element(9)))
        );
        assert_eq!(
            session.insert_fact(i, Fact::new(s, vec![Element(0), Element(4)]), half.clone()),
            Err(UpdateError::UncoveredFact)
        );
        assert_eq!(
            session.insert_fact(i, Fact::new(r, vec![Element(0), Element(1)]), half.clone()),
            Err(UpdateError::ArityMismatch {
                expected: 1,
                got: 2
            })
        );
        assert_eq!(
            session.insert_fact(
                i,
                Fact::new(t, vec![Element(0)]),
                Rational::from_ratio_u64(3, 2)
            ),
            Err(UpdateError::InvalidProbability)
        );
        assert_eq!(
            session.retract_fact(i, FactId(99)),
            Err(UpdateError::UnknownFact(FactId(99)))
        );
        assert_eq!(
            session.insert_fact(InstanceId(5), Fact::new(t, vec![Element(0)]), half.clone()),
            Err(UpdateError::UnknownInstance(5))
        );
        assert_eq!(session.instance_epoch(i), 0);
        let stats = session.stats();
        assert_eq!(stats.updates_insert, 0);
        assert_eq!(stats.updates_retract, 0);
        assert_eq!(stats.updates_set_probability, 0);

        // Overriding with the current value is a zero-dirty no-op.
        let noop = session.set_probability(i, FactId(0), half.clone()).unwrap();
        assert!(noop.no_op && !noop.structural);
        assert_eq!(noop.epoch, 0);
        assert_eq!(session.stats().updates_set_probability, 0);

        // An actual override bumps the epoch without structural effects.
        let third = Rational::from_ratio_u64(1, 3);
        let set = session
            .set_probability(i, FactId(0), third.clone())
            .unwrap();
        assert!(!set.no_op && !set.structural);
        assert_eq!(set.epoch, 1);
        assert_eq!(*session.valuation(i).probability(FactId(0)), third);

        // chain(4) ends with T(4) at id 11 (the dense tail): retracting it
        // moves nothing; afterwards S(3, 4) is element 4's only home.
        let retract = session.retract_fact(i, FactId(11)).unwrap();
        assert_eq!(retract.kind, UpdateKind::Retract);
        assert!(retract.structural && retract.moved.is_none());
        assert_eq!(retract.epoch, 2);
        assert_eq!(
            session.retract_fact(i, FactId(10)),
            Err(UpdateError::OrphanedElement(Element(4)))
        );

        // T(0) is absent, in-domain, and (being unary) always covered.
        let insert = session
            .insert_fact(
                i,
                Fact::new(t, vec![Element(0)]),
                Rational::from_ratio_u64(1, 4),
            )
            .unwrap();
        assert_eq!(insert.fact, FactId(11));
        assert!(insert.structural && insert.moved.is_none());
        assert_eq!(insert.epoch, 3);
        assert_eq!(session.instance(i).fact_count(), 12);
        assert_eq!(session.valuation(i).len(), 12);
        assert_eq!(
            *session.valuation(i).probability(FactId(11)),
            Rational::from_ratio_u64(1, 4)
        );
        let stats = session.stats();
        assert_eq!(stats.updates_insert, 1);
        assert_eq!(stats.updates_retract, 1);
        assert_eq!(stats.updates_set_probability, 1);

        // A retraction of a middle fact renumbers exactly the last fact.
        let moved = session.retract_fact(i, FactId(3)).unwrap();
        assert_eq!(moved.moved, Some(FactId(11)));
        assert_eq!(session.instance(i).fact_count(), 11);
        assert_eq!(session.valuation(i).len(), 11);
        // The moved fact (T(0), probability 1/4) now lives at the hole.
        assert_eq!(
            *session.valuation(i).probability(FactId(3)),
            Rational::from_ratio_u64(1, 4)
        );
    }

    #[test]
    fn structural_updates_flip_residency_and_recompile_incrementally() {
        let config = EngineConfig {
            telemetry: treelineage_telemetry::Telemetry::enabled(),
            fragment_grain: 4,
            ..EngineConfig::with_threads(2)
        };
        let mut session = EvalSession::with_backend(config, SessionBackend::Automaton);
        let q = session.register_query(parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap());
        let i = session.register_instance(chain(6));
        let request = |session: &EvalSession| ProbabilityRequest {
            query: q,
            instance: i,
            valuation: session.valuation(i).clone(),
        };

        // Warm every layer, then pin the warm residency report.
        let before = session.batch_probability(&[request(&session)])[0]
            .clone()
            .unwrap();
        let warm = session.explain(&request(&session)).unwrap();
        assert!(warm.encoding_cached && warm.machine_cached && warm.lineage_cached);
        let occupancy = session.cache_occupancy();
        assert_eq!(occupancy.encodings, 1);
        assert_eq!(occupancy.lineage_entries, 1);
        let total_fragments = session
            .lineage_artifact(q, i)
            .unwrap()
            .partition()
            .fragments()
            .len();
        assert!(
            total_fragments >= 2,
            "grain 4 over chain(6) should partition, got {total_fragments}"
        );

        // A structural update invalidates the encoding and lineage layers
        // (the regression this test pins: the explain report and occupancy
        // gauges must reflect post-update invalidation, not stale caches).
        // Retracting R(0) removes the i = 0 match, so the answer must move.
        let report = session.retract_fact(i, FactId(0)).unwrap();
        assert_eq!(report.invalidated_lineages, 1);
        let occupancy = session.cache_occupancy();
        assert_eq!(occupancy.encodings, 0, "encoding must drop on update");
        assert_eq!(occupancy.lineage_entries, 0, "lineage must drop on update");
        let cold = session.explain(&request(&session)).unwrap();
        assert!(!cold.encoding_cached && !cold.lineage_cached);
        assert_ne!(cold.estimate, before.to_f64(), "the answer must move");

        // The explain above recompiled through the parked fragment library:
        // strictly fewer fragments than a cold compile (which recompiles
        // all of them), with real reuse.
        let stats = session.stats();
        assert_eq!(stats.lineages_invalidated, 1);
        let incremental = session.lineage_artifact(q, i).unwrap();
        let new_total = incremental.partition().fragments().len();
        assert!(stats.fragments_reused > 0, "no fragments reused");
        assert_eq!(
            stats.fragments_recompiled + stats.fragments_reused,
            new_total
        );
        assert!(
            stats.fragments_recompiled < new_total,
            "update recompiled {} of {} fragments — not incremental",
            stats.fragments_recompiled,
            new_total
        );

        // And the incremental artifact is byte-identical to a cold compile
        // of the mutated instance through the same machine.
        let cold_artifact = session.cold_lineage(q, i).unwrap();
        assert_byte_identical(&incremental, &cold_artifact);

        // The update surfaced in the metrics: covered counter series.
        let rendered = session.metrics().to_prometheus();
        assert!(rendered.contains("session_updates_total"), "{rendered}");
        assert!(
            rendered.contains("session_fragments_recompiled_total"),
            "{rendered}"
        );
        assert!(rendered.contains("updates_total"), "{rendered}");
        assert!(rendered.contains("dirty_fragments"), "{rendered}");
    }

    #[test]
    fn set_probability_keeps_every_cache_layer_resident() {
        let (mut session, q, i) = session_with(SessionBackend::Automaton);
        let first = session.batch_probability(&[ProbabilityRequest {
            query: q,
            instance: i,
            valuation: session.valuation(i).clone(),
        }])[0]
            .clone()
            .unwrap();
        let misses = session.stats().lineage_misses;
        // The cheap tier: only the resident valuation moves.
        session
            .set_probability(i, FactId(0), Rational::from_ratio_u64(1, 5))
            .unwrap();
        let occupancy = session.cache_occupancy();
        assert_eq!(occupancy.encodings, 1);
        assert_eq!(occupancy.lineage_entries, 1);
        let second = session.batch_probability(&[ProbabilityRequest {
            query: q,
            instance: i,
            valuation: session.valuation(i).clone(),
        }])[0]
            .clone()
            .unwrap();
        assert_eq!(session.stats().lineage_misses, misses, "must hit the cache");
        assert_ne!(first, second, "the reweighted answer must move");
    }

    #[test]
    fn updates_invalidate_dd_shards_too() {
        let (mut session, q, i) = session_with(SessionBackend::SharedDd);
        let valuation = session.valuation(i).clone();
        let first = session.batch_probability(&[ProbabilityRequest {
            query: q,
            instance: i,
            valuation,
        }])[0]
            .clone()
            .unwrap();
        assert_eq!(session.cache_occupancy().dd_shards, 1);
        // Retracting R(0) removes a match, so the answer must move.
        session.retract_fact(i, FactId(0)).unwrap();
        assert_eq!(session.cache_occupancy().dd_shards, 0, "shard must drop");
        let second = session.batch_probability(&[ProbabilityRequest {
            query: q,
            instance: i,
            valuation: session.valuation(i).clone(),
        }])[0]
            .clone()
            .unwrap();
        assert_ne!(first, second);
        // Cross-check against the automaton backend on the same updates.
        let (mut auto, q2, i2) = session_with(SessionBackend::Automaton);
        auto.retract_fact(i2, FactId(0)).unwrap();
        let expected = auto.batch_probability(&[ProbabilityRequest {
            query: q2,
            instance: i2,
            valuation: auto.valuation(i2).clone(),
        }])[0]
            .clone()
            .unwrap();
        assert_eq!(second, expected);
    }
}
