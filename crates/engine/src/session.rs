//! Long-lived evaluation sessions: batched requests over cached compile
//! state.
//!
//! A serving system does not see one `query_probability` call — it sees a
//! stream of (query, instance, weight-vector) requests, most of which share
//! their expensive prefix: the tree encoding is per instance, the compiled
//! query machine is per (query, alphabet), and the provenance d-SDNNF is
//! per (query, instance); only the final linear evaluation pass depends on
//! the weights. [`EvalSession`] keeps all three layers cached across
//! batches and evaluates the requests of a batch concurrently on the
//! engine's work-stealing pool:
//!
//! * **per-instance state** — the instance, its (validated) tree
//!   decomposition, the lazily built [`TreeEncoding`], and — for the
//!   shared-diagram backend — a lazily seeded [`Manager`] *shard*;
//! * **per-(query, width) state** — the persistent
//!   [`CompiledQuery`] machine, whose deterministic-state memo keeps
//!   growing across instances (its own kind of cache);
//! * **per-(query, instance) state** — the compiled [`ParallelDnnf`]
//!   lineage, shared by every request and every batch that names the pair.
//!
//! **Why shards instead of one lock.** The dd [`Manager`] is a mutable
//! hash-consed store: compilation needs `&mut`, and even evaluation takes
//! the shard lock. One global manager would serialize the whole batch; one
//! manager *per registered instance* (the natural unit, since a manager is
//! pinned to its variable order) lets requests for different instances
//! proceed in parallel and contend only with requests for the same
//! instance. The automaton backend needs no locking at all after compile —
//! [`ParallelDnnf`] evaluation is read-only.
//!
//! Results are deterministic: caches only memoize deterministic
//! computations, so a cache hit returns byte-for-byte what a cold compile
//! would have produced (pinned by the umbrella
//! `tests/parallel_differential.rs`).

use crate::parallel::ParallelDnnf;
use crate::pool::run_tasks;
use crate::{variable_order_from_decomposition, EngineConfig};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use treelineage_dd::Manager;
use treelineage_encoding::{
    compile_ucq, CompileError, CompileOptions, CompiledQuery, EncodingError, TreeEncoding,
};
use treelineage_graph::TreeDecomposition;
use treelineage_instance::{FactId, Instance, ProbabilityValuation};
use treelineage_num::{BigUint, Rational};
use treelineage_query::{matching, UnionOfConjunctiveQueries};

/// Handle to an instance registered with an [`EvalSession`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct InstanceId(usize);

/// Handle to a query registered with an [`EvalSession`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct QueryId(usize);

/// Which compiled representation a session serves requests from.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SessionBackend {
    /// The Section 6 pipeline: tree-encode each instance once, compile each
    /// query to a tree automaton once, serve every request from the cached
    /// provenance d-SDNNF (never materializing query matches). The default.
    #[default]
    Automaton,
    /// The shared decision-diagram engine: one [`Manager`] shard per
    /// registered instance, query lineages compiled from their matches into
    /// the shard and looked up by root node on later requests.
    SharedDd,
}

/// Errors reported per request by the batch methods. Requests that share a
/// failing (query, instance) pair share the (cloned) error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The supplied decomposition is not valid for the instance.
    InvalidDecomposition(String),
    /// Tree-encoding the instance failed.
    Encoding(EncodingError),
    /// Compiling the query to an automaton failed (state budget, alphabet
    /// limits).
    QueryCompile(CompileError),
    /// Provenance extraction failed (internal: the encoder's invariants
    /// should rule this out).
    Provenance(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidDecomposition(e) => write!(f, "invalid decomposition: {e}"),
            EngineError::Encoding(e) => write!(f, "tree encoding failed: {e}"),
            EngineError::QueryCompile(e) => write!(f, "query compilation failed: {e}"),
            EngineError::Provenance(e) => write!(f, "provenance compilation failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A probability request: evaluate `query` on `instance` under independent
/// per-fact probabilities.
#[derive(Clone, Debug)]
pub struct ProbabilityRequest {
    /// The registered query.
    pub query: QueryId,
    /// The registered instance.
    pub instance: InstanceId,
    /// Per-fact probabilities (must cover every fact of the instance).
    pub valuation: ProbabilityValuation,
}

/// A weighted-model-count request: general per-literal weights, indexed by
/// fact id (so `pos[f]` / `neg[f]` weight fact `f` present / absent).
#[derive(Clone, Debug)]
pub struct WmcRequest {
    /// The registered query.
    pub query: QueryId,
    /// The registered instance.
    pub instance: InstanceId,
    /// Weight of each fact being present, indexed by fact id.
    pub pos: Vec<Rational>,
    /// Weight of each fact being absent, indexed by fact id.
    pub neg: Vec<Rational>,
}

/// Cache effectiveness counters of an [`EvalSession`] (monotone since the
/// session was created).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests served across all batches.
    pub requests: usize,
    /// Lineage (d-SDNNF) cache hits.
    pub lineage_hits: usize,
    /// Lineage (d-SDNNF) cache misses (compiles).
    pub lineage_misses: usize,
    /// Compiled query machines built (per (query, width) misses).
    pub machines_built: usize,
    /// Tree encodings built (per-instance misses).
    pub encodings_built: usize,
    /// dd-shard lineage roots compiled (SharedDd backend misses).
    pub dd_roots_built: usize,
}

#[derive(Default)]
struct Counters {
    requests: AtomicUsize,
    lineage_hits: AtomicUsize,
    lineage_misses: AtomicUsize,
    machines_built: AtomicUsize,
    encodings_built: AtomicUsize,
    dd_roots_built: AtomicUsize,
}

/// An insertion-ordered map with a capacity cap: inserting past the cap
/// evicts the oldest entry (enough LRU-ness for compile caches whose
/// entries are all equally valid).
struct CacheMap<K: Ord + Clone, V: Clone> {
    map: BTreeMap<K, V>,
    order: VecDeque<K>,
    cap: usize,
}

impl<K: Ord + Clone, V: Clone> CacheMap<K, V> {
    fn new(cap: usize) -> Self {
        CacheMap {
            map: BTreeMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
        }
        while self.map.len() > self.cap {
            let oldest = self.order.pop_front().expect("order tracks map");
            self.map.remove(&oldest);
        }
    }
}

/// A dd-engine shard: one manager (pinned to the instance's fact order)
/// plus the root nodes of the query lineages compiled into it so far.
struct DdShard {
    manager: Manager,
    roots: BTreeMap<usize, treelineage_dd::NodeId>,
}

struct InstanceEntry {
    instance: Instance,
    decomposition: TreeDecomposition,
    encoding: Mutex<Option<Arc<TreeEncoding>>>,
    dd: Mutex<Option<DdShard>>,
}

/// A long-lived, batch-oriented evaluation session. See the module docs
/// for the cache layers; see [`EngineConfig`] for the knobs.
///
/// Registration takes `&mut self`; the batch methods take `&self` and are
/// internally synchronized, so a server can share one session behind an
/// [`Arc`] and call batches from several threads.
pub struct EvalSession {
    config: EngineConfig,
    backend: SessionBackend,
    instances: Vec<InstanceEntry>,
    queries: Vec<UnionOfConjunctiveQueries>,
    /// Compiled query machines, keyed by (query, alphabet width). The
    /// machine itself is behind a `Mutex` because materializing an
    /// automaton grows its state memo (`&mut`).
    machines: Mutex<MachineCache>,
    /// Compiled lineages, keyed by (query, instance).
    lineages: Mutex<CacheMap<(usize, usize), Arc<ParallelDnnf>>>,
    counters: Counters,
}

/// Query-machine cache: (query, width) → shared, lockable [`CompiledQuery`].
type MachineCache = CacheMap<(usize, usize), Arc<Mutex<CompiledQuery>>>;

impl EvalSession {
    /// Creates a session over the default [`SessionBackend::Automaton`].
    pub fn new(config: EngineConfig) -> Self {
        EvalSession::with_backend(config, SessionBackend::default())
    }

    /// Creates a session serving requests from the given backend.
    pub fn with_backend(config: EngineConfig, backend: SessionBackend) -> Self {
        EvalSession {
            machines: Mutex::new(CacheMap::new(config.query_cache_cap)),
            lineages: Mutex::new(CacheMap::new(config.lineage_cache_cap)),
            config,
            backend,
            instances: Vec::new(),
            queries: Vec::new(),
            counters: Counters::default(),
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The backend requests are served from.
    pub fn backend(&self) -> SessionBackend {
        self.backend
    }

    /// Registers an instance, deriving a heuristic tree decomposition of
    /// its Gaifman graph (valid by construction).
    pub fn register_instance(&mut self, instance: Instance) -> InstanceId {
        let (graph, _) = instance.gaifman_graph();
        let (_, td) = treelineage_graph::treewidth::treewidth_upper_bound(&graph);
        self.push_instance(instance, td)
    }

    /// Registers an instance with a known tree decomposition of its Gaifman
    /// graph (validated here once; every later request trusts it).
    pub fn register_instance_with_decomposition(
        &mut self,
        instance: Instance,
        decomposition: TreeDecomposition,
    ) -> Result<InstanceId, EngineError> {
        let (graph, _) = instance.gaifman_graph();
        decomposition
            .validate(&graph)
            .map_err(|e| EngineError::InvalidDecomposition(e.to_string()))?;
        Ok(self.push_instance(instance, decomposition))
    }

    fn push_instance(
        &mut self,
        instance: Instance,
        decomposition: TreeDecomposition,
    ) -> InstanceId {
        self.instances.push(InstanceEntry {
            instance,
            decomposition,
            encoding: Mutex::new(None),
            dd: Mutex::new(None),
        });
        InstanceId(self.instances.len() - 1)
    }

    /// The registered instance behind a handle.
    pub fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id.0].instance
    }

    /// Registers a query (idempotent: an equal query returns its existing
    /// handle, so its compile caches are shared).
    pub fn register_query(&mut self, query: UnionOfConjunctiveQueries) -> QueryId {
        if let Some(i) = self.queries.iter().position(|q| *q == query) {
            return QueryId(i);
        }
        self.queries.push(query);
        QueryId(self.queries.len() - 1)
    }

    /// Snapshot of the session's cache counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            lineage_hits: self.counters.lineage_hits.load(Ordering::Relaxed),
            lineage_misses: self.counters.lineage_misses.load(Ordering::Relaxed),
            machines_built: self.counters.machines_built.load(Ordering::Relaxed),
            encodings_built: self.counters.encodings_built.load(Ordering::Relaxed),
            dd_roots_built: self.counters.dd_roots_built.load(Ordering::Relaxed),
        }
    }

    /// Evaluates a batch of probability requests. Shared compile work is
    /// deduplicated (each distinct (query, instance) pair compiles at most
    /// once, then hits the session cache on later batches); compiles and
    /// evaluations run concurrently on the configured thread count.
    pub fn batch_probability(
        &self,
        requests: &[ProbabilityRequest],
    ) -> Vec<Result<Rational, EngineError>> {
        self.counters
            .requests
            .fetch_add(requests.len(), Ordering::Relaxed);
        for r in requests {
            assert_eq!(
                r.valuation.len(),
                self.instances[r.instance.0].instance.fact_count(),
                "valuation must cover every fact of the instance"
            );
        }
        match self.backend {
            SessionBackend::Automaton => {
                let artifacts =
                    self.compile_pairs(requests.iter().map(|r| (r.query.0, r.instance.0)));
                let eval_threads = self.eval_threads(requests.len());
                run_tasks(self.config.threads, requests.len(), |i| {
                    let r = &requests[i];
                    let lineage = artifacts[&(r.query.0, r.instance.0)].clone()?;
                    Ok(lineage.probability(
                        &|v| r.valuation.probability(FactId(v)).clone(),
                        eval_threads,
                    ))
                })
            }
            SessionBackend::SharedDd => run_tasks(self.config.threads, requests.len(), |i| {
                let r = &requests[i];
                self.dd_evaluate(r.query.0, r.instance.0, |manager, root| {
                    manager.probability(root, &|v| r.valuation.probability(FactId(v)).clone())
                })
            }),
        }
    }

    /// Evaluates a batch of general weighted-model-count requests. Always
    /// served from the automaton backend's smooth d-SDNNF (one pass per
    /// request), mirroring how the core evaluator routes WMC.
    pub fn batch_wmc(&self, requests: &[WmcRequest]) -> Vec<Result<Rational, EngineError>> {
        self.counters
            .requests
            .fetch_add(requests.len(), Ordering::Relaxed);
        for r in requests {
            let facts = self.instances[r.instance.0].instance.fact_count();
            assert_eq!(
                r.pos.len(),
                facts,
                "pos weights must cover every fact of the instance"
            );
            assert_eq!(
                r.neg.len(),
                facts,
                "neg weights must cover every fact of the instance"
            );
        }
        let artifacts = self.compile_pairs(requests.iter().map(|r| (r.query.0, r.instance.0)));
        let eval_threads = self.eval_threads(requests.len());
        run_tasks(self.config.threads, requests.len(), |i| {
            let r = &requests[i];
            let lineage = artifacts[&(r.query.0, r.instance.0)].clone()?;
            Ok(lineage.wmc(&|v| r.pos[v].clone(), &|v| r.neg[v].clone(), eval_threads))
        })
    }

    /// Evaluates a batch of model-count requests (number of satisfying
    /// subinstances over the full fact universe). Duplicated pairs are
    /// computed once.
    pub fn batch_model_count(
        &self,
        requests: &[(QueryId, InstanceId)],
    ) -> Vec<Result<BigUint, EngineError>> {
        self.counters
            .requests
            .fetch_add(requests.len(), Ordering::Relaxed);
        match self.backend {
            SessionBackend::Automaton => {
                let artifacts = self.compile_pairs(requests.iter().map(|&(q, i)| (q.0, i.0)));
                let unique: Vec<(usize, usize)> = artifacts.keys().copied().collect();
                let eval_threads = self.eval_threads(unique.len());
                let counts = run_tasks(self.config.threads, unique.len(), |k| {
                    artifacts[&unique[k]]
                        .clone()
                        .map(|lineage| lineage.model_count(eval_threads))
                });
                let by_pair: BTreeMap<(usize, usize), Result<BigUint, EngineError>> =
                    unique.into_iter().zip(counts).collect();
                requests
                    .iter()
                    .map(|&(q, i)| by_pair[&(q.0, i.0)].clone())
                    .collect()
            }
            SessionBackend::SharedDd => {
                // Dedup here too: identical pairs would otherwise re-run
                // the count serialized on the same shard lock.
                let unique: Vec<(usize, usize)> = requests
                    .iter()
                    .map(|&(q, i)| (q.0, i.0))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                let counts = run_tasks(self.config.threads, unique.len(), |k| {
                    let (q, i) = unique[k];
                    self.dd_evaluate(q, i, |manager, root| manager.count_models(root))
                });
                let by_pair: BTreeMap<(usize, usize), Result<BigUint, EngineError>> =
                    unique.into_iter().zip(counts).collect();
                requests
                    .iter()
                    .map(|&(q, i)| by_pair[&(q.0, i.0)].clone())
                    .collect()
            }
        }
    }

    /// Compiles (or fetches) the lineage of every distinct (query,
    /// instance) pair of a batch, in parallel across pairs. Inner subtree
    /// parallelism is enabled only when the batch has a single pair —
    /// otherwise the pair-level parallelism already saturates the pool.
    fn compile_pairs(
        &self,
        pairs: impl Iterator<Item = (usize, usize)>,
    ) -> BTreeMap<(usize, usize), Result<Arc<ParallelDnnf>, EngineError>> {
        let unique: Vec<(usize, usize)> = pairs.collect::<BTreeSet<_>>().into_iter().collect();
        let inner_threads = self.eval_threads(unique.len());
        let compiled = run_tasks(self.config.threads, unique.len(), |k| {
            self.lineage(unique[k].0, unique[k].1, inner_threads)
        });
        unique.into_iter().zip(compiled).collect()
    }

    /// Inner (per-task) thread count: full fan-out for a lone task, no
    /// nesting once the task set itself saturates the pool.
    fn eval_threads(&self, task_count: usize) -> usize {
        if task_count <= 1 {
            self.config.threads
        } else {
            1
        }
    }

    /// The lineage d-SDNNF of (query, instance), through the session
    /// caches. Concurrent misses on the same pair may compile twice; the
    /// construction is deterministic, so both results are identical and
    /// either may be cached. The fragment *plan* always uses the session's
    /// full thread count (so cached artifacts carry the partition later
    /// fragment-parallel evaluations need) while `pool_threads` bounds the
    /// workers this particular compile may spawn — 1 when the batch itself
    /// already saturates the pool.
    fn lineage(
        &self,
        query: usize,
        instance: usize,
        pool_threads: usize,
    ) -> Result<Arc<ParallelDnnf>, EngineError> {
        if let Some(hit) = self.lineages.lock().unwrap().get(&(query, instance)) {
            self.counters.lineage_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.counters.lineage_misses.fetch_add(1, Ordering::Relaxed);
        let encoding = self.encoding(instance)?;
        let machine = self.machine(query, encoding.alphabet().width())?;
        let automaton = machine
            .lock()
            .unwrap()
            .automaton_for(encoding.tree())
            .map_err(EngineError::QueryCompile)?;
        let compiled = crate::parallel::compile_with_pool(
            &automaton,
            encoding.tree(),
            &self.config,
            pool_threads,
        )
        .map_err(|e| EngineError::Provenance(e.to_string()))?;
        let arc = Arc::new(compiled);
        self.lineages
            .lock()
            .unwrap()
            .insert((query, instance), arc.clone());
        Ok(arc)
    }

    /// The instance's tree encoding, built on first use.
    fn encoding(&self, instance: usize) -> Result<Arc<TreeEncoding>, EngineError> {
        let entry = &self.instances[instance];
        let mut slot = entry.encoding.lock().unwrap();
        if let Some(encoding) = slot.as_ref() {
            return Ok(encoding.clone());
        }
        self.counters
            .encodings_built
            .fetch_add(1, Ordering::Relaxed);
        // Trusted: the decomposition was validated (or is valid by
        // construction) at registration.
        let encoding = treelineage_encoding::encode_trusted(&entry.instance, &entry.decomposition)
            .map_err(EngineError::Encoding)?;
        let arc = Arc::new(encoding);
        *slot = Some(arc.clone());
        Ok(arc)
    }

    /// The compiled query machine for (query, width), built on first use.
    /// The machine's own deterministic-state memo persists across every
    /// instance of that width.
    fn machine(
        &self,
        query: usize,
        width: usize,
    ) -> Result<Arc<Mutex<CompiledQuery>>, EngineError> {
        if let Some(hit) = self.machines.lock().unwrap().get(&(query, width)) {
            return Ok(hit);
        }
        self.counters.machines_built.fetch_add(1, Ordering::Relaxed);
        let alphabet =
            treelineage_encoding::EncodingAlphabet::new(self.queries[query].signature(), width)
                .map_err(|e| EngineError::Encoding(EncodingError::Alphabet(e)))?;
        let options = CompileOptions {
            state_budget: self.config.state_budget,
        };
        let machine = compile_ucq(&self.queries[query], &alphabet, options)
            .map_err(EngineError::QueryCompile)?;
        let arc = Arc::new(Mutex::new(machine));
        self.machines
            .lock()
            .unwrap()
            .insert((query, width), arc.clone());
        Ok(arc)
    }

    /// Runs `eval` on the (query, instance) root in the instance's dd
    /// shard, compiling the lineage into the shard on first use. The shard
    /// lock is held for the duration — contention is per instance, not per
    /// session.
    fn dd_evaluate<T>(
        &self,
        query: usize,
        instance: usize,
        eval: impl FnOnce(&Manager, treelineage_dd::NodeId) -> T,
    ) -> Result<T, EngineError> {
        let entry = &self.instances[instance];
        let mut slot = entry.dd.lock().unwrap();
        let shard = slot.get_or_insert_with(|| {
            let mut order =
                variable_order_from_decomposition(&entry.instance, &entry.decomposition);
            let present: BTreeSet<usize> = order.iter().copied().collect();
            for f in entry.instance.fact_ids() {
                if !present.contains(&f.0) {
                    order.push(f.0);
                }
            }
            DdShard {
                manager: Manager::new(order),
                roots: BTreeMap::new(),
            }
        });
        let root = match shard.roots.get(&query) {
            Some(&root) => {
                self.counters.lineage_hits.fetch_add(1, Ordering::Relaxed);
                root
            }
            None => {
                self.counters.lineage_misses.fetch_add(1, Ordering::Relaxed);
                self.counters.dd_roots_built.fetch_add(1, Ordering::Relaxed);
                let circuit = match_circuit(&self.queries[query], &entry.instance);
                let root = shard.manager.compile_circuit(&circuit);
                shard.roots.insert(query, root);
                root
            }
        };
        Ok(eval(&shard.manager, root))
    }
}

/// The monotone lineage circuit of the query on the instance: the
/// disjunction over matches of the conjunction of their facts (the same
/// circuit `treelineage-core`'s `LineageBuilder::circuit` builds).
fn match_circuit(
    query: &UnionOfConjunctiveQueries,
    instance: &Instance,
) -> treelineage_circuit::Circuit {
    use treelineage_circuit::{Circuit, GateId};
    let mut circuit = Circuit::new();
    let matches = matching::all_matches(query, instance);
    let mut disjuncts: Vec<GateId> = Vec::with_capacity(matches.len());
    for m in &matches {
        let conj: Vec<GateId> = m.iter().map(|f| circuit.var(f.0)).collect();
        let gate = if conj.len() == 1 {
            conj[0]
        } else {
            circuit.and(conj)
        };
        disjuncts.push(gate);
    }
    let output = match disjuncts.len() {
        0 => circuit.constant(false),
        1 => disjuncts[0],
        _ => circuit.or(disjuncts),
    };
    circuit.set_output(output);
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use treelineage_instance::Signature;
    use treelineage_query::parse_query;

    fn rst() -> Signature {
        Signature::builder()
            .relation("R", 1)
            .relation("S", 2)
            .relation("T", 1)
            .build()
    }

    fn chain(n: usize) -> Instance {
        let mut inst = Instance::new(rst());
        for i in 0..n as u64 {
            inst.add_fact_by_name("R", &[i]);
            inst.add_fact_by_name("S", &[i, i + 1]);
            inst.add_fact_by_name("T", &[i + 1]);
        }
        inst
    }

    fn session_with(backend: SessionBackend) -> (EvalSession, QueryId, InstanceId) {
        let mut session = EvalSession::with_backend(EngineConfig::with_threads(2), backend);
        let q = session.register_query(parse_query(&rst(), "R(x), S(x, y), T(y)").unwrap());
        let i = session.register_instance(chain(4));
        (session, q, i)
    }

    #[test]
    fn batches_agree_across_backends_and_hit_the_caches() {
        let (auto, q, i) = session_with(SessionBackend::Automaton);
        let (dd, q2, i2) = session_with(SessionBackend::SharedDd);
        let valuation =
            ProbabilityValuation::uniform(auto.instance(i), Rational::from_ratio_u64(1, 3));
        let requests: Vec<ProbabilityRequest> = (0..6)
            .map(|_| ProbabilityRequest {
                query: q,
                instance: i,
                valuation: valuation.clone(),
            })
            .collect();
        let got_auto = auto.batch_probability(&requests);
        let requests_dd: Vec<ProbabilityRequest> = requests
            .iter()
            .map(|r| ProbabilityRequest {
                query: q2,
                instance: i2,
                ..r.clone()
            })
            .collect();
        let got_dd = dd.batch_probability(&requests_dd);
        assert_eq!(got_auto, got_dd);
        assert!(got_auto.iter().all(|r| r == &got_auto[0]));
        // Six requests, one distinct pair: exactly one compile each.
        assert_eq!(auto.stats().lineage_misses, 1);
        assert_eq!(dd.stats().dd_roots_built, 1);
        // Second batch: pure cache hits.
        let again = auto.batch_probability(&requests);
        assert_eq!(again, got_auto);
        assert_eq!(auto.stats().lineage_misses, 1);
        assert!(auto.stats().lineage_hits >= 1);
    }

    #[test]
    fn model_counts_match_across_backends() {
        let (auto, q, i) = session_with(SessionBackend::Automaton);
        let (dd, q2, i2) = session_with(SessionBackend::SharedDd);
        let a = auto.batch_model_count(&[(q, i), (q, i)]);
        let d = dd.batch_model_count(&[(q2, i2)]);
        assert_eq!(a[0], a[1]);
        assert_eq!(a[0], d[0]);
    }

    #[test]
    fn wmc_batches_with_general_weights() {
        let (session, q, i) = session_with(SessionBackend::Automaton);
        let n = session.instance(i).fact_count();
        let pos: Vec<Rational> = (0..n)
            .map(|f| Rational::from_ratio_u64(f as u64 + 2, 3))
            .collect();
        let neg: Vec<Rational> = (0..n)
            .map(|f| Rational::from_ratio_u64(1, f as u64 + 1))
            .collect();
        let got = session.batch_wmc(&[WmcRequest {
            query: q,
            instance: i,
            pos: pos.clone(),
            neg: neg.clone(),
        }]);
        // pos = neg = 1 counts models.
        let ones: Vec<Rational> = (0..n).map(|_| Rational::one()).collect();
        let counts = session.batch_wmc(&[WmcRequest {
            query: q,
            instance: i,
            pos: ones.clone(),
            neg: ones,
        }]);
        let models = session.batch_model_count(&[(q, i)]);
        assert_eq!(
            counts[0].clone().unwrap(),
            Rational::from_biguint(models[0].clone().unwrap())
        );
        assert!(got[0].is_ok());
    }

    #[test]
    fn queries_are_deduplicated_and_caches_capped() {
        let mut session = EvalSession::new(EngineConfig {
            lineage_cache_cap: 1,
            ..EngineConfig::default()
        });
        let q1 = session.register_query(parse_query(&rst(), "R(x)").unwrap());
        let q2 = session.register_query(parse_query(&rst(), "R(x)").unwrap());
        assert_eq!(q1, q2);
        let q3 = session.register_query(parse_query(&rst(), "T(x)").unwrap());
        assert_ne!(q1, q3);
        let i = session.register_instance(chain(2));
        // Two pairs through a cap-1 cache: second batch of the first pair
        // must recompile (evicted), and results must still be identical.
        let first = session.batch_model_count(&[(q1, i)]);
        let _ = session.batch_model_count(&[(q3, i)]);
        let second = session.batch_model_count(&[(q1, i)]);
        assert_eq!(first, second);
        assert_eq!(session.stats().lineage_misses, 3);
    }

    #[test]
    fn invalid_decomposition_is_rejected_at_registration() {
        let mut session = EvalSession::new(EngineConfig::default());
        let result =
            session.register_instance_with_decomposition(chain(2), TreeDecomposition::new());
        assert!(matches!(result, Err(EngineError::InvalidDecomposition(_))));
    }
}
