//! Parallel + batched serving layer over the `treelineage` lineage
//! pipeline.
//!
//! The paper's bottom-up constructions (the automaton run and the
//! Theorem 6.11 d-SDNNF gate construction) are embarrassingly parallel over
//! disjoint subtrees; a serving system additionally sees *many* requests
//! that share compile work (same query, same instance, different weights).
//! This crate provides both layers, using only `std::thread` per the
//! workspace's no-external-deps rule:
//!
//! * [`compile_structured_dnnf_parallel`] / [`parallel_reachable_states`] —
//!   a work-stealing subtree scheduler that compiles fragments on worker
//!   threads and merges them deterministically, with output **bit-identical**
//!   to the sequential path at every thread count (see `parallel`'s module
//!   docs for the contract); [`ParallelDnnf`] carries the fragment
//!   partition so probability / WMC / model-counting passes parallelize the
//!   same way.
//! * [`EvalSession`] — a long-lived session holding the persistent compiled
//!   query machines, per-instance tree encodings, and a sharded
//!   [`treelineage_dd::Manager`] pool, exposing
//!   [`EvalSession::batch_probability`] / [`EvalSession::batch_wmc`] /
//!   [`EvalSession::batch_model_count`] that evaluate many (query,
//!   instance, weights) requests concurrently and deduplicate shared
//!   compile work.
//! * [`EngineConfig`] — the knob set (`threads`, `state_budget`, cache
//!   caps) that `treelineage-core`'s `ProbabilityEvaluator` and the bench
//!   harness route through, so every existing entry point can opt into
//!   parallelism without API changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
mod parallel;
mod pool;
mod session;

pub use approx::{karp_luby_probability, karp_luby_sample_bound, KarpLubyEstimate};
pub use parallel::{
    compile_structured_dnnf_parallel, parallel_reachable_states, CircuitPartition, ParallelDnnf,
};
pub use session::{
    validate_insert, validate_retract, CacheOccupancy, DecisionTier, EngineError, EvalSession,
    ExplainReport, InstanceId, ProbabilityRequest, QueryId, SessionBackend, SessionStats,
    SlowRequest, StageTiming, ThresholdDecision, ThresholdRequest, UpdateError, UpdateKind,
    UpdateReport, WmcRequest,
};
pub use treelineage_telemetry::{
    to_chrome_trace, ContextGuard, MetricsSnapshot, Registry, Span, SpanContext, SpanEvent,
    Telemetry,
};

use treelineage_dd::order::order_by_first_covering_bag;
use treelineage_graph::TreeDecomposition;
use treelineage_instance::Instance;

/// Configuration of the parallel engine: thread count, the query compiler's
/// state budget, the [`EvalSession`] cache caps, and the approximate
/// evaluation knobs. The default is fully sequential, exact-only, with the
/// compiler's default budget — existing entry points behave exactly as
/// before until they opt in.
///
/// (No `Eq`: the `(ε, δ)` knobs are `f64`. `PartialEq` is still derived and
/// the engine never stores `NaN` in them; [`Telemetry`] compares by
/// identity. No `Copy` since the telemetry handle holds an `Arc` — clone
/// configs explicitly where they are reused.)
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Worker threads for subtree compilation and batched evaluation.
    /// `1` (the default) means everything runs on the caller's thread.
    pub threads: usize,
    /// State budget handed to the query→automaton compiler
    /// ([`treelineage_encoding::CompileOptions::state_budget`]).
    pub state_budget: usize,
    /// Fragment grain for the subtree scheduler: subtrees of at most this
    /// many nodes become one task. `0` (the default) picks
    /// `node_count / (threads * 4)` with a lower bound that keeps
    /// scheduling overhead negligible; tests use small explicit grains to
    /// exercise the merge on small trees.
    pub fragment_grain: usize,
    /// Maximum number of compiled query machines an [`EvalSession`] keeps
    /// (per (query, alphabet width); least recently used evicted first).
    pub query_cache_cap: usize,
    /// Maximum number of compiled lineages an [`EvalSession`] keeps (per
    /// (query, instance); least recently used evicted first).
    pub lineage_cache_cap: usize,
    /// Serve probability requests float-first: [`EvalSession::new`] picks
    /// [`SessionBackend::FloatFirst`], threshold requests are answered from
    /// the certified f64 interval pass (falling back to exact rationals
    /// only when the threshold lands inside the interval), and instances
    /// whose query compilation blows the state budget degrade to the
    /// Karp–Luby estimator instead of failing. Default `false`.
    pub float_first: bool,
    /// Relative error bound ε of the Karp–Luby fallback estimator
    /// (`|estimate − exact| ≤ ε·exact` with probability `1 − δ`). Default
    /// `0.01`.
    pub epsilon: f64,
    /// Failure probability δ of the Karp–Luby fallback estimator. Default
    /// `0.01`.
    pub delta: f64,
    /// Telemetry sink for pipeline-stage spans, pool activity, and
    /// per-request tier/latency records. Defaults to
    /// [`Telemetry::disabled`] — a no-op handle whose recording calls are
    /// single branches (no clock reads, no allocation), and under which
    /// compiled artifacts are byte-identical to an instrumented run.
    pub telemetry: Telemetry,
    /// How many slow requests the session's flight recorder retains
    /// ([`EvalSession::slow_requests`]): the N slowest requests past the
    /// latency threshold, each with the full span subtree of its trace.
    /// `0` disables the recorder. Inert while telemetry is disabled (no
    /// spans, no clock reads). Default `8`.
    pub flight_recorder_capacity: usize,
    /// Latency threshold (nanoseconds) past which a finished request
    /// competes for a flight-recorder slot. Default `10_000_000` (10 ms).
    pub flight_recorder_threshold_ns: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            state_budget: treelineage_encoding::DEFAULT_STATE_BUDGET,
            fragment_grain: 0,
            query_cache_cap: 64,
            lineage_cache_cap: 256,
            float_first: false,
            epsilon: 0.01,
            delta: 0.01,
            telemetry: Telemetry::disabled(),
            flight_recorder_capacity: 8,
            flight_recorder_threshold_ns: 10_000_000,
        }
    }
}

impl EngineConfig {
    /// The default configuration at the given thread count.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig {
            threads,
            ..EngineConfig::default()
        }
    }

    /// The default configuration with one thread per available core
    /// (`std::thread::available_parallelism`, 1 if unknown).
    pub fn parallel() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        EngineConfig::with_threads(threads)
    }
}

/// Derives the fact (variable) order from a tree decomposition of the
/// instance's Gaifman graph: the \[35\]-style depth-first bag layout with
/// every fact placed at its first covering bag (the layout itself lives in
/// [`treelineage_dd::order`]). This is the order every match-based backend
/// compiles under; `treelineage-core` re-exports it, and [`EvalSession`]'s
/// shared-diagram shards use it to seed their managers.
pub fn variable_order_from_decomposition(
    instance: &Instance,
    td: &TreeDecomposition,
) -> Vec<usize> {
    use std::collections::{BTreeMap, BTreeSet};
    let domain: Vec<_> = instance.domain().into_iter().collect();
    let element_to_vertex: BTreeMap<_, usize> =
        domain.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    if td.bag_count() == 0 {
        return instance.fact_ids().map(|f| f.0).collect();
    }
    let items: Vec<BTreeSet<usize>> = instance
        .facts()
        .map(|(_, fact)| {
            fact.elements()
                .into_iter()
                .map(|e| element_to_vertex[&e])
                .collect()
        })
        .collect();
    order_by_first_covering_bag(td, &items)
}
